//! Per-connection session machinery (PROTOCOL.md §3.1).
//!
//! Three pieces live here, all shared-state-only (no I/O — the socket loop
//! is in [`crate::server`]):
//!
//! - [`SessionTable`] — the bounded registry of open sessions. A connection
//!   that cannot get a slot is turned away with `SESSION_LIMIT` before it
//!   costs anything.
//! - [`AdmissionGate`] — bounds transactions *in flight* (between `BEGIN`
//!   and `COMMIT`/`ABORT`), independently of how many sessions are merely
//!   connected. Thousands of conversational sessions may sit idle while
//!   only a bounded number hold locks. Over-limit `BEGIN`s either queue
//!   (bounded wait) or are refused with a backoff hint, per
//!   [`AdmissionPolicy`].
//! - [`Session`] — the request executor: a small state machine
//!   (`HELLO` → ready ⇄ in-txn → closed) that maps each [`Request`] to
//!   transaction-manager calls and produces the [`Response`] frames to
//!   write back.
//!
//! Role-based rights mirror the paper's standard environment (§2.4/rule 4′):
//! a `reader` may update nothing, an `engineer` may update cells but not the
//! shared effectors library, a `librarian` may update the library too. The
//! grants are installed per transaction at `BEGIN`/`RESUME` and retracted
//! automatically when the transaction finishes.

use crate::wire::{
    encode_target, encode_value, map_txn_error, BeginKind, ErrorCode, Request, Response, Role,
};
use colock_core::authorization::Right;
use colock_core::InstanceTarget;
use colock_trace::{Event, EventKind};
use colock_txn::{Transaction, TransactionManager, TxnKind};
use colock_lockmgr::WaitPolicy;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Server-assigned session identifier (monotonic, never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u64);

/// What the table remembers about one open session.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Client-announced name (from `HELLO`).
    pub name: String,
    /// Peer address.
    pub peer: String,
}

struct TableInner {
    next: u64,
    open: HashMap<u64, SessionInfo>,
    peak: usize,
}

/// Bounded registry of open sessions.
pub struct SessionTable {
    max: usize,
    inner: Mutex<TableInner>,
}

impl SessionTable {
    /// A table admitting at most `max` concurrent sessions.
    pub fn new(max: usize) -> SessionTable {
        SessionTable {
            max: max.max(1),
            inner: Mutex::new(TableInner { next: 1, open: HashMap::new(), peak: 0 }),
        }
    }

    /// Claims a slot. `None` means the table is full.
    pub fn try_open(&self, info: SessionInfo) -> Option<SessionId> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.open.len() >= self.max {
            return None;
        }
        let id = inner.next;
        inner.next += 1;
        inner.open.insert(id, info);
        inner.peak = inner.peak.max(inner.open.len());
        Some(SessionId(id))
    }

    /// Releases a slot.
    pub fn close(&self, id: SessionId) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.open.remove(&id.0);
    }

    /// Currently open sessions.
    pub fn open_count(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).open.len()
    }

    /// High-water mark of concurrently open sessions.
    pub fn peak(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).peak
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.max
    }
}

/// What to do with a `BEGIN` that exceeds the in-flight bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Park the `BEGIN` (bounded wait) until a slot frees; refuse only if
    /// the wait budget runs out.
    #[default]
    Queue,
    /// Refuse immediately with a backoff hint.
    Refuse,
}

impl AdmissionPolicy {
    /// Parses the `COLOCK_ADMISSION` values `queue` / `refuse`.
    pub fn parse(s: &str) -> Option<AdmissionPolicy> {
        match s {
            "queue" => Some(AdmissionPolicy::Queue),
            "refuse" => Some(AdmissionPolicy::Refuse),
            _ => None,
        }
    }
}

struct GateInner {
    inflight: usize,
    peak: usize,
}

/// Minimum backoff hint, in milliseconds. A refused `BEGIN` told "retry in
/// 0 ms" comes straight back, and under load *every* shed client does — the
/// hint must shed the herd, so it never drops below this floor.
pub const BACKOFF_FLOOR_MS: u64 = 5;

/// Bounds transactions in flight across all sessions.
pub struct AdmissionGate {
    max: usize,
    policy: AdmissionPolicy,
    queue_budget: Duration,
    inner: Mutex<GateInner>,
    freed: Condvar,
    /// Jitter source for refusal hints: consecutive refusals draw from
    /// doubling windows (spreading a sustained herd), and every freed slot
    /// resets the exponent.
    hint: Mutex<colock_testkit::Backoff>,
}

/// RAII in-flight slot: dropping it (transaction finished) frees the slot
/// and wakes one queued `BEGIN`.
pub struct Permit {
    gate: Arc<AdmissionGate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut inner = self.gate.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.inflight = inner.inflight.saturating_sub(1);
        drop(inner);
        // A freed slot means the overload is draining: refusal hints may
        // start over from the floor window.
        self.gate.hint.lock().unwrap_or_else(PoisonError::into_inner).reset();
        self.gate.freed.notify_one();
    }
}

impl AdmissionGate {
    /// A gate admitting at most `max` in-flight transactions; queued
    /// `BEGIN`s wait at most `queue_budget`.
    pub fn new(max: usize, policy: AdmissionPolicy, queue_budget: Duration) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate {
            max: max.max(1),
            policy,
            queue_budget,
            inner: Mutex::new(GateInner { inflight: 0, peak: 0 }),
            freed: Condvar::new(),
            // Fixed seed: hint schedules are part of the deterministic replay.
            hint: Mutex::new(colock_testkit::Backoff::new(0x0ADB_0FF5, 8, 96)),
        })
    }

    /// Tries to claim an in-flight slot. `Err(backoff_ms)` asks the client
    /// to retry after the hinted delay.
    pub fn admit(self: &Arc<Self>) -> Result<Permit, u64> {
        let deadline = Instant::now() + self.queue_budget;
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if inner.inflight < self.max {
                inner.inflight += 1;
                inner.peak = inner.peak.max(inner.inflight);
                return Ok(Permit { gate: Arc::clone(self) });
            }
            if self.policy == AdmissionPolicy::Refuse {
                return Err(self.backoff_hint_ms());
            }
            // The remaining budget is recomputed on *every* pass, and an
            // exhausted budget refuses before re-parking: a wakeup — spurious
            // or stolen — landing at or past the deadline must not turn into
            // a zero-length `wait_timeout`, which returns immediately and
            // busy-spins this loop for as long as the gate stays full.
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(self.backoff_hint_ms());
            }
            let (guard, _timeout) = self
                .freed
                .wait_timeout(inner, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    fn backoff_hint_ms(&self) -> u64 {
        // Floor plus seeded full jitter: the floor keeps refused clients from
        // returning instantly in a tight herd, the doubling jitter window
        // (reset whenever a slot frees) spreads a sustained overload out.
        let mut hint = self.hint.lock().unwrap_or_else(PoisonError::into_inner);
        BACKOFF_FLOOR_MS + hint.next_delay()
    }

    /// Transactions currently in flight.
    pub fn inflight(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).inflight
    }

    /// High-water mark of in-flight transactions.
    pub fn peak(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).peak
    }
}

/// Frames to write back for one request, plus whether the connection should
/// close after writing them.
pub struct Reply {
    /// Response frames, in order.
    pub frames: Vec<Response>,
    /// Close the connection after writing.
    pub close: bool,
}

impl Reply {
    fn one(r: Response) -> Reply {
        Reply { frames: vec![r], close: false }
    }

    fn closing(r: Response) -> Reply {
        Reply { frames: vec![r], close: true }
    }
}

/// Why a session ended (recorded in the `session-close` trace event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// Client sent `QUIT`.
    Quit,
    /// Client closed the connection (or the stream tore).
    Disconnect,
    /// Idle timeout exceeded.
    IdleTimeout,
    /// Server is shutting down.
    Drain,
}

impl CloseReason {
    fn as_str(self) -> &'static str {
        match self {
            CloseReason::Quit => "quit",
            CloseReason::Disconnect => "disconnect",
            CloseReason::IdleTimeout => "idle-timeout",
            CloseReason::Drain => "drain",
        }
    }
}

/// The per-connection request executor.
///
/// Owns the session's open transaction (at most one — the protocol is
/// strictly conversational) and its admission permit. The lifetime ties the
/// open transaction to the manager borrow held by the connection thread.
pub struct Session<'m> {
    mgr: &'m TransactionManager,
    table: Arc<SessionTable>,
    gate: Arc<AdmissionGate>,
    draining: Arc<AtomicBool>,
    lock_wait: Duration,
    id: SessionId,
    peer: String,
    name: String,
    role: Role,
    greeted: bool,
    /// Trace sequence at session open; `EXPLAIN`/`TRACE` stream from here.
    mark: u64,
    /// Ids of every transaction this session ran (newest last).
    txns: Vec<u64>,
    txn: Option<Transaction<'m>>,
    permit: Option<Permit>,
    closed: bool,
}

impl<'m> Session<'m> {
    /// Claims a session slot and emits the `session-open` trace event.
    /// `Err` carries the refusal frame to write before hanging up.
    pub fn open(
        mgr: &'m TransactionManager,
        table: Arc<SessionTable>,
        gate: Arc<AdmissionGate>,
        draining: Arc<AtomicBool>,
        lock_wait: Duration,
        peer: String,
    ) -> Result<Session<'m>, Response> {
        if draining.load(Ordering::SeqCst) {
            return Err(Response::err(ErrorCode::ShuttingDown, "server is draining"));
        }
        let info = SessionInfo { name: String::new(), peer: peer.clone() };
        let id = table.try_open(info).ok_or_else(|| {
            Response::err(
                ErrorCode::SessionLimit,
                format!("session table full ({} slots)", table.capacity()),
            )
        })?;
        let mark = colock_trace::current_seq();
        colock_trace::emit(|| {
            Event::new(EventKind::SessionOpen, 0).detail(format!("sid={} peer={}", id.0, peer))
        });
        Ok(Session {
            mgr,
            table,
            gate,
            draining,
            lock_wait,
            id,
            peer,
            name: String::new(),
            role: Role::default(),
            greeted: false,
            mark,
            txns: Vec::new(),
            txn: None,
            permit: None,
            closed: false,
        })
    }

    /// This session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Whether a transaction is open (used by the drain loop).
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Executes one request.
    pub fn handle(&mut self, req: Request) -> Reply {
        if !self.greeted {
            return self.handle_hello(req);
        }
        match req {
            Request::Hello { .. } => Reply::one(Response::err(
                ErrorCode::BadCommand,
                "HELLO already exchanged on this session",
            )),
            Request::Begin { kind } => self.begin(kind),
            Request::Resume { txn } => self.resume(txn),
            Request::Get { target } => self.with_txn(|txn| {
                let value = if txn.kind() == TxnKind::ReadOnly {
                    txn.snapshot_read(&target)?
                } else {
                    txn.read(&target)?
                };
                Ok(vec![encode_value(&value)])
            }),
            Request::Put { target, value } => self.with_txn(|txn| match &target.object {
                Some(_) => {
                    txn.update(&target, value)?;
                    Ok(vec![])
                }
                None => {
                    let key = txn.insert(&target.relation, value)?;
                    let created = InstanceTarget { object: Some(key), ..target };
                    Ok(vec![encode_target(&created)])
                }
            }),
            Request::Del { target } => self.with_txn(|txn| {
                match (&target.object, target.steps.last()) {
                    (None, _) => Err(colock_txn::TxnError::Storage(
                        colock_storage::StorageError::BadTarget(
                            "DEL needs an object or element target".into(),
                        ),
                    )),
                    (Some(_), Some(step)) if step.elem.is_some() => {
                        txn.delete_element(&target)?;
                        Ok(vec![])
                    }
                    (Some(key), None) => {
                        txn.delete(&target.relation, key)?;
                        Ok(vec![])
                    }
                    (Some(_), Some(_)) => Err(colock_txn::TxnError::Storage(
                        colock_storage::StorageError::BadTarget(
                            "DEL of a whole attribute is not supported; PUT a new value".into(),
                        ),
                    )),
                }
            }),
            Request::Checkout { target, access } => self.with_txn(|txn| {
                let value = txn.checkout(&target, access)?;
                Ok(vec![encode_value(&value)])
            }),
            Request::Checkin { target, value } => self.with_txn(|txn| {
                txn.checkin(&target, value)?;
                Ok(vec![])
            }),
            Request::Commit => self.finish(true),
            Request::Abort => self.finish(false),
            Request::Explain => self.explain(),
            Request::Trace => self.trace(),
            Request::Stats => self.stats(),
            Request::Quit => {
                self.close(CloseReason::Quit);
                Reply::closing(Response::ok0())
            }
        }
    }

    fn handle_hello(&mut self, req: Request) -> Reply {
        match req {
            Request::Hello { name, version, role } => {
                if version != crate::wire::PROTOCOL_VERSION {
                    self.close(CloseReason::Disconnect);
                    return Reply::closing(Response::err(
                        ErrorCode::VersionMismatch,
                        format!(
                            "client speaks v{version}, server speaks v{}",
                            crate::wire::PROTOCOL_VERSION
                        ),
                    ));
                }
                self.greeted = true;
                self.name = name;
                self.role = role;
                Reply::one(Response::Ok(vec![
                    format!("sid={}", self.id.0),
                    format!("v{}", crate::wire::PROTOCOL_VERSION),
                    self.role.to_string(),
                ]))
            }
            other => Reply::closing(Response::err(
                ErrorCode::BadCommand,
                format!("expected HELLO, got {other:?}"),
            )),
        }
    }

    /// Installs this session's role rights for one transaction (retracted
    /// automatically by the manager when the transaction finishes). The
    /// relation names are the paper's standard environment: `cells` is the
    /// private design data, `effectors` the shared library.
    fn apply_role(&self, txn: colock_lockmgr::TxnId) {
        let authz = self.mgr.authorization();
        match self.role {
            Role::Reader => {
                authz.grant(txn, "cells", Right::Read);
                authz.grant(txn, "effectors", Right::Read);
            }
            Role::Engineer => {} // the defaults: cells Update, effectors Read
            Role::Librarian => {
                authz.grant(txn, "effectors", Right::Update);
            }
        }
    }

    fn begin(&mut self, kind: BeginKind) -> Reply {
        if self.txn.is_some() {
            return Reply::one(Response::err(
                ErrorCode::TxnOpen,
                "a transaction is already open on this session",
            ));
        }
        if self.draining.load(Ordering::SeqCst) {
            return Reply::one(Response::err(ErrorCode::ShuttingDown, "server is draining"));
        }
        let permit = match self.gate.admit() {
            Ok(p) => p,
            Err(backoff_ms) => {
                return Reply::one(Response::Err {
                    code: ErrorCode::Busy,
                    message: format!("{} transactions in flight", self.gate.inflight()),
                    backoff_ms: Some(backoff_ms),
                });
            }
        };
        let txn = match kind {
            BeginKind::Short => self.mgr.begin(TxnKind::Short),
            BeginKind::Long => self.mgr.begin(TxnKind::Long),
            BeginKind::ReadOnly => self.mgr.begin_readonly(),
        };
        txn.set_wait_policy(WaitPolicy::BlockTimeout(self.lock_wait));
        self.apply_role(txn.id());
        self.txns.push(txn.id().0);
        let id = txn.id().0;
        self.txn = Some(txn);
        self.permit = Some(permit);
        Reply::one(Response::Ok(vec![format!("T{id}")]))
    }

    fn resume(&mut self, id: colock_lockmgr::TxnId) -> Reply {
        if self.txn.is_some() {
            return Reply::one(Response::err(
                ErrorCode::TxnOpen,
                "a transaction is already open on this session",
            ));
        }
        let permit = match self.gate.admit() {
            Ok(p) => p,
            Err(backoff_ms) => {
                return Reply::one(Response::Err {
                    code: ErrorCode::Busy,
                    message: format!("{} transactions in flight", self.gate.inflight()),
                    backoff_ms: Some(backoff_ms),
                });
            }
        };
        match self.mgr.resume(id) {
            Ok(txn) => {
                txn.set_wait_policy(WaitPolicy::BlockTimeout(self.lock_wait));
                self.apply_role(txn.id());
                self.txns.push(txn.id().0);
                self.txn = Some(txn);
                self.permit = Some(permit);
                Reply::one(Response::Ok(vec![format!("T{}", id.0)]))
            }
            Err(e) => {
                drop(permit);
                let (code, message) = map_txn_error(&e);
                Reply::one(Response::err(code, message))
            }
        }
    }

    /// Runs a data operation against the open transaction, mapping errors to
    /// `ERR` frames. Errors that mean the transaction is dead (deadlock
    /// victim, pending victim, drain refusal) abort it server-side so the
    /// client can `BEGIN` again immediately.
    fn with_txn(
        &mut self,
        op: impl FnOnce(&Transaction<'m>) -> Result<Vec<String>, colock_txn::TxnError>,
    ) -> Reply {
        let Some(txn) = &self.txn else {
            return Reply::one(Response::err(ErrorCode::NoTxn, "no transaction open; BEGIN first"));
        };
        match op(txn) {
            Ok(fields) => Reply::one(Response::Ok(fields)),
            Err(e) => {
                let fatal = e.is_deadlock()
                    || e.is_draining()
                    || matches!(
                        &e,
                        colock_txn::TxnError::Protocol(colock_core::protocol::ProtocolError::Lock(
                            colock_lockmgr::LockError::VictimPending(_)
                        ))
                    );
                let (code, message) = map_txn_error(&e);
                if fatal {
                    if let Some(t) = self.txn.take() {
                        let _ = t.abort();
                    }
                    self.permit = None;
                }
                Reply::one(Response::err(code, message))
            }
        }
    }

    fn finish(&mut self, commit: bool) -> Reply {
        let Some(txn) = self.txn.take() else {
            return Reply::one(Response::err(ErrorCode::NoTxn, "no transaction open"));
        };
        let result = if commit { txn.commit() } else { txn.abort() };
        self.permit = None;
        match result {
            Ok(()) => Reply::one(Response::ok0()),
            Err(e) => {
                let (code, message) = map_txn_error(&e);
                Reply::one(Response::err(code, message))
            }
        }
    }

    fn explain(&mut self) -> Reply {
        let mine: Vec<_> = colock_trace::events_since(self.mark)
            .into_iter()
            .filter(|e| self.txns.contains(&e.txn))
            .collect();
        let tl = colock_trace::explain::timeline(&mine);
        let rendered = colock_trace::explain::render_timeline(&tl);
        let mut frames: Vec<Response> = rendered
            .lines()
            .filter(|l| !l.is_empty())
            .map(|l| Response::Event(l.to_string()))
            .collect();
        let n = frames.len() as u64;
        frames.push(Response::End(n));
        Reply { frames, close: false }
    }

    fn trace(&mut self) -> Reply {
        let events = colock_trace::events_since(self.mark);
        let mut frames: Vec<Response> =
            events.iter().map(|e| Response::Event(e.to_line())).collect();
        let n = frames.len() as u64;
        frames.push(Response::End(n));
        Reply { frames, close: false }
    }

    fn stats(&mut self) -> Reply {
        let s = self.mgr.lock_manager().stats().snapshot();
        let pairs: Vec<(&str, u64)> = vec![
            ("lock.requests", s.requests),
            ("lock.immediate_grants", s.immediate_grants),
            ("lock.waits", s.waits),
            ("lock.conversions", s.conversions),
            ("lock.conflict_tests", s.conflict_tests),
            ("lock.deadlocks", s.deadlocks),
            ("lock.releases", s.releases),
            ("lock.detector_runs", s.detector_runs),
            ("lock.wakeups", s.wakeups),
            ("lock.max_table_entries", s.max_table_entries),
            ("lock.max_locks_per_txn", s.max_locks_per_txn),
            ("lock.intent_acquires", s.intent_acquires),
            ("lock.fastpath_hits", s.fastpath_hits),
            ("lock.fastpath_retries", s.fastpath_retries),
            ("lock.fastpath_fallbacks", s.fastpath_fallbacks),
            ("lock.fastpath_drains", s.fastpath_drains),
            ("lock.reads_elided", s.reads_elided),
            ("sessions.open", self.table.open_count() as u64),
            ("sessions.peak", self.table.peak() as u64),
            ("txns.active", self.mgr.active_count() as u64),
            ("txns.inflight", self.gate.inflight() as u64),
            ("txns.inflight_peak", self.gate.peak() as u64),
        ];
        let mut frames: Vec<Response> = pairs
            .into_iter()
            .map(|(name, value)| Response::Stat { name: name.into(), value: value.to_string() })
            .collect();
        let n = frames.len() as u64;
        frames.push(Response::End(n));
        Reply { frames, close: false }
    }

    /// Ends the session: a short or read-only transaction still open is
    /// aborted; a long transaction is *leaked* — its durable long locks stay
    /// journaled on the medium, exactly the paper's conversational scenario,
    /// and a later `RESUME` (or §3.1 crash recovery) re-adopts them.
    pub fn close(&mut self, reason: CloseReason) {
        if self.closed {
            return;
        }
        self.closed = true;
        if let Some(txn) = self.txn.take() {
            if txn.kind() == TxnKind::Long {
                txn.leak();
            } else {
                let _ = txn.abort();
            }
        }
        self.permit = None;
        self.table.close(self.id);
        colock_trace::emit(|| {
            Event::new(EventKind::SessionClose, 0)
                .detail(format!("sid={} peer={} reason={}", self.id.0, self.peer, reason.as_str()))
        });
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        self.close(CloseReason::Disconnect);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::parse_target;
    use colock_core::authorization::Authorization;
    use colock_core::AccessMode;
    use colock_nf2::Value;
    use colock_sim::{build_cells_store, CellsConfig};
    use colock_txn::{ProtocolKind, TransactionManager};

    fn manager() -> Arc<TransactionManager> {
        let cfg = CellsConfig { n_cells: 2, c_objects_per_cell: 4, ..Default::default() };
        let mut authz = Authorization::allow_all();
        authz.set_relation_default("effectors", Right::Read);
        Arc::new(TransactionManager::over_store(
            build_cells_store(&cfg),
            authz,
            ProtocolKind::Proposed,
        ))
    }

    fn harness() -> (Arc<TransactionManager>, Arc<SessionTable>, Arc<AdmissionGate>) {
        (
            manager(),
            Arc::new(SessionTable::new(8)),
            AdmissionGate::new(8, AdmissionPolicy::Refuse, Duration::from_millis(50)),
        )
    }

    fn session<'m>(
        mgr: &'m TransactionManager,
        table: &Arc<SessionTable>,
        gate: &Arc<AdmissionGate>,
    ) -> Session<'m> {
        let mut s = Session::open(
            mgr,
            Arc::clone(table),
            Arc::clone(gate),
            Arc::new(AtomicBool::new(false)),
            Duration::from_secs(2),
            "test".into(),
        )
        .expect("slot");
        let reply = s.handle(Request::Hello {
            name: "t".into(),
            version: crate::wire::PROTOCOL_VERSION,
            role: Role::Engineer,
        });
        assert!(matches!(reply.frames[0], Response::Ok(_)));
        s
    }

    fn ok_fields(reply: Reply) -> Vec<String> {
        match reply.frames.into_iter().next().expect("one frame") {
            Response::Ok(fs) => fs,
            other => panic!("expected OK, got {other:?}"),
        }
    }

    #[test]
    fn get_put_commit_roundtrip() {
        let (mgr, table, gate) = harness();
        let mut s = session(&mgr, &table, &gate);
        assert!(matches!(s.handle(Request::Begin { kind: BeginKind::Short }).frames[0], Response::Ok(_)));
        let t = parse_target("rel:cells/obj:c1/attr:robots/elem:r1/attr:trajectory").unwrap();
        let before = ok_fields(s.handle(Request::Get { target: t.clone() }));
        assert_eq!(before, vec!["s:traj-c1-r0".to_string()]);
        s.handle(Request::Put { target: t.clone(), value: Value::str("renamed") });
        assert_eq!(ok_fields(s.handle(Request::Get { target: t })), vec!["s:renamed".to_string()]);
        assert!(matches!(s.handle(Request::Commit).frames[0], Response::Ok(_)));
        assert_eq!(mgr.active_count(), 0);
    }

    #[test]
    fn data_verbs_require_a_transaction() {
        let (mgr, table, gate) = harness();
        let mut s = session(&mgr, &table, &gate);
        let t = parse_target("rel:cells/obj:c1").unwrap();
        match &s.handle(Request::Get { target: t }).frames[0] {
            Response::Err { code, .. } => assert_eq!(*code, ErrorCode::NoTxn),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reader_role_cannot_update() {
        let (mgr, table, gate) = harness();
        let mut s = session(&mgr, &table, &gate);
        s.role = Role::Reader;
        s.handle(Request::Begin { kind: BeginKind::Short });
        let t = parse_target("rel:cells/obj:c1/attr:robots/elem:r1/attr:trajectory").unwrap();
        match &s.handle(Request::Put { target: t, value: Value::str("x") }).frames[0] {
            Response::Err { code, .. } => assert_eq!(*code, ErrorCode::Unauthorized),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn librarian_may_update_the_library_engineer_may_not() {
        let (mgr, table, gate) = harness();
        let t = parse_target("rel:effectors/obj:e1/attr:tool").unwrap();

        let mut eng = session(&mgr, &table, &gate);
        eng.handle(Request::Begin { kind: BeginKind::Short });
        match &eng.handle(Request::Put { target: t.clone(), value: Value::str("x") }).frames[0] {
            Response::Err { code, .. } => assert_eq!(*code, ErrorCode::Unauthorized),
            other => panic!("{other:?}"),
        }
        eng.handle(Request::Abort);

        let mut lib = session(&mgr, &table, &gate);
        lib.role = Role::Librarian;
        lib.handle(Request::Begin { kind: BeginKind::Short });
        assert!(matches!(
            lib.handle(Request::Put { target: t, value: Value::str("x") }).frames[0],
            Response::Ok(_)
        ));
        lib.handle(Request::Commit);
    }

    #[test]
    fn session_table_is_bounded() {
        let table = SessionTable::new(2);
        let a = table.try_open(SessionInfo { name: "a".into(), peer: "p".into() }).unwrap();
        let _b = table.try_open(SessionInfo { name: "b".into(), peer: "p".into() }).unwrap();
        assert!(table.try_open(SessionInfo { name: "c".into(), peer: "p".into() }).is_none());
        table.close(a);
        assert!(table.try_open(SessionInfo { name: "c".into(), peer: "p".into() }).is_some());
        assert_eq!(table.peak(), 2);
    }

    #[test]
    fn refuse_gate_sheds_excess_begins_with_backoff() {
        let (mgr, table, _) = harness();
        let gate = AdmissionGate::new(1, AdmissionPolicy::Refuse, Duration::from_millis(10));
        let mut a = session(&mgr, &table, &gate);
        let mut b = session(&mgr, &table, &gate);
        a.handle(Request::Begin { kind: BeginKind::Short });
        match &b.handle(Request::Begin { kind: BeginKind::Short }).frames[0] {
            Response::Err { code, backoff_ms, .. } => {
                assert_eq!(*code, ErrorCode::Busy);
                let hint = backoff_ms.expect("BUSY must hint a backoff");
                assert!(
                    hint >= BACKOFF_FLOOR_MS,
                    "a 0-ms hint turns shed clients into a tight retry herd: got {hint}"
                );
            }
            other => panic!("{other:?}"),
        }
        a.handle(Request::Commit);
        assert!(matches!(b.handle(Request::Begin { kind: BeginKind::Short }).frames[0], Response::Ok(_)));
        b.handle(Request::Abort);
    }

    #[test]
    fn backoff_hints_never_drop_below_the_floor_and_stay_jittered() {
        let gate = AdmissionGate::new(1, AdmissionPolicy::Refuse, Duration::from_millis(1));
        let _held = gate.admit().expect("first slot");
        let hints: Vec<u64> =
            (0..64).map(|_| gate.admit().err().expect("gate is full")).collect();
        assert!(hints.iter().all(|&h| h >= BACKOFF_FLOOR_MS), "{hints:?}");
        // Full jitter, not a constant: consecutive refusals must not all
        // agree (64 identical draws from a ≥8-wide window ≈ impossible).
        assert!(hints.windows(2).any(|w| w[0] != w[1]), "{hints:?}");
    }

    #[test]
    fn spurious_notify_storm_refuses_at_the_budget_instead_of_spinning() {
        // Regression: a wakeup landing at/past the deadline used to feed a
        // zero-length `wait_timeout`, so a notify storm could spin the admit
        // loop while the gate stayed full. Staged deterministically: the
        // waiter parks behind a full gate, then the main thread fires
        // spurious notifies (nothing ever frees a slot) well past the
        // waiter's budget; the waiter must come back refused, promptly.
        let gate = AdmissionGate::new(1, AdmissionPolicy::Queue, Duration::from_millis(40));
        let held = gate.admit().expect("fill the gate");
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                barrier.wait(); // stage 1: both sides ready
                let started = Instant::now();
                let refused = gate.admit();
                (refused.err(), started.elapsed())
            });
            barrier.wait();
            // Spurious-notify storm for 4× the wait budget.
            let storm_ends = Instant::now() + Duration::from_millis(160);
            while Instant::now() < storm_ends {
                gate.freed.notify_all();
                std::thread::yield_now();
            }
            let (hint, elapsed) = waiter.join().expect("waiter");
            let hint = hint.expect("gate stayed full: the BEGIN must be refused");
            assert!(hint >= BACKOFF_FLOOR_MS, "refusal must carry a floored hint: {hint}");
            assert!(
                elapsed < Duration::from_millis(160),
                "waiter must refuse when its budget runs out, not spin while notified: {elapsed:?}"
            );
        });
        drop(held);
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn disconnect_leaks_long_txn_and_resume_readopts() {
        let (mgr, table, gate) = harness();
        let t = parse_target("rel:cells/obj:c1").unwrap();
        let txn_id;
        {
            let mut s = session(&mgr, &table, &gate);
            let fields = ok_fields(s.handle(Request::Begin { kind: BeginKind::Long }));
            txn_id = fields[0].trim_start_matches('T').parse::<u64>().unwrap();
            assert!(matches!(
                s.handle(Request::Checkout { target: t.clone(), access: AccessMode::Update })
                    .frames[0],
                Response::Ok(_)
            ));
            s.close(CloseReason::Disconnect);
        }
        // The long lock survived the disconnect: a rival update still blocks.
        {
            let rival = mgr.begin(TxnKind::Short);
            rival.set_wait_policy(WaitPolicy::Try);
            let err = rival.lock(&t, AccessMode::Update).unwrap_err();
            assert!(err.is_would_block(), "{err}");
            rival.abort().unwrap();
        }
        // A new session resumes the conversation and finishes it.
        let mut s = session(&mgr, &table, &gate);
        assert!(matches!(
            s.handle(Request::Resume { txn: colock_lockmgr::TxnId(txn_id) }).frames[0],
            Response::Ok(_)
        ));
        let current = ok_fields(s.handle(Request::Get { target: t.clone() })).remove(0);
        let value = crate::wire::parse_value(&current).unwrap();
        assert!(matches!(
            s.handle(Request::Checkin { target: t, value }).frames[0],
            Response::Ok(_)
        ));
        assert!(matches!(s.handle(Request::Commit).frames[0], Response::Ok(_)));
    }

    #[test]
    fn deadlock_victim_is_aborted_server_side() {
        let (mgr, table, gate) = harness();
        let c1 = parse_target("rel:cells/obj:c1").unwrap();
        let c2 = parse_target("rel:cells/obj:c2").unwrap();
        let mut a = session(&mgr, &table, &gate);
        let mut b = session(&mgr, &table, &gate);
        a.handle(Request::Begin { kind: BeginKind::Short });
        b.handle(Request::Begin { kind: BeginKind::Short });
        assert!(matches!(
            a.handle(Request::Checkout { target: c1.clone(), access: AccessMode::Update }).frames[0],
            Response::Ok(_)
        ));
        assert!(matches!(
            b.handle(Request::Checkout { target: c2.clone(), access: AccessMode::Update }).frames[0],
            Response::Ok(_)
        ));
        std::thread::scope(|scope| {
            // A parks on c2 while b (the younger transaction) closes the
            // cycle on c1 and is chosen as victim.
            let t = scope.spawn(move || {
                a.handle(Request::Checkout { target: c2, access: AccessMode::Update })
            });
            std::thread::sleep(Duration::from_millis(100));
            let reply = b.handle(Request::Checkout { target: c1, access: AccessMode::Update });
            match &reply.frames[0] {
                Response::Err { code, .. } => assert_eq!(*code, ErrorCode::Deadlock),
                other => panic!("expected deadlock, got {other:?}"),
            }
            // The victim transaction was aborted server-side: the session is
            // free to BEGIN again without an explicit ABORT.
            assert!(!b.in_txn());
            let survivor = t.join().unwrap();
            assert!(matches!(survivor.frames[0], Response::Ok(_)));
        });
    }

    #[test]
    fn quit_closes_and_frees_the_slot() {
        let (mgr, table, gate) = harness();
        let mut s = session(&mgr, &table, &gate);
        let before = table.open_count();
        let reply = s.handle(Request::Quit);
        assert!(reply.close);
        assert_eq!(table.open_count(), before - 1);
    }

    #[test]
    fn explain_and_trace_stream_with_end_counts() {
        colock_trace::enable();
        let (mgr, table, gate) = harness();
        let mut s = session(&mgr, &table, &gate);
        s.handle(Request::Begin { kind: BeginKind::Short });
        s.handle(Request::Get { target: parse_target("rel:cells/obj:c1/attr:robots/elem:r1/attr:trajectory").unwrap() });
        s.handle(Request::Commit);
        let reply = s.handle(Request::Explain);
        let Some(Response::End(n)) = reply.frames.last() else { panic!("no END") };
        assert_eq!(*n as usize, reply.frames.len() - 1);
        assert!(*n > 0, "timeline should mention the txn");
        let reply = s.handle(Request::Trace);
        let Some(Response::End(n)) = reply.frames.last() else { panic!("no END") };
        assert!(*n > 0);
    }

    #[test]
    fn stats_include_sessions_and_lock_counters() {
        let (mgr, table, gate) = harness();
        let mut s = session(&mgr, &table, &gate);
        let reply = s.handle(Request::Stats);
        let names: Vec<String> = reply
            .frames
            .iter()
            .filter_map(|f| match f {
                Response::Stat { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"lock.requests".to_string()));
        assert!(names.contains(&"sessions.open".to_string()));
        assert!(matches!(reply.frames.last(), Some(Response::End(_))));
    }
}
