//! F1 — Fig. 1: the schema of the relations `cells` and `effectors`.

use colock_core::fixtures::fig1_schema;
use colock_nf2::display::database_tree;

fn main() {
    let schema = fig1_schema();
    println!("Figure 1 — Non-Disjoint, Non-Recursive Complex Objects");
    println!("schema of the relations \"cells\" and \"effectors\"\n");
    print!("{}", database_tree(&schema));
    println!();
    println!(
        "common-data relations: {:?}",
        schema.common_data_relations().iter().map(|r| &r.name).collect::<Vec<_>>()
    );
    println!(
        "top-level relations:   {:?}",
        schema.unreferenced_relations().iter().map(|r| &r.name).collect::<Vec<_>>()
    );
}
