//! E3 — the protocol-oriented problem, part 2 (§3.2.2): from-the-side
//! access to common data.
//!
//! T1 X-locks robot r1; under the naive protocol the effectors r1 uses are
//! only *implicitly* locked — invisible to T2, which X-locks effector e
//! directly ("from the side") and updates it. T1's repeated read of the
//! effector then differs: a degree-3 consistency violation. The proposed
//! protocol makes the implicit locks visible as explicit entry-point locks,
//! so T2 blocks.

use colock_bench::cells_manager_writable;
use colock_core::{AccessMode, InstanceTarget};
use colock_nf2::{ObjectKey, Value};
use colock_sim::metrics::Table;
use colock_sim::CellsConfig;
use colock_txn::{ProtocolKind, TxnKind};

fn main() {
    println!("E3 — from-the-side access to common data\n");
    let mut table = Table::new(&["protocol", "T2 X(e) blocked", "T1 sees stable reads", "anomaly"]);
    for protocol in [ProtocolKind::NaiveRelaxed, ProtocolKind::NaiveDag, ProtocolKind::Proposed] {
        let cfg = CellsConfig { n_cells: 2, n_effectors: 4, ..Default::default() };
        let mgr = cells_manager_writable(&cfg, protocol);
        let store = mgr.store().clone();

        // T1 locks robot r1 of c1 for update and reads one of its effectors.
        let t1 = mgr.begin(TxnKind::Short);
        let robot = InstanceTarget::object("cells", "c1").elem("robots", "r1");
        t1.lock(&robot, AccessMode::Update).unwrap();
        let robot_val = store.get_at("cells", &ObjectKey::from("c1"), &robot.steps).unwrap();
        let eff_ref = {
            let mut refs = Vec::new();
            robot_val.collect_refs(&mut refs);
            refs[0].clone()
        };
        let read1 = store.get(&eff_ref.relation, &eff_ref.key).unwrap();

        // T2 updates that effector directly, from the side.
        let t2 = mgr.begin(TxnKind::Short);
        let e_target = InstanceTarget::object("effectors", eff_ref.key.clone());
        let blocked = t2.try_lock(&e_target, AccessMode::Update).is_err();
        if !blocked {
            t2.update(&e_target.clone().attr("tool"), Value::str("SIDE-WRITE")).unwrap();
            t2.commit().unwrap();
        } else {
            t2.abort().unwrap();
        }

        // T1 re-reads (degree 3: must be identical).
        let read2 = store.get(&eff_ref.relation, &eff_ref.key).unwrap();
        let stable = read1 == read2;
        t1.commit().unwrap();

        table.row(vec![
            protocol.name().to_string(),
            blocked.to_string(),
            stable.to_string(),
            (!stable).to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("expected shape (paper): the relaxed naive protocol (all-parents rule");
    println!("given up) does not detect the conflict -> T1's repeated read changes,");
    println!("an inconsistency; the full naive protocol detects it but only at the");
    println!("price of the E2 reverse-scan; the proposed protocol detects it via the");
    println!("explicit entry-point lock (§3.2.2, §4.6 advantage 3).");
}
