//! F6 — Fig. 6: outer unit, inner units, entry points and superunits of
//! complex object "cell c1".

use colock_core::fixtures::fig1_catalog;
use colock_core::{derive_lock_graph, Units};

fn main() {
    let catalog = fig1_catalog();
    let graph = derive_lock_graph(&catalog);
    let units = Units::new(&graph, &catalog);

    println!("Figure 6 — Units of complex object \"cell c1\"\n");

    println!("outer unit \"cells\" (nodes):");
    for id in units.unit_nodes("cells") {
        println!("  {}", graph.node(id).name);
    }
    println!("\ninner unit \"effectors\" (nodes):");
    for id in units.unit_nodes("effectors") {
        println!("  {}", graph.node(id).name);
    }
    let ep = units.entry_point("effectors").expect("entry point");
    println!("\nentry point of the inner unit: {}", graph.node(ep).name);
    println!("superunit chain of the entry point (immediate parents up to the database):");
    for id in units.superunit_chain("effectors") {
        println!("  {}", graph.node(id).name);
    }
    println!("\nunits are disjoint: {}", units.units_are_disjoint());
    println!(
        "entry points reachable from \"cells\": {:?}",
        units
            .entry_points_below("cells")
            .iter()
            .map(|(rel, _)| rel.clone())
            .collect::<Vec<_>>()
    );
}
