//! Stress harness: exhaustive interleaving exploration of small hot-HoLU
//! scenarios (model-checking the lock manager).
//!
//! Unlike the wall-clock stress harnesses, every run here executes one
//! *chosen* thread interleaving: the lock table's yield points hand
//! scheduling control to `colock_testkit::explore`, which enumerates
//! schedules DPOR-style (persistent sets over conflicting operations,
//! depth-bounded by `COLOCK_EXPLORE_DEPTH`). Two scenarios:
//!
//! 1. **Insert storm, 3 transactions**: three writers insert distinct
//!    robots into the same set-valued HoLU. Every explored schedule must
//!    commit all three, keep the container consistent, pass the §4.4.2
//!    protocol linter *and* certify conflict-serializable.
//! 2. **Deadlock liveness, 2 transactions**: two writers X-lock two cells
//!    in opposite orders. Schedules that close the waits-for cycle must be
//!    resolved by the detector (victim aborted, survivor commits) — never
//!    a stuck state — and every schedule's trace must certify clean.
//!
//! Bound the search with `COLOCK_EXPLORE_MAX_SCHEDULES` (the storm's
//! schedule space is much larger than the default cap).

use colock_bench::cells_manager;
use colock_core::{AccessMode, InstanceTarget};
use colock_nf2::value::build::{set, tup};
use colock_nf2::Value;
use colock_sim::CellsConfig;
use colock_testkit::explore::{explore, Explorable, ExploreConfig};
use colock_txn::{ProtocolKind, TransactionManager, TxnKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn robot(worker: usize) -> Value {
    tup(vec![
        ("robot_id", Value::str(format!("explore-w{worker}"))),
        ("trajectory", Value::str(format!("schedule-{worker}"))),
        ("effectors", set(Vec::new())),
    ])
}

/// Replays the run's trace through the linter and the serializability
/// certifier; returns a rendered failure if either objects.
fn verify_trace(mgr: &TransactionManager, mark: u64) -> Result<(), String> {
    let events = colock_trace::events_since(mark);
    let lint = colock_check::Linter::with_catalog(mgr.store().catalog()).lint(&events);
    if !lint.is_clean() {
        return Err(format!("protocol violations:\n{}", lint.render_with_context(&events)));
    }
    let cert = colock_check::Certifier::new().certify(&events);
    if !cert.is_clean() {
        return Err(format!("not serializable:\n{}", cert.render_with_context(&events)));
    }
    Ok(())
}

/// Three transactions inserting distinct elements into one hot container.
struct StormScenario {
    cells: CellsConfig,
    mgr: Option<Arc<TransactionManager>>,
    mark: u64,
    committed: Arc<AtomicU64>,
}

impl Explorable for StormScenario {
    fn reset(&mut self) {
        self.mark = colock_trace::current_seq();
        self.mgr = Some(cells_manager(&self.cells, ProtocolKind::Proposed));
        self.committed.store(0, Ordering::Relaxed);
    }

    fn threads(&mut self) -> Vec<Box<dyn FnOnce() + Send + 'static>> {
        let mgr = self.mgr.as_ref().expect("reset ran").clone();
        (0..3)
            .map(|w| {
                let mgr = Arc::clone(&mgr);
                let committed = Arc::clone(&self.committed);
                Box::new(move || {
                    let container = InstanceTarget::object("cells", "c1").attr("robots");
                    let t = mgr.begin(TxnKind::Short);
                    match t.insert_element(&container, robot(w)) {
                        Ok(_) => {
                            t.commit().expect("storm commit");
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("storm insert must not conflict: {e}"),
                    }
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect()
    }

    fn check(&mut self) -> Result<(), String> {
        let mgr = self.mgr.take().expect("reset ran");
        if self.committed.load(Ordering::Relaxed) != 3 {
            return Err("an insert transaction failed to commit".into());
        }
        let t = mgr.begin(TxnKind::Short);
        let container = InstanceTarget::object("cells", "c1").attr("robots");
        let members = match t.read(&container).map_err(|e| e.to_string())? {
            Value::Set(es) | Value::List(es) => es,
            other => return Err(format!("robots is not a collection: {other:?}")),
        };
        t.commit().map_err(|e| e.to_string())?;
        let expected = self.cells.robots_per_cell + 3;
        if members.len() != expected {
            return Err(format!("lost or duplicated inserts: {} != {expected}", members.len()));
        }
        if mgr.active_count() != 0 {
            return Err("transactions survived the run".into());
        }
        verify_trace(&mgr, self.mark)
    }

    fn rescue(&self) {
        if let Some(mgr) = &self.mgr {
            mgr.lock_manager().begin_drain();
        }
    }
}

/// Two transactions X-locking two cells in opposite orders: schedules that
/// close the cycle must end with exactly one victim and one survivor.
struct DeadlockScenario {
    cells: CellsConfig,
    mgr: Option<Arc<TransactionManager>>,
    mark: u64,
    outcomes: Arc<(AtomicU64, AtomicU64)>, // (committed, deadlock aborts)
    /// Schedules (across the whole exploration) that closed the cycle.
    deadlock_schedules: u64,
}

impl Explorable for DeadlockScenario {
    fn reset(&mut self) {
        self.mark = colock_trace::current_seq();
        self.mgr = Some(cells_manager(&self.cells, ProtocolKind::Proposed));
        self.outcomes.0.store(0, Ordering::Relaxed);
        self.outcomes.1.store(0, Ordering::Relaxed);
    }

    fn threads(&mut self) -> Vec<Box<dyn FnOnce() + Send + 'static>> {
        let mgr = self.mgr.as_ref().expect("reset ran").clone();
        [("c1", "c2"), ("c2", "c1")]
            .into_iter()
            .map(|(first, second)| {
                let mgr = Arc::clone(&mgr);
                let outcomes = Arc::clone(&self.outcomes);
                Box::new(move || {
                    let t = mgr.begin(TxnKind::Short);
                    let a = InstanceTarget::object("cells", first);
                    let b = InstanceTarget::object("cells", second);
                    let locked = t
                        .lock(&a, AccessMode::Update)
                        .and_then(|_| t.lock(&b, AccessMode::Update));
                    match locked {
                        Ok(_) => {
                            t.commit().expect("survivor commit");
                            outcomes.0.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_deadlock() => {
                            let _ = t.abort();
                            outcomes.1.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected lock failure: {e}"),
                    }
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect()
    }

    fn check(&mut self) -> Result<(), String> {
        let mgr = self.mgr.take().expect("reset ran");
        let committed = self.outcomes.0.load(Ordering::Relaxed);
        let aborted = self.outcomes.1.load(Ordering::Relaxed);
        if committed + aborted != 2 || committed == 0 {
            return Err(format!(
                "deadlock resolution not live: {committed} committed, {aborted} aborted"
            ));
        }
        if aborted > 0 {
            self.deadlock_schedules += 1;
        }
        if mgr.active_count() != 0 {
            return Err("transactions survived the run".into());
        }
        verify_trace(&mgr, self.mark)
    }

    fn rescue(&self) {
        if let Some(mgr) = &self.mgr {
            mgr.lock_manager().begin_drain();
        }
    }
}

fn main() {
    colock_trace::enable();
    let cfg = ExploreConfig::from_env();

    let cells = CellsConfig {
        n_cells: 2,
        c_objects_per_cell: 2,
        robots_per_cell: 1,
        n_effectors: 2,
        effectors_per_robot: 1,
        ..Default::default()
    };

    let mut storm = StormScenario {
        cells,
        mgr: None,
        mark: 0,
        committed: Arc::new(AtomicU64::new(0)),
    };
    let report = explore(&cfg, &mut storm);
    println!("storm: {report}");
    if let Some(f) = &report.failure {
        panic!("storm schedule failed:\n{f}");
    }
    assert!(report.is_clean(), "storm exploration not clean: {report}");
    let want = 500.min(cfg.max_schedules);
    assert!(
        report.distinct_schedules >= want || !report.truncated,
        "storm explored too few schedules: {report}"
    );

    let mut deadlock = DeadlockScenario {
        cells,
        mgr: None,
        mark: 0,
        outcomes: Arc::new((AtomicU64::new(0), AtomicU64::new(0))),
        deadlock_schedules: 0,
    };
    let dl_cfg = ExploreConfig { max_schedules: cfg.max_schedules.min(512), ..cfg };
    let report = explore(&dl_cfg, &mut deadlock);
    println!("deadlock-liveness: {report}");
    if let Some(f) = &report.failure {
        panic!("deadlock schedule failed:\n{f}");
    }
    assert!(report.is_clean(), "deadlock exploration not clean: {report}");
    assert!(report.distinct_schedules >= 2, "deadlock scenario barely explored: {report}");
    println!("deadlock-liveness: {} schedules closed the cycle", deadlock.deadlock_schedules);
    assert!(
        deadlock.deadlock_schedules > 0,
        "no explored schedule reached the deadlock: the scenario proves nothing"
    );

    println!("stress_explore: ok");
}
