//! `colock-check` — offline conformance checker front end.
//!
//! Two modes:
//!
//! * **`colock_check <file>`** — parses a trace previously dumped in the
//!   tab-separated [`colock_trace::Event`] line format (one event per line,
//!   as produced by `Event::to_line`) and runs the §4.4.2 protocol linter
//!   over it. Malformed lines are reported with their typed parse error and
//!   line number. Exits non-zero if any violation (or parse failure) is
//!   found.
//! * **`colock_check --self-test`** — exercises the whole checking stack
//!   end to end: static analysis of the derived cells lock graph and the
//!   compatibility matrix, a live traced run of the shared contention demo
//!   (which must detect at least one deadlock and resolve every one of
//!   them), and a dump/re-parse/re-lint round trip through the line format.
//!
//! ```text
//! cargo run --release --bin colock_check -- /tmp/run.trace
//! cargo run --release --bin colock_check -- --self-test
//! ```

use colock_bench::contention_demo;
use colock_check::{check_graph, check_matrix, Linter};
use colock_core::graph::derive_lock_graph;
use colock_sim::{build_cells_store, CellsConfig};
use colock_trace::{Event, EventKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--self-test") => self_test(),
        Some(path) => check_file(path),
        None => {
            eprintln!("usage: colock_check <trace-file> | colock_check --self-test");
            std::process::exit(2);
        }
    }
}

/// Parses `path` as one `Event::to_line` record per line and lints the
/// resulting stream. Without a schema at hand the relation-level entry-point
/// placement check is skipped; everything else runs.
fn check_file(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("colock-check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut events: Vec<Event> = Vec::new();
    let mut bad_lines = 0usize;
    for (no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::parse_line(line) {
            Ok(ev) => events.push(ev),
            Err(e) => {
                eprintln!("colock-check: {path}:{}: {e}", no + 1);
                bad_lines += 1;
            }
        }
    }
    let report = Linter::new().lint(&events);
    println!(
        "colock-check: {} events from {path} ({bad_lines} malformed lines)",
        events.len()
    );
    print!("{}", report.render_with_context(&events));
    if !report.is_clean() || bad_lines > 0 {
        std::process::exit(1);
    }
}

fn fail(what: &str, detail: impl std::fmt::Display) -> ! {
    eprintln!("colock-check self-test FAILED: {what}\n{detail}");
    std::process::exit(1)
}

/// End-to-end exercise of static analysis, live linting, and the trace file
/// round trip. Exits 0 only if every stage passes.
fn self_test() {
    // Stage 1: the derived cells lock graph and the compatibility matrix
    // must pass the static analyzer.
    let store = build_cells_store(&CellsConfig::default());
    let catalog = store.catalog();
    let graph = derive_lock_graph(catalog);
    let report = check_graph(&graph, catalog);
    if !report.is_clean() {
        fail("static analysis of the cells lock graph", report.render());
    }
    println!(
        "static: {} nodes / {} relations checked, clean",
        report.nodes_checked, report.relations_checked
    );
    let matrix_errors = check_matrix();
    if !matrix_errors.is_empty() {
        let rendered: Vec<String> = matrix_errors.iter().map(|e| e.to_string()).collect();
        fail("compatibility-matrix laws", rendered.join("\n"));
    }
    println!("static: compatibility-matrix laws hold");

    // Stage 2: a live traced run of the contention demo must detect at
    // least one deadlock, resolve every one of them, and lint clean.
    let events = contention_demo();
    let detected = events.iter().filter(|e| e.kind == EventKind::DeadlockDetected).count();
    let victims = events.iter().filter(|e| e.kind == EventKind::VictimChosen).count();
    if detected == 0 || victims == 0 {
        fail(
            "contention demo",
            format!("expected a detected+resolved deadlock, saw {detected} detections / {victims} victims"),
        );
    }
    let linter = Linter::with_catalog(catalog);
    let report = linter.lint(&events);
    if !report.is_clean() {
        fail("lint of the contention demo", report.render_with_context(&events));
    }
    println!(
        "lint: {} events, {} grants, {} deadlocks checked, clean",
        report.events_seen, report.grants_checked, report.deadlocks_checked
    );

    // Stage 3: round trip through the on-disk line format — dump, re-parse,
    // re-lint. The re-parsed stream must be lossless and equally clean.
    let path = std::env::temp_dir().join(format!("colock_check_selftest_{}.trace", std::process::id()));
    let dump: String = events.iter().map(|e| e.to_line() + "\n").collect();
    if let Err(e) = std::fs::write(&path, &dump) {
        fail("writing round-trip trace file", e);
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| fail("re-reading trace file", e));
    let mut reparsed = Vec::new();
    for (no, line) in text.lines().enumerate() {
        match Event::parse_line(line) {
            Ok(ev) => reparsed.push(ev),
            Err(e) => fail("round-trip parse", format!("line {}: {e}", no + 1)),
        }
    }
    let _ = std::fs::remove_file(&path);
    if reparsed != events {
        fail("round trip", "re-parsed stream differs from the captured one");
    }
    let report = linter.lint(&reparsed);
    if !report.is_clean() {
        fail("lint of the round-tripped trace", report.render_with_context(&reparsed));
    }
    println!("round-trip: {} events dumped, re-parsed, re-linted, clean", reparsed.len());
    println!("colock-check self-test OK");
}
