//! `colock-check` — offline conformance checker front end.
//!
//! Three modes:
//!
//! * **`colock_check <file>`** — parses a trace previously dumped in the
//!   tab-separated [`colock_trace::Event`] line format (one event per line,
//!   as produced by `Event::to_line`) and runs the §4.4.2 protocol linter
//!   over it. Malformed lines are reported with their typed parse error and
//!   line number. Exits non-zero if any violation (or parse failure) is
//!   found.
//! * **`colock_check --certify <file>`** — parses the same line format and
//!   runs the conflict-serializability certifier instead: the trace's
//!   conflict graph (r/w, semantic-mode, and MVCC reads-from edges over
//!   committed transactions) is rebuilt and checked for cycles. Any cycle
//!   is rendered with its per-transaction timeline and a DOT export, and
//!   the exit code is non-zero.
//! * **`colock_check --self-test`** — exercises the whole checking stack
//!   end to end: static analysis of the derived cells lock graph and the
//!   compatibility matrix, a live traced run of the shared contention demo
//!   (which must detect at least one deadlock, resolve every one of them,
//!   lint clean, and certify conflict-serializable), a dump/re-parse/re-lint
//!   round trip through the line format, and a seeded write-skew trace that
//!   the linter passes but the certifier must flag.
//! * **`colock_check --dump demo|skew <file>`** — writes a reference trace
//!   in the line format: `demo` is the live contention demo (lints clean
//!   and certifies), `skew` is the seeded write-skew (lints clean, must
//!   fail `--certify`). Used by `scripts/check.sh` to exercise the file
//!   modes end to end.
//!
//! ```text
//! cargo run --release --bin colock_check -- /tmp/run.trace
//! cargo run --release --bin colock_check -- --certify /tmp/run.trace
//! cargo run --release --bin colock_check -- --self-test
//! ```

use colock_bench::contention_demo;
use colock_check::{check_graph, check_matrix, Certifier, Linter};
use colock_core::graph::derive_lock_graph;
use colock_sim::{build_cells_store, CellsConfig};
use colock_trace::{Event, EventKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--self-test") => self_test(),
        Some("--certify") => match args.get(1) {
            Some(path) => certify_file(path),
            None => {
                eprintln!("usage: colock_check --certify <trace-file>");
                std::process::exit(2);
            }
        },
        Some("--dump") => match (args.get(1).map(String::as_str), args.get(2)) {
            (Some(which @ ("demo" | "skew")), Some(path)) => dump_trace(which, path),
            _ => {
                eprintln!("usage: colock_check --dump demo|skew <trace-file>");
                std::process::exit(2);
            }
        },
        Some(path) => check_file(path),
        None => {
            eprintln!(
                "usage: colock_check <trace-file> | colock_check --certify <trace-file> | \
                 colock_check --dump demo|skew <trace-file> | colock_check --self-test"
            );
            std::process::exit(2);
        }
    }
}

/// Writes a reference trace in the `Event::to_line` format: the live
/// contention demo (clean) or the seeded write-skew (non-serializable).
fn dump_trace(which: &str, path: &str) {
    let events = match which {
        "demo" => contention_demo(),
        _ => write_skew_trace(),
    };
    let dump: String = events.iter().map(|e| e.to_line() + "\n").collect();
    if let Err(e) = std::fs::write(path, &dump) {
        eprintln!("colock-check: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("colock-check: wrote {} {which} events to {path}", events.len());
}

/// Reads `path` as one `Event::to_line` record per line; parse failures are
/// reported with their line number and counted.
fn parse_trace(path: &str) -> (Vec<Event>, usize) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("colock-check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut events: Vec<Event> = Vec::new();
    let mut bad_lines = 0usize;
    for (no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::parse_line(line) {
            Ok(ev) => events.push(ev),
            Err(e) => {
                eprintln!("colock-check: {path}:{}: {e}", no + 1);
                bad_lines += 1;
            }
        }
    }
    (events, bad_lines)
}

/// Parses `path` as one `Event::to_line` record per line and lints the
/// resulting stream. Without a schema at hand the relation-level entry-point
/// placement check is skipped; everything else runs.
fn check_file(path: &str) {
    let (events, bad_lines) = parse_trace(path);
    let report = Linter::new().lint(&events);
    println!(
        "colock-check: {} events from {path} ({bad_lines} malformed lines)",
        events.len()
    );
    print!("{}", report.render_with_context(&events));
    if !report.is_clean() || bad_lines > 0 {
        std::process::exit(1);
    }
}

/// Rebuilds the conflict graph from `path` and reports whether the trace is
/// conflict-serializable. Cycles are rendered with their member timelines
/// and a DOT export of the cyclic subgraph.
fn certify_file(path: &str) {
    let (events, bad_lines) = parse_trace(path);
    let report = Certifier::new().certify(&events);
    println!(
        "colock-check: certifying {} events from {path} ({bad_lines} malformed lines)",
        events.len()
    );
    print!("{}", report.render_with_context(&events));
    if report.is_clean() {
        println!(
            "certify: {} committed txn(s), {} edge(s), conflict graph acyclic",
            report.txns_committed, report.edges
        );
    }
    if !report.is_clean() || bad_lines > 0 {
        std::process::exit(1);
    }
}

fn fail(what: &str, detail: impl std::fmt::Display) -> ! {
    eprintln!("colock-check self-test FAILED: {what}\n{detail}");
    std::process::exit(1)
}

/// End-to-end exercise of static analysis, live linting, and the trace file
/// round trip. Exits 0 only if every stage passes.
fn self_test() {
    // Stage 1: the derived cells lock graph and the compatibility matrix
    // must pass the static analyzer.
    let store = build_cells_store(&CellsConfig::default());
    let catalog = store.catalog();
    let graph = derive_lock_graph(catalog);
    let report = check_graph(&graph, catalog);
    if !report.is_clean() {
        fail("static analysis of the cells lock graph", report.render());
    }
    println!(
        "static: {} nodes / {} relations checked, clean",
        report.nodes_checked, report.relations_checked
    );
    let matrix_errors = check_matrix();
    if !matrix_errors.is_empty() {
        let rendered: Vec<String> = matrix_errors.iter().map(|e| e.to_string()).collect();
        fail("compatibility-matrix laws", rendered.join("\n"));
    }
    println!("static: compatibility-matrix laws hold");

    // Stage 2: a live traced run of the contention demo must detect at
    // least one deadlock, resolve every one of them, and lint clean.
    let events = contention_demo();
    let detected = events.iter().filter(|e| e.kind == EventKind::DeadlockDetected).count();
    let victims = events.iter().filter(|e| e.kind == EventKind::VictimChosen).count();
    if detected == 0 || victims == 0 {
        fail(
            "contention demo",
            format!("expected a detected+resolved deadlock, saw {detected} detections / {victims} victims"),
        );
    }
    let linter = Linter::with_catalog(catalog);
    let report = linter.lint(&events);
    if !report.is_clean() {
        fail("lint of the contention demo", report.render_with_context(&events));
    }
    println!(
        "lint: {} events, {} grants, {} deadlocks checked, clean",
        report.events_seen, report.grants_checked, report.deadlocks_checked
    );
    // The same trace must also certify: the deadlock victim aborted, so the
    // surviving committed transactions form an acyclic conflict graph.
    let cert = Certifier::new().certify(&events);
    if !cert.is_clean() {
        fail("certify of the contention demo", cert.render_with_context(&events));
    }
    println!(
        "certify: {} committed txn(s), {} edge(s), conflict graph acyclic",
        cert.txns_committed, cert.edges
    );

    // Stage 3: round trip through the on-disk line format — dump, re-parse,
    // re-lint. The re-parsed stream must be lossless and equally clean.
    let path = std::env::temp_dir().join(format!("colock_check_selftest_{}.trace", std::process::id()));
    let dump: String = events.iter().map(|e| e.to_line() + "\n").collect();
    if let Err(e) = std::fs::write(&path, &dump) {
        fail("writing round-trip trace file", e);
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| fail("re-reading trace file", e));
    let mut reparsed = Vec::new();
    for (no, line) in text.lines().enumerate() {
        match Event::parse_line(line) {
            Ok(ev) => reparsed.push(ev),
            Err(e) => fail("round-trip parse", format!("line {}: {e}", no + 1)),
        }
    }
    let _ = std::fs::remove_file(&path);
    if reparsed != events {
        fail("round trip", "re-parsed stream differs from the captured one");
    }
    let report = linter.lint(&reparsed);
    if !report.is_clean() {
        fail("lint of the round-tripped trace", report.render_with_context(&reparsed));
    }
    println!("round-trip: {} events dumped, re-parsed, re-linted, clean", reparsed.len());

    // Stage 4: the certifier must be strictly stronger than the linter.
    // A seeded write-skew trace — each transaction reads one container (S)
    // and inserts into the one the other is reading, with all four grants
    // co-held — satisfies every per-transaction rule (the linter passes)
    // but is not conflict-serializable (the certifier must flag the cycle).
    let skew = write_skew_trace();
    let lint = Linter::new().lint(&skew);
    if !lint.is_clean() {
        fail(
            "seeded write-skew must pass the per-transaction linter",
            lint.render_with_context(&skew),
        );
    }
    let cert = Certifier::new().certify(&skew);
    if cert.is_clean() {
        fail(
            "seeded write-skew must NOT certify",
            "the certifier reported the non-serializable trace as clean",
        );
    }
    let rendered = cert.render_with_context(&skew);
    if !rendered.contains("digraph conflict_cycle") {
        fail("write-skew cycle rendering", format!("missing DOT export:\n{rendered}"));
    }
    println!("mutation: seeded write-skew passes the linter, flagged by the certifier");
    println!("colock-check self-test OK");
}

/// Builds the seeded non-serializable trace for stage 4: two transactions,
/// each holding `S` on one object while inserting (`IN` + element `X`) into
/// the container attribute of the object the *other* one is reading, all
/// grants co-held, both committing. Proper 2PL per transaction — only the
/// cross-transaction conflict graph shows the cycle.
fn write_skew_trace() -> Vec<Event> {
    let obj_c = "db:d/seg:s/rel:r/obj:c";
    let obj_d = "db:d/seg:s/rel:r/obj:d";
    let cs = format!("{obj_c}/items");
    let ds = format!("{obj_d}/items");
    let ce = format!("{cs}/[k1]");
    let de = format!("{ds}/[k2]");
    let mut seq = 0u64;
    let mut ev = |kind: EventKind, txn: u64| {
        let mut e = Event::new(kind, txn);
        e.seq = seq;
        e.t_us = seq;
        seq += 1;
        e
    };
    vec![
        ev(EventKind::TxnBegin, 1).detail("short"),
        ev(EventKind::TxnBegin, 2).detail("short"),
        ev(EventKind::Grant, 1).mode("S").resource(obj_c).detail("immediate"),
        ev(EventKind::Grant, 2).mode("S").resource(obj_d).detail("immediate"),
        ev(EventKind::Grant, 1).mode("IN").resource(&ds).detail("immediate"),
        ev(EventKind::Grant, 2).mode("IN").resource(&cs).detail("immediate"),
        ev(EventKind::Grant, 1).mode("X").resource(&de).detail("immediate"),
        ev(EventKind::Grant, 2).mode("X").resource(&ce).detail("immediate"),
        ev(EventKind::Release, 1).mode("X").resource(&de),
        ev(EventKind::Release, 1).mode("IN").resource(&ds),
        ev(EventKind::Release, 1).mode("S").resource(obj_c),
        ev(EventKind::TxnCommit, 1),
        ev(EventKind::Release, 2).mode("X").resource(&ce),
        ev(EventKind::Release, 2).mode("IN").resource(&cs),
        ev(EventKind::Release, 2).mode("S").resource(obj_d),
        ev(EventKind::TxnCommit, 2),
    ]
}
