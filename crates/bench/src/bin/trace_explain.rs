//! `trace-explain` — replays a captured lock-event trace into per-transaction
//! timelines, annotating every lock with the §4.4.2 rule that caused it.
//!
//! Two modes:
//!
//! * **no arguments** — runs a built-in contention demo (two read/update
//!   transactions followed by a forced two-transaction deadlock) with tracing
//!   enabled, then explains the captured trace and prints the waits-for DOT
//!   graph the detector exported;
//! * **`trace-explain <file>`** — parses a trace previously dumped in the
//!   tab-separated [`colock_trace::Event`] line format (one event per line,
//!   as produced by `Event::to_line`) and renders the same timelines.
//!
//! ```text
//! cargo run --release --bin trace_explain
//! cargo run --release --bin trace_explain -- /tmp/run.trace
//! ```

use colock_bench::contention_demo;
use colock_trace::explain::{render_timeline, timeline};
use colock_trace::Event;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first() {
        Some(path) => explain_file(path),
        None => demo(),
    }
}

/// Parses `path` as one `Event::to_line` record per line and renders the
/// per-transaction timelines. Malformed lines are reported with their typed
/// parse error and line number, then skipped.
fn explain_file(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-explain: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut events: Vec<Event> = Vec::new();
    let mut skipped = 0usize;
    for (no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::parse_line(line) {
            Ok(ev) => events.push(ev),
            Err(e) => {
                eprintln!("trace-explain: {path}:{}: {e}", no + 1);
                skipped += 1;
            }
        }
    }
    println!("trace-explain: {} events from {path} ({skipped} lines skipped)\n", events.len());
    print!("{}", render_timeline(&timeline(&events)));
}

/// Built-in demo: a little contention plus one forced deadlock, explained.
fn demo() {
    println!("trace-explain — built-in contention demo (tracing enabled)\n");
    let events = contention_demo();
    println!("captured {} events; per-transaction timelines:\n", events.len());
    print!("{}", render_timeline(&timeline(&events)));

    let dots = colock_trace::deadlock_dots();
    if dots.is_empty() {
        println!("\n(no waits-for graph exported — detector never found a cycle)");
    } else {
        println!("\nwaits-for graph at detection time (render with `dot -Tsvg`):\n");
        for dot in &dots {
            println!("{dot}");
        }
    }
}
