//! `trace-explain` — replays a captured lock-event trace into per-transaction
//! timelines, annotating every lock with the §4.4.2 rule that caused it.
//!
//! Two modes:
//!
//! * **no arguments** — runs a built-in contention demo (two read/update
//!   transactions followed by a forced two-transaction deadlock) with tracing
//!   enabled, then explains the captured trace and prints the waits-for DOT
//!   graph the detector exported;
//! * **`trace-explain <file>`** — parses a trace previously dumped in the
//!   tab-separated [`colock_trace::Event`] line format (one event per line,
//!   as produced by `Event::to_line`) and renders the same timelines.
//!
//! ```text
//! cargo run --release --bin trace_explain
//! cargo run --release --bin trace_explain -- /tmp/run.trace
//! ```

use colock_bench::cells_manager;
use colock_core::{AccessMode, InstanceTarget};
use colock_sim::CellsConfig;
use colock_trace::explain::{render_timeline, timeline};
use colock_trace::Event;
use colock_txn::{ProtocolKind, TxnKind};
use std::sync::Barrier;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first() {
        Some(path) => explain_file(path),
        None => demo(),
    }
}

/// Parses `path` as one `Event::to_line` record per line and renders the
/// per-transaction timelines. Unparseable lines are counted and skipped.
fn explain_file(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-explain: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut events: Vec<Event> = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::parse_line(line) {
            Some(ev) => events.push(ev),
            None => skipped += 1,
        }
    }
    println!("trace-explain: {} events from {path} ({skipped} lines skipped)\n", events.len());
    print!("{}", render_timeline(&timeline(&events)));
}

/// Built-in demo: a little contention plus one forced deadlock, explained.
fn demo() {
    colock_trace::enable();
    println!("trace-explain — built-in contention demo (tracing enabled)\n");

    let cfg = CellsConfig { n_cells: 2, c_objects_per_cell: 4, ..Default::default() };
    let mgr = cells_manager(&cfg, ProtocolKind::Proposed);

    // Two well-behaved transactions: a reader and an updater.
    let reader = mgr.begin(TxnKind::Short);
    reader
        .lock(&InstanceTarget::object("cells", "c1").elem("robots", "r1"), AccessMode::Read)
        .expect("read lock");
    reader.commit().expect("commit");
    let writer = mgr.begin(TxnKind::Short);
    writer
        .lock(&InstanceTarget::object("cells", "c2"), AccessMode::Update)
        .expect("update lock");
    writer.commit().expect("commit");

    // Forced deadlock: two threads X-lock whole cells in opposite order. The
    // barrier makes both hold their first lock before requesting the second,
    // so the second requests close a waits-for cycle and the detector must
    // abort one of them.
    let barrier = Barrier::new(2);
    std::thread::scope(|scope| {
        for (mine, theirs) in [("c1", "c2"), ("c2", "c1")] {
            let mgr = &mgr;
            let barrier = &barrier;
            scope.spawn(move || {
                let txn = mgr.begin(TxnKind::Short);
                txn.lock(&InstanceTarget::object("cells", mine), AccessMode::Update)
                    .expect("first lock is uncontended");
                barrier.wait();
                match txn.lock(&InstanceTarget::object("cells", theirs), AccessMode::Update) {
                    Ok(_) => txn.commit().expect("commit"),
                    Err(e) if e.is_deadlock() => txn.abort().expect("abort"),
                    Err(e) => panic!("unexpected lock failure: {e}"),
                }
            });
        }
    });

    let events = colock_trace::snapshot();
    println!("captured {} events; per-transaction timelines:\n", events.len());
    print!("{}", render_timeline(&timeline(&events)));

    let dots = colock_trace::deadlock_dots();
    if dots.is_empty() {
        println!("\n(no waits-for graph exported — detector never found a cycle)");
    } else {
        println!("\nwaits-for graph at detection time (render with `dot -Tsvg`):\n");
        for dot in &dots {
            println!("{dot}");
        }
    }
}
