//! E2 — the protocol-oriented problem, part 1 (§3.2.2).
//!
//! Cost of X-locking a shared effector: the naive traditional-DAG protocol
//! must *find* (reverse scan) and IX-lock every robot referencing it with
//! full ancestor chains; the proposed protocol locks the entry point with
//! its superunit only. Sweep the sharing degree.

use colock_bench::cells_manager_writable;
use colock_core::{AccessMode, InstanceTarget};
use colock_sim::metrics::Table;
use colock_sim::CellsConfig;
use colock_txn::{ProtocolKind, TxnKind};

fn main() {
    println!("E2 — X-lock on a shared effector: naive DAG vs proposed\n");
    let mut table = Table::new(&[
        "cells", "sharing", "protocol", "locks", "scanned_objs", "entry_pts",
    ]);
    for n_cells in [1usize, 2, 4, 8, 16, 32] {
        let cfg = CellsConfig {
            n_cells,
            c_objects_per_cell: 10,
            robots_per_cell: 4,
            n_effectors: 4,
            effectors_per_robot: 2,
            ..Default::default()
        };
        for protocol in [ProtocolKind::NaiveDag, ProtocolKind::Proposed] {
            let mgr = cells_manager_writable(&cfg, protocol);
            let t = mgr.begin(TxnKind::Short);
            let target = InstanceTarget::object("effectors", "e1");
            let report = t.lock(&target, AccessMode::Update).expect("X on e1");
            table.row(vec![
                n_cells.to_string(),
                format!("{:.1}", cfg.sharing_degree()),
                protocol.name().to_string(),
                report.lock_count().to_string(),
                report.scan_cost.to_string(),
                report.entry_points_locked.to_string(),
            ]);
            t.commit().unwrap();
        }
    }
    print!("{}", table.render());
    println!();
    println!("expected shape (paper): naive-DAG lock count and scan cost grow with");
    println!("the number of referencing robots (sharing degree x cells); the proposed");
    println!("protocol stays flat — 'an acceptable overhead to lock common data");
    println!("exclusively' (§4.6 advantage 2).");
}
