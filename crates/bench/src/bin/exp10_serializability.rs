//! E10 — serializability audit: run many random concurrent workloads per
//! protocol, check each recorded history for conflict-serializability. The
//! proposed technique (and the correct baselines) must score 0 violations;
//! the relaxed naive protocol (§3.2.2, all-parents rule given up) must not.

use colock_core::authorization::Authorization;
use colock_sim::consistency::{run_scripted, HOp};
use colock_sim::metrics::Table;
use colock_sim::{build_cells_store, CellsConfig};
use colock_txn::{ProtocolKind, TransactionManager};
use colock_testkit::Rng;

fn main() {
    println!("E10 — serializability audit over random concurrent histories\n");
    let cfg = CellsConfig {
        n_cells: 2,
        c_objects_per_cell: 2,
        robots_per_cell: 3,
        n_effectors: 3,
        effectors_per_robot: 2,
        seed: 5,
    };
    let seeds = 100u64;
    let mut table = Table::new(&["protocol", "histories", "serializable", "violations"]);
    for protocol in [
        ProtocolKind::Proposed,
        ProtocolKind::ProposedRule4,
        ProtocolKind::WholeObject,
        ProtocolKind::TupleLevel,
        ProtocolKind::NaiveDag,
        ProtocolKind::NaiveRelaxed,
    ] {
        let mut ok = 0;
        let mut bad = 0;
        for seed in 0..seeds {
            let mgr = TransactionManager::over_store(
                build_cells_store(&cfg),
                Authorization::allow_all(),
                protocol,
            );
            let mut rng = Rng::seed_from_u64(seed);
            let scripts: Vec<Vec<HOp>> = (0..4)
                .map(|_| {
                    (0..4)
                        .map(|_| {
                            let cell = rng.gen_range(0..cfg.n_cells);
                            let robot = rng.gen_range(0..cfg.robots_per_cell);
                            let effector = rng.gen_range(0..cfg.n_effectors);
                            match rng.gen_range(0..4) {
                                0 => HOp::ReadRobot { cell, robot },
                                1 => HOp::WriteRobot { cell, robot },
                                2 => HOp::WriteEffector { effector },
                                _ => HOp::ReadEffectorViaRobot { cell, robot },
                            }
                        })
                        .collect()
                })
                .collect();
            let history = run_scripted(&mgr, scripts);
            match history.check() {
                Ok(()) => ok += 1,
                Err(_) => bad += 1,
            }
        }
        table.row(vec![
            protocol.name().to_string(),
            seeds.to_string(),
            ok.to_string(),
            bad.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("expected shape: every protocol with visible locks on common data");
    println!("scores 100/100 serializable; the relaxed naive protocol — implicit");
    println!("locks invisible from the side (§3.2.2) — produces violations.");
}
