//! E4 — the authorization-oriented problem (§3.2.3, rule 4′).
//!
//! Robot updaters that lack update rights on the effectors library: under
//! plain rule 4 every updater X-locks the shared effectors and serializes;
//! under rule 4′ they only S-lock them and run concurrently (Fig. 7's
//! Q2 ∥ Q3 generalized). Sweep the number of concurrent updaters.

use colock_bench::cells_manager;
use colock_sim::driver::ticks::TickConfig;
use colock_sim::metrics::Table;
use colock_sim::{CellsConfig, Op, TickDriver};
use colock_txn::ProtocolKind;

fn main() {
    println!("E4 — rule 4 vs rule 4': concurrent robot updaters sharing effectors\n");
    let mut table = Table::new(&[
        "updaters", "protocol", "ticks", "blocked", "deadlocks", "thr/ktick",
    ]);
    for workers in [2usize, 4, 8, 16] {
        let cfg = CellsConfig {
            n_cells: workers,
            robots_per_cell: 2,
            n_effectors: 2, // heavy sharing: everyone touches the same library
            effectors_per_robot: 2,
            c_objects_per_cell: 5,
            ..Default::default()
        };
        for protocol in [ProtocolKind::Proposed, ProtocolKind::ProposedRule4] {
            let mgr = cells_manager(&cfg, protocol);
            let driver = TickDriver::new(&mgr, TickConfig::default());
            // Worker w repeatedly updates robots of its own cell — disjoint
            // robots, shared effectors.
            // Three ops per transaction so the robot/effector locks are held
            // across ticks (contention is visible to the scheduler).
            let scripts: Vec<Vec<Vec<Op>>> = (0..workers)
                .map(|w| {
                    (0..5)
                        .map(|i| {
                            vec![
                                Op::UpdateRobot { cell: w, robot: i % cfg.robots_per_cell },
                                Op::ReadParts { cell: w },
                                Op::UpdateRobot {
                                    cell: w,
                                    robot: (i + 1) % cfg.robots_per_cell,
                                },
                            ]
                        })
                        .collect()
                })
                .collect();
            let out = driver.run(scripts);
            table.row(vec![
                workers.to_string(),
                protocol.name().to_string(),
                out.metrics.total_ticks.to_string(),
                out.metrics.blocked_ticks.to_string(),
                out.metrics.deadlock_aborts.to_string(),
                format!("{:.0}", out.metrics.throughput_per_kilotick()),
            ]);
        }
    }
    print!("{}", table.render());
    println!();
    println!("expected shape (paper): rule 4' shows no blocking (all updaters share");
    println!("S entry locks); plain rule 4 serializes on the X-locked effectors, so");
    println!("blocked ticks grow with the updater count — 'can drastically increase");
    println!("the degree of concurrency' (§3.2.3).");
}
