//! F7 — Fig. 7: the exact lock sets held by queries Q2 and Q3, and their
//! concurrent execution under rule 4′ although both touch effector e2.

use colock_core::fixtures::{fig1_catalog, fig6_source};
use colock_core::{
    AccessMode, Authorization, InstanceTarget, ProtocolEngine, ProtocolOptions, Right,
};
use colock_lockmgr::{LockManager, TxnId};
use std::sync::Arc;

fn main() {
    let engine = ProtocolEngine::new(Arc::new(fig1_catalog()));
    let lm = LockManager::new();
    let src = fig6_source();
    // Fig. 7 assumption: neither Q2 nor Q3 may update relation "effectors".
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);

    let q2 = InstanceTarget::object("cells", "c1").elem("robots", "r1");
    let q3 = InstanceTarget::object("cells", "c1").elem("robots", "r2");

    println!("Figure 7 — Complex Object \"c1\" and the locks held by Q2 and Q3\n");

    let t2 = TxnId(2);
    let r2 = engine
        .lock_proposed(&lm, t2, &src, &authz, &q2, AccessMode::Update, ProtocolOptions::default())
        .expect("Q2 locks");
    println!("locks acquired by Q2 (X on robot r1), in request order:");
    print!("{}", r2.render());

    let t3 = TxnId(3);
    let r3 = engine
        .lock_proposed(
            &lm,
            t3,
            &src,
            &authz,
            &q3,
            AccessMode::Update,
            ProtocolOptions::default().try_lock(),
        )
        .expect("Q3 must not block although both queries touch effector e2 (rule 4')");
    println!("\nlocks acquired by Q3 (X on robot r2), in request order:");
    print!("{}", r3.render());

    println!("\ncombined lock table in Fig. 7 style:");
    print!(
        "{}",
        colock_core::graph::display::render_held_locks(&lm, &[(t2, "Q2"), (t3, "Q3")])
    );

    println!("\nboth transactions hold S on the shared effector e2:");
    let e2 = engine
        .resource_for(&InstanceTarget::object("effectors", "e2"))
        .unwrap();
    for (txn, mode) in lm.holders(&e2) {
        println!("  {txn}: {mode}");
    }
    println!("\nQ2 and Q3 run concurrently under rule 4' — reproduced.");

    // Contrast: plain rule 4 serializes them.
    let lm2 = LockManager::new();
    let permissive = Authorization::allow_all();
    engine
        .lock_proposed(&lm2, t2, &src, &permissive, &q2, AccessMode::Update, ProtocolOptions::rule4_plain())
        .unwrap();
    let blocked = engine
        .lock_proposed(
            &lm2,
            t3,
            &src,
            &permissive,
            &q3,
            AccessMode::Update,
            ProtocolOptions::rule4_plain().try_lock(),
        )
        .is_err();
    println!("under plain rule 4 the same pair serializes on e2: {blocked}");
}
