//! E9 — the paper's closing claim (§5): "The deeper complex objects are
//! structured and/or the more abundant common data exist … the higher the
//! benefit of the proposed technique promises to be."
//!
//! Sweep the nesting depth of common data (`top → lib1 → … → libD`) and
//! measure, at each depth:
//!
//! * the cost of X-locking the **deepest** shared object under the naive DAG
//!   (transitive reverse scans through every level) vs the proposed protocol
//!   (superunit chain only);
//! * the blocking surface an updater of a `top` object leaves on the shared
//!   chain under rule 4 (X entry locks — nobody else can even read) vs
//!   rule 4′ (S entry locks — concurrent readers and updaters proceed).

use colock_core::authorization::Authorization;
use colock_core::{AccessMode, InstanceTarget, ProtocolEngine, ProtocolOptions};
use colock_lockmgr::{LockManager, LockMode, TxnId};
use colock_sim::metrics::Table;
use colock_sim::workload::chain::{build_chain_store, level_key, level_relation, ChainConfig};
use std::sync::Arc;

fn main() {
    println!("E9 — benefit grows with nesting depth (§5 closing claim)\n");
    let mut t1 = Table::new(&[
        "depth", "naive locks", "naive scans", "proposed locks", "ratio",
    ]);
    let mut t2 = Table::new(&["depth", "rule", "X entry locks", "S entry locks", "second updater ok"]);

    for depth in [1usize, 2, 4, 8] {
        let cfg = ChainConfig { depth, objects_per_level: 6 };
        let store = build_chain_store(&cfg);
        let engine = ProtocolEngine::new(Arc::clone(store.catalog()));
        let authz = Authorization::allow_all();

        // Part 1: X on the deepest object.
        let deepest = InstanceTarget::object(level_relation(depth), level_key(depth, 0));
        let lm = LockManager::new();
        let naive = engine
            .lock_naive_dag(&lm, TxnId(1), &*store, &authz, &deepest, AccessMode::Update, ProtocolOptions::default())
            .unwrap();
        let lm = LockManager::new();
        let proposed = engine
            .lock_proposed(&lm, TxnId(1), &*store, &authz, &deepest, AccessMode::Update, ProtocolOptions::default())
            .unwrap();
        t1.row(vec![
            depth.to_string(),
            naive.lock_count().to_string(),
            naive.scan_cost.to_string(),
            proposed.lock_count().to_string(),
            format!("{:.1}x", naive.lock_count() as f64 / proposed.lock_count() as f64),
        ]);

        // Part 2: updater of a top object — blocking surface on the chain.
        for (rule, opts) in [
            ("4'", ProtocolOptions::default()),
            ("4", ProtocolOptions::rule4_plain()),
        ] {
            // Under 4' the libraries are non-modifiable for the updater.
            let mut a = Authorization::allow_all();
            if rule == "4'" {
                for level in 1..=depth {
                    a.set_relation_default(level_relation(level), colock_core::Right::Read);
                }
            }
            let lm = LockManager::new();
            let report = engine
                .lock_proposed(
                    &lm,
                    TxnId(1),
                    &*store,
                    &a,
                    &InstanceTarget::object("top", level_key(0, 0)),
                    AccessMode::Update,
                    opts,
                )
                .unwrap();
            let x_entries = report
                .acquired
                .iter()
                .filter(|(r, m)| *m == LockMode::X && r.relation_name() != Some("top"))
                .count();
            let s_entries = report
                .acquired
                .iter()
                .filter(|(r, m)| *m == LockMode::S && r.relation_name() != Some("top"))
                .count();
            // Can a second updater work on another top object (sharing no
            // chain objects here — distinct columns)? And on one SHARING the
            // chain? Use object 1 which has its own column: always ok; the
            // interesting case is a reader of the shared chain object.
            let reader_ok = engine
                .lock_proposed(
                    &lm,
                    TxnId(2),
                    &*store,
                    &a,
                    &InstanceTarget::object(level_relation(1), level_key(1, 0)),
                    AccessMode::Read,
                    ProtocolOptions { wait: colock_lockmgr::WaitPolicy::Try, ..opts },
                )
                .is_ok();
            t2.row(vec![
                depth.to_string(),
                rule.to_string(),
                x_entries.to_string(),
                s_entries.to_string(),
                reader_ok.to_string(),
            ]);
        }
    }
    print!("{}", t1.render());
    println!();
    print!("{}", t2.render());
    println!();
    println!("expected shape (paper §5): the naive/proposed cost ratio for exclusive");
    println!("locks on deep shared data grows with depth; under rule 4' the updater");
    println!("leaves only S locks on the chain (readers proceed at any depth), while");
    println!("rule 4 X-locks every level (readers blocked) — the deeper the nesting,");
    println!("the larger the proposed technique's advantage.");
}
