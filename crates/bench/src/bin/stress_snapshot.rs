//! Read-mostly stress harness for the multiversion overlay: varied-seed
//! rounds of the threaded driver with a large read-only fraction racing the
//! engineering mix's checkouts and updates. Honors `COLOCK_CHECK=1` (every
//! round's trace through the protocol linter, including the snapshot rules)
//! and `COLOCK_NO_MVCC=1` (the S-locking ablation — readers must still
//! complete, now through the lock table). Runs `COLOCK_STRESS_ROUNDS`
//! rounds (default 100000 — effectively until interrupted; CI sets a small
//! bound) with the same 8-second stall watchdog as `stress_lockmgr`.

use colock_bench::cells_manager;
use colock_sim::{run_threads, CellsConfig, QueryMix, ThreadConfig};
use colock_txn::ProtocolKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let cells = CellsConfig {
        n_cells: 4, c_objects_per_cell: 40, robots_per_cell: 4,
        n_effectors: 6, effectors_per_robot: 2, ..Default::default()
    };
    let rounds: u64 = std::env::var("COLOCK_STRESS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100000);
    let round_counter = Arc::new(AtomicU64::new(0));
    for round in 0..rounds {
        round_counter.store(round, Ordering::Relaxed);
        let mgr = cells_manager(&cells, ProtocolKind::Proposed);
        let mvcc = mgr.mvcc_enabled();
        let cfg = ThreadConfig {
            workers: 4, txns_per_worker: 8, ops_per_txn: 3,
            mix: QueryMix::engineering(), seed: round, cells,
            readonly_pct: 70,
        };
        // Watchdog: if this round takes >8s, dump the lock table and abort.
        let mgr2 = Arc::clone(&mgr);
        let rc = Arc::clone(&round_counter);
        let watchdog = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(8));
            if rc.load(Ordering::Relaxed) == round {
                eprintln!("=== STALL at round {round} (dump 1) ===");
                eprintln!("{}", mgr2.lock_manager().debug_dump());
                std::thread::sleep(std::time::Duration::from_secs(2));
                eprintln!("=== STALL at round {round} (dump 2) ===");
                eprintln!("{}", mgr2.lock_manager().debug_dump());
                eprintln!("=== parked for inspection (pid {}) ===", std::process::id());
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(60));
                }
            }
        });
        let r = run_threads(&mgr, &cfg);
        drop(watchdog);
        let stats = mgr.lock_manager().stats().snapshot();
        // Overlay invariants, per round: with MVCC on, every snapshot read
        // bypassed the lock table (and at 70% read-only some must exist);
        // with the ablation nothing is ever elided. Either way the table
        // drains to empty and chains stay GC-bounded.
        if mvcc {
            assert!(
                stats.reads_elided > 0,
                "round {round}: no snapshot reads despite readonly_pct=70"
            );
            assert_eq!(
                r.metrics.reader_waits.count(),
                stats.reads_elided,
                "round {round}: reader histogram disagrees with reads_elided"
            );
        } else {
            assert_eq!(stats.reads_elided, 0, "round {round}: ablation elided a read");
        }
        assert_eq!(mgr.lock_manager().table_size(), 0, "round {round}: lock table not drained");
        if round % 50 == 0 {
            println!(
                "round {round}: committed={} deadlocks={} elided={} pruned={} (mvcc={})",
                r.metrics.committed, r.metrics.deadlock_aborts,
                stats.reads_elided, mgr.store().versions_pruned(), mvcc
            );
        }
    }
}
