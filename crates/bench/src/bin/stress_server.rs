//! Kill-and-restart stress for the serving layer: proves §3.1 durability
//! end to end over reconnecting TCP clients.
//!
//! Each round:
//! 1. start a server over a shared store with a durable long-lock journal;
//! 2. a handful of clients `BEGIN LONG` and `CHECKOUT` a robot each, over
//!    real loopback connections, and note their acknowledged txn ids;
//! 3. `kill()` the server — connections sever with no goodbye, nothing is
//!    released (crash semantics);
//! 4. build a *new* manager over the same store, replay the surviving
//!    journal medium through `recover()`, start a *new* server on it;
//! 5. the clients reconnect, `RESUME` their transactions, verify a rival
//!    update still blocks (the long lock was re-adopted, not re-granted),
//!    then `CHECKIN` and `COMMIT`;
//! 6. assert every acknowledged long lock was re-adopted and the table
//!    sweeps clean.
//!
//! Knobs: `COLOCK_SERVER_ROUNDS` (default 5), `COLOCK_SEED`. With
//! `COLOCK_CHECK=1` every round's trace window is linted.

use colock_core::authorization::{Authorization, Right};
use colock_core::{AccessMode, ResourcePath};
use colock_lockmgr::Journal;
use colock_server::client::Client;
use colock_server::wire::{parse_target, BeginKind, ErrorCode, Role};
use colock_server::{Server, ServerConfig};
use colock_sim::{build_cells_store, CellsConfig};
use colock_storage::Store;
use colock_txn::{ProtocolKind, TransactionManager, TxnKind};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const CLIENTS: usize = 4;

fn env<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn manager_over(
    store: &Arc<Store>,
    medium: &Arc<Mutex<String>>,
) -> Arc<TransactionManager> {
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    let mgr = Arc::new(TransactionManager::over_store(
        Arc::clone(store),
        authz,
        ProtocolKind::Proposed,
    ));
    let journal = Arc::new(Journal::<ResourcePath>::over_medium(Arc::clone(medium)));
    assert!(mgr.attach_journal(journal));
    mgr
}

fn robot(i: usize) -> colock_core::InstanceTarget {
    parse_target(&format!("rel:cells/obj:c{}/attr:robots/elem:r1", i + 1)).expect("static")
}

fn main() {
    let rounds: u64 = env("COLOCK_SERVER_ROUNDS", 5);
    let checking = colock_check::enabled_from_env();
    if checking {
        colock_trace::enable();
    }

    for round in 0..rounds {
        let store = build_cells_store(&CellsConfig {
            n_cells: CLIENTS.max(4),
            c_objects_per_cell: 8,
            ..Default::default()
        });
        let medium = Arc::new(Mutex::new(String::new()));
        let mark = colock_trace::current_seq();

        // ---- Phase 1: serve, check out long locks, then crash. ----
        let server = Server::start(manager_over(&store, &medium), ServerConfig::default())
            .expect("bind");
        let addr = server.addr();
        let mut acked: Vec<(usize, colock_lockmgr::TxnId)> = Vec::new();
        {
            let mut clients: Vec<Client> = (0..CLIENTS)
                .map(|i| Client::connect(addr, &format!("ws{i}"), Role::Engineer).expect("connect"))
                .collect();
            for (i, c) in clients.iter_mut().enumerate() {
                let txn = c.begin(BeginKind::Long).expect("begin long");
                c.checkout(&robot(i), AccessMode::Update).expect("checkout acked");
                acked.push((i, txn));
            }
            server.kill(); // crash: no goodbyes, nothing released
        }

        // ---- Phase 2: recover from the surviving medium, serve again. ----
        let surviving = medium.lock().expect("medium").clone();
        let mgr2 = manager_over(&store, &medium);
        let report = mgr2.recover(&surviving).expect("journal must replay");
        for (i, txn) in &acked {
            assert!(
                report.owners.contains(txn),
                "round {round}: acked long lock of ws{i} ({txn:?}) not re-adopted",
            );
        }
        let server2 = Server::start(Arc::clone(&mgr2), ServerConfig::default()).expect("rebind");
        let addr2 = server2.addr();

        // Rival updates must still block: the locks were re-adopted.
        for (i, _) in &acked {
            let rival = mgr2.begin(TxnKind::Short);
            rival.set_wait_policy(colock_lockmgr::WaitPolicy::Try);
            let err = rival.lock(&robot(*i), AccessMode::Update).unwrap_err();
            assert!(err.is_would_block(), "round {round}: ws{i} lock lost in crash: {err}");
            rival.abort().expect("rival abort");
        }

        // ---- Phase 3: clients reconnect and finish their conversations. ----
        for (i, txn) in &acked {
            let mut c =
                Client::connect(addr2, &format!("ws{i}-rc"), Role::Engineer).expect("reconnect");
            c.resume(*txn).expect("resume re-adopted txn");
            // The private copy was volatile workstation state and died with
            // the crash; the re-adopted long lock makes this re-checkout an
            // immediate grant (no new conflict is possible).
            let copy = c.checkout(&robot(*i), AccessMode::Update).expect("re-checkout");
            c.checkin(&robot(*i), copy).expect("checkin");
            c.commit().expect("commit");
            c.quit();
        }
        // A stale RESUME must now be refused.
        {
            let mut c = Client::connect(addr2, "stale", Role::Engineer).expect("connect");
            let err = c.resume(acked[0].1).expect_err("finished txn must not resume");
            assert!(
                matches!(err.code(), Some(ErrorCode::UnknownTxn | ErrorCode::NotActive)),
                "{err}"
            );
            c.quit();
        }
        assert_eq!(mgr2.active_count(), 0, "round {round}: txn states leaked");
        assert_eq!(mgr2.lock_manager().table_size(), 0, "round {round}: locks leaked");
        let stragglers = server2.drain(Duration::from_secs(2));
        assert_eq!(stragglers, 0);

        if checking {
            let events = colock_trace::events_since(mark);
            let lint = colock_check::Linter::with_catalog(store.catalog()).lint(&events);
            assert!(
                lint.is_clean(),
                "COLOCK_CHECK: round {round} violations:\n{}",
                lint.render()
            );
            if colock_check::certify_enabled_from_env() {
                let cert = colock_check::Certifier::new().certify(&events);
                assert!(
                    cert.is_clean(),
                    "COLOCK_CERTIFY: round {round} not conflict-serializable:\n{}",
                    cert.render_with_context(&events)
                );
            }
        }
        println!(
            "round {round}: {} long locks crashed, {} re-adopted, resumed and committed over TCP",
            acked.len(),
            report.owners.len(),
        );
    }
    println!("stress_server: §3.1 held over {rounds} kill/restart round(s)");
}
