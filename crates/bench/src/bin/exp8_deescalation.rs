//! E8 (extension) — de-escalation: "the efficient release of locks
//! ('de-escalation')" is listed in §5 as future work; we implement and
//! measure it. A transaction holding a coarse subtree lock trades it for
//! element locks on just the data it still needs, un-blocking waiters for
//! the rest of the subtree.

use colock_bench::cells_manager;
use colock_core::{AccessMode, InstanceTarget, ProtocolOptions};
use colock_sim::metrics::Table;
use colock_sim::CellsConfig;
use colock_txn::{ProtocolKind, TxnKind};

fn main() {
    println!("E8 — de-escalation (paper future work, implemented)\n");
    let mut table = Table::new(&[
        "robots", "kept", "others unblocked before", "others unblocked after",
    ]);
    for n_robots in [4usize, 8, 16] {
        let cfg = CellsConfig {
            n_cells: 1,
            robots_per_cell: n_robots,
            c_objects_per_cell: 5,
            ..Default::default()
        };
        let mgr = cells_manager(&cfg, ProtocolKind::Proposed);
        let holder = mgr.begin(TxnKind::Short);
        let robots = InstanceTarget::object("cells", "c1").attr("robots");
        holder.lock(&robots, AccessMode::Read).unwrap();

        // Before de-escalation: every robot is blocked for updaters.
        let unblocked_before = count_free_robots(&mgr, n_robots);

        // De-escalate: keep only robot r1.
        let keep = [InstanceTarget::object("cells", "c1").elem("robots", "r1")];
        mgr.engine()
            .deescalate(
                mgr.lock_manager(),
                holder.id(),
                &**mgr.store(),
                mgr.authorization(),
                &robots,
                &keep,
                ProtocolOptions::default(),
            )
            .unwrap();
        let unblocked_after = count_free_robots(&mgr, n_robots);
        holder.commit().unwrap();

        table.row(vec![
            n_robots.to_string(),
            "1".to_string(),
            unblocked_before.to_string(),
            unblocked_after.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("expected shape: before de-escalation 0 robots are updatable by other");
    println!("transactions; after it all but the kept one are — the coarse lock's");
    println!("concurrency cost is recovered without giving up the retained data.");
}

/// How many robots a second transaction could X-lock right now.
fn count_free_robots(mgr: &colock_txn::TransactionManager, n: usize) -> usize {
    let mut free = 0;
    for i in 0..n {
        let probe = mgr.begin(TxnKind::Short);
        let target = InstanceTarget::object("cells", "c1").elem("robots", format!("r{}", i + 1));
        if probe.try_lock(&target, AccessMode::Update).is_ok() {
            free += 1;
        }
        probe.abort().unwrap();
    }
    free
}
