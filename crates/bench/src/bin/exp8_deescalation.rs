//! E8 (extension) — de-escalation: "the efficient release of locks
//! ('de-escalation')" is listed in §5 as future work; we implement and
//! measure it. A transaction holding a coarse subtree lock trades it for
//! element locks on just the data it still needs, un-blocking waiters for
//! the rest of the subtree.

use colock_bench::cells_manager;
use colock_core::optimizer::Optimizer;
use colock_core::{AccessMode, InstanceTarget, ProtocolOptions};
use colock_sim::metrics::Table;
use colock_sim::CellsConfig;
use colock_txn::{ProtocolKind, TxnKind};

fn main() {
    println!("E8 — de-escalation (paper future work, implemented)\n");
    let mut table = Table::new(&[
        "robots", "kept", "others unblocked before", "others unblocked after",
    ]);
    for n_robots in [4usize, 8, 16] {
        let cfg = CellsConfig {
            n_cells: 1,
            robots_per_cell: n_robots,
            c_objects_per_cell: 5,
            ..Default::default()
        };
        let mgr = cells_manager(&cfg, ProtocolKind::Proposed);
        let holder = mgr.begin(TxnKind::Short);
        let robots = InstanceTarget::object("cells", "c1").attr("robots");
        holder.lock(&robots, AccessMode::Read).unwrap();

        // Before de-escalation: every robot is blocked for updaters.
        let unblocked_before = count_free_robots(&mgr, n_robots);

        // De-escalate: keep only robot r1.
        let keep = [InstanceTarget::object("cells", "c1").elem("robots", "r1")];
        mgr.engine()
            .deescalate(
                mgr.lock_manager(),
                holder.id(),
                &**mgr.store(),
                mgr.authorization(),
                &robots,
                &keep,
                ProtocolOptions::default(),
            )
            .unwrap();
        let unblocked_after = count_free_robots(&mgr, n_robots);
        holder.commit().unwrap();

        table.row(vec![
            n_robots.to_string(),
            "1".to_string(),
            unblocked_before.to_string(),
            unblocked_after.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("expected shape: before de-escalation 0 robots are updatable by other");
    println!("transactions; after it all but the kept one are — the coarse lock's");
    println!("concurrency cost is recovered without giving up the retained data.");

    // Part 2: *when* to de-escalate, decided adaptively. The static policy
    // never trades its coarse lock back; the adaptive one watches the PR 3
    // wait histograms of the resource it holds and de-escalates once the
    // measured tail is hot (Optimizer::deescalation_advised).
    println!("\nadaptive de-escalation from measured waits (COLOCK_ADAPTIVE_THETA):");
    colock_trace::enable();
    let n_robots = 8usize;
    let cfg = CellsConfig {
        n_cells: 1,
        robots_per_cell: n_robots,
        c_objects_per_cell: 5,
        ..Default::default()
    };

    // Observation window: a coarse holder makes 8 rival element-updaters
    // queue ~8ms each, then commits — the resolved waits land in the trace.
    let mark = colock_trace::current_seq();
    {
        let mgr = cells_manager(&cfg, ProtocolKind::Proposed);
        let robots = InstanceTarget::object("cells", "c1").attr("robots");
        let holder = mgr.begin(TxnKind::Short);
        holder.lock(&robots, AccessMode::Read).unwrap();
        std::thread::scope(|scope| {
            for r in 1..=8usize {
                let mgr = &mgr;
                scope.spawn(move || {
                    let rival = mgr.begin(TxnKind::Short);
                    let t = InstanceTarget::object("cells", "c1").elem("robots", format!("r{r}"));
                    rival.lock(&t, AccessMode::Update).unwrap();
                    rival.commit().unwrap();
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(8));
            holder.commit().unwrap();
        });
    }
    let mut measured = colock_trace::WaitHistogram::default();
    for (_, h) in colock_trace::wait_histograms(&colock_trace::events_since(mark)) {
        measured.merge(&h);
    }
    let quiet = colock_trace::WaitHistogram::default();

    let mut t2 = Table::new(&["policy", "waits seen", "p99 (us)", "advised", "robots free while held"]);
    for (policy, hist) in [("static", &quiet), ("adaptive", &measured)] {
        let advised = Optimizer::deescalation_advised(hist);
        let mgr = cells_manager(&cfg, ProtocolKind::Proposed);
        let robots = InstanceTarget::object("cells", "c1").attr("robots");
        let holder = mgr.begin(TxnKind::Short);
        holder.lock(&robots, AccessMode::Read).unwrap();
        if advised {
            let keep = [InstanceTarget::object("cells", "c1").elem("robots", "r1")];
            mgr.engine()
                .deescalate(
                    mgr.lock_manager(),
                    holder.id(),
                    &**mgr.store(),
                    mgr.authorization(),
                    &robots,
                    &keep,
                    ProtocolOptions::default(),
                )
                .unwrap();
        }
        let free = count_free_robots(&mgr, n_robots);
        holder.commit().unwrap();
        t2.row(vec![
            policy.to_string(),
            hist.count().to_string(),
            hist.quantile_us(0.99).to_string(),
            advised.to_string(),
            free.to_string(),
        ]);
    }
    print!("{}", t2.render());
    println!();
    println!("expected shape: the static policy holds its subtree lock to commit (0");
    println!("robots free); the adaptive one reads the measured hot tail, trades the");
    println!("coarse lock for the one element it still needs, and frees the rest.");
}

/// How many robots a second transaction could X-lock right now.
fn count_free_robots(mgr: &colock_txn::TransactionManager, n: usize) -> usize {
    let mut free = 0;
    for i in 0..n {
        let probe = mgr.begin(TxnKind::Short);
        let target = InstanceTarget::object("cells", "c1").elem("robots", format!("r{}", i + 1));
        if probe.try_lock(&target, AccessMode::Update).is_ok() {
            free += 1;
        }
        probe.abort().unwrap();
    }
    free
}
