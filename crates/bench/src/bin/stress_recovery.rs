//! Bounded fault-injection stress for the crash-recovery path: repeats the
//! check-out / edit / check-in cycle with a seeded crash injected at a
//! random journal append, rebuilds the server from the surviving medium,
//! and checks §3.1's invariant — every acknowledged long lock is either
//! fully recovered under its owner or was durably released; nothing is
//! half-present and nothing leaks past a post-crash sweep.
//!
//! Knobs: `COLOCK_CRASH_SEED` (schedule seed, default 0xC010CC) and
//! `COLOCK_RECOVERY_ROUNDS` (rounds per crash point, default 25). With
//! `COLOCK_CHECK=1` every crash/recovery cycle is additionally traced and
//! replayed through the §4.4.2 protocol linter — recovered grants, probes
//! and the post-recovery sweep must all be conformant.

use colock_core::authorization::{Authorization, Right};
use colock_core::{AccessMode, InstanceTarget, ResourcePath};
use colock_lockmgr::{Journal, TxnId};
use colock_nf2::Value;
use colock_sim::{build_cells_store, CellsConfig, Workstation};
use colock_storage::Store;
use colock_testkit::{CrashPoint, FaultPlan, Rng};
use colock_txn::{ProtocolKind, TransactionManager, TxnKind};
use std::sync::Arc;

const STATIONS: usize = 4;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn server(store: &Arc<Store>) -> (TransactionManager, Arc<Journal<ResourcePath>>) {
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    let mgr = TransactionManager::over_store(Arc::clone(store), authz, ProtocolKind::Proposed);
    let journal = Arc::new(Journal::<ResourcePath>::new());
    assert!(mgr.attach_journal(Arc::clone(&journal)));
    (mgr, journal)
}

fn robot(cell: usize) -> InstanceTarget {
    InstanceTarget::object("cells", format!("c{}", cell + 1)).elem("robots", "r1")
}

/// Runs one crashed cycle; returns (medium, acked-holding ids, acked
/// check-in cells, appends observed).
fn run_cycle(
    store: &Arc<Store>,
    plan: Option<FaultPlan>,
) -> (String, Vec<(usize, TxnId)>, Vec<usize>, u64) {
    let (mgr, journal) = server(store);
    if let Some(p) = plan {
        journal.arm(p);
    }
    let mut stations: Vec<Workstation<'_>> =
        (0..STATIONS).map(|i| Workstation::connect(&mgr, format!("ws{i}"))).collect();
    let mut holding = [false; STATIONS];
    let mut checked_in = Vec::new();
    'script: {
        for (i, ws) in stations.iter_mut().enumerate() {
            let ok = ws.checkout(&robot(i), AccessMode::Update).is_ok();
            if mgr.journal_crashed() || !ok {
                break 'script;
            }
            holding[i] = true;
            ws.edit(&robot(i), |v| {
                *v.field_mut("trajectory").unwrap() = Value::str(format!("edited-{i}"));
            })
            .expect("edit of update checkout");
        }
        for (i, ws) in stations.iter_mut().enumerate().take(STATIONS / 2) {
            let ok = ws.checkin_all().is_ok();
            if mgr.journal_crashed() || !ok {
                holding[i] = false;
                break 'script;
            }
            holding[i] = false;
            checked_in.push(i);
        }
    }
    let mut held = Vec::new();
    for (i, ws) in stations.iter_mut().enumerate() {
        if let (Some(id), true) = (ws.crash(), holding[i]) {
            held.push((i, id));
        }
    }
    (journal.contents(), held, checked_in, journal.appends())
}

fn check(store: &Arc<Store>, medium: &str, held: &[(usize, TxnId)], checked_in: &[usize]) -> (usize, usize, usize) {
    let (mgr, _j) = server(store);
    let report = mgr.recover(medium).expect("medium must replay");
    assert!(report.dropped_tail <= 1, "more than the torn record dropped");
    for (i, id) in held {
        assert!(report.owners.contains(id), "acked holder ws{i} lost");
        let probe = mgr.begin(TxnKind::Short);
        assert!(probe.try_lock(&robot(*i), AccessMode::Update).is_err(), "ws{i} lock gone");
        probe.abort().expect("probe abort");
    }
    for i in checked_in {
        let probe = mgr.begin(TxnKind::Short);
        assert!(probe.try_lock(&robot(*i), AccessMode::Update).is_ok(), "ws{i} lock survived check-in");
        probe.commit().expect("probe commit");
    }
    for owner in &report.owners {
        mgr.resume(*owner).expect("recovered owner resumable").abort().expect("abortable");
    }
    assert_eq!(mgr.lock_manager().table_size(), 0, "leaked locks after sweep");
    assert_eq!(mgr.active_count(), 0, "leaked txn states after sweep");
    (report.owners.len(), report.locks, report.dropped_tail)
}

/// Under `COLOCK_CHECK=1`, drains the cycle's trace window through the
/// protocol linter and aborts loudly on any violation. The linter treats a
/// re-begun transaction id as a fresh incarnation, so the pre-crash server
/// and the recovery server sharing one window is fine.
fn lint_cycle(store: &Arc<Store>, mark: u64, label: &str) {
    let events = colock_trace::events_since(mark);
    let report = colock_check::Linter::with_catalog(store.catalog()).lint(&events);
    assert!(
        report.is_clean(),
        "COLOCK_CHECK: protocol violations in {label}:\n{}",
        report.render_with_context(&events)
    );
    if colock_check::certify_enabled_from_env() {
        let cert = colock_check::Certifier::new().certify(&events);
        assert!(
            cert.is_clean(),
            "COLOCK_CERTIFY: {label} not conflict-serializable:\n{}",
            cert.render_with_context(&events)
        );
    }
}

fn main() {
    let seed = env_u64("COLOCK_CRASH_SEED", 0xC0_10CC);
    let rounds = env_u64("COLOCK_RECOVERY_ROUNDS", 25);
    let checking = colock_check::enabled_from_env();
    if checking {
        colock_trace::enable();
    }

    // Dry run: learn the append budget and verify the no-crash control.
    let store = build_cells_store(&CellsConfig::default());
    let mark = colock_trace::current_seq();
    let (medium, held, checked_in, appends) = run_cycle(&store, None);
    check(&store, &medium, &held, &checked_in);
    if checking {
        lint_cycle(&store, mark, "control cycle");
    }
    println!("control: {appends} appends, {} holders recovered, clean sweep", held.len());

    let mut rng = Rng::seed_from_u64(seed);
    for point in CrashPoint::ALL {
        let (mut owners, mut locks, mut torn) = (0, 0, 0);
        for round in 0..rounds {
            let store = build_cells_store(&CellsConfig::default());
            let nth = rng.gen_range(1..appends + 1);
            let mark = colock_trace::current_seq();
            let (medium, held, checked_in, _) =
                run_cycle(&store, Some(FaultPlan::crash_at(point, nth)));
            let (o, l, t) = check(&store, &medium, &held, &checked_in);
            if checking {
                lint_cycle(&store, mark, &format!("{point} round {round}"));
            }
            owners += o;
            locks += l;
            torn += t;
        }
        println!(
            "{point}: {rounds} rounds, {owners} owners / {locks} locks recovered, {torn} torn tails, 0 violations"
        );
    }
    println!("stress_recovery: all invariants held (seed {seed:#x}, {rounds} rounds/point)");
}
