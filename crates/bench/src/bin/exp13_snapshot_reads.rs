//! E13 — multiversion read overlay: snapshot readers under an active long
//! check-out.
//!
//! The §3.1 workstation scenario at its worst for readers: a designer holds
//! a whole manufacturing cell under a *long* X check-out for the entire
//! experiment. Locking readers of that cell would wait for the full session
//! (here they would simply never be granted); snapshot readers take a commit
//! timestamp at begin, read the newest committed versions, and never enter
//! the lock table — their p99 latency is a few microseconds of tree walking
//! regardless of the check-out. The ablation (`COLOCK_NO_MVCC` semantics,
//! toggled in-process) sends the same readers through S locks and counts how
//! many of their reads would block.
//!
//! ```text
//! cargo run --release --bin exp13_snapshot_reads
//! ```

use colock_bench::cells_manager;
use colock_core::{AccessMode, InstanceTarget};
use colock_sim::metrics::Table;
use colock_sim::CellsConfig;
use colock_trace::WaitHistogram;
use colock_txn::{ProtocolKind, TxnKind};
use std::sync::Mutex;

const READERS: usize = 4;
const TXNS_PER_READER: usize = 200;
const READS_PER_TXN: usize = 8;

fn targets(cells: &CellsConfig) -> Vec<InstanceTarget> {
    let mut out = Vec::new();
    for robot in 0..cells.robots_per_cell {
        out.push(
            InstanceTarget::object("cells", CellsConfig::cell_key(0))
                .elem("robots", CellsConfig::robot_key(robot))
                .attr("trajectory"),
        );
    }
    out.push(InstanceTarget::object("cells", CellsConfig::cell_key(0)).attr("c_objects"));
    out
}

fn main() {
    println!("E13 — snapshot readers never wait on long locks\n");
    let cells = CellsConfig {
        n_cells: 2,
        c_objects_per_cell: 20,
        robots_per_cell: 4,
        ..Default::default()
    };
    let mgr = cells_manager(&cells, ProtocolKind::Proposed);

    // The designer checks out the whole cell — a long X lock that stays held
    // across everything below, exactly the blocking hazard of §3.1.
    let designer = mgr.begin(TxnKind::Long);
    designer
        .checkout(&InstanceTarget::object("cells", CellsConfig::cell_key(0)), AccessMode::Update)
        .expect("checkout");

    let mut table = Table::new(&[
        "readers", "reads", "p50", "p95", "p99", "max", "would-block", "reads elided",
    ]);
    for (label, mvcc) in [("snapshot", true), ("locking", false)] {
        mgr.set_mvcc(mvcc);
        let before = mgr.lock_manager().stats().snapshot();
        let hist = Mutex::new(WaitHistogram::default());
        let would_block = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..READERS {
                let mgr = &mgr;
                let cells = &cells;
                let hist = &hist;
                let would_block = &would_block;
                scope.spawn(move || {
                    let targets = targets(cells);
                    let mut local = WaitHistogram::default();
                    let mut blocked = 0u64;
                    for _ in 0..TXNS_PER_READER {
                        let reader = mgr.begin_readonly();
                        for i in 0..READS_PER_TXN {
                            let target = &targets[i % targets.len()];
                            let t0 = std::time::Instant::now();
                            match reader.try_snapshot_read(target) {
                                Ok(_) => local.record(t0.elapsed().as_micros() as u64),
                                Err(e) if e.is_would_block() => blocked += 1,
                                Err(e) => panic!("reader failed: {e}"),
                            }
                        }
                        reader.commit().expect("reader commit");
                    }
                    hist.lock().unwrap().merge(&local);
                    would_block.fetch_add(blocked, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        let stats = mgr.lock_manager().stats().snapshot().since(&before);
        let h = hist.into_inner().unwrap();
        table.row(vec![
            label.to_string(),
            h.count().to_string(),
            format!("{}us", h.quantile_us(0.50)),
            format!("{}us", h.quantile_us(0.95)),
            format!("{}us", h.quantile_us(0.99)),
            format!("{}us", h.max_us()),
            would_block.load(std::sync::atomic::Ordering::Relaxed).to_string(),
            stats.reads_elided.to_string(),
        ]);
    }
    designer.abort().expect("designer abort");
    mgr.set_mvcc(true);

    print!("{}", table.render());
    println!();
    println!("expected shape: with the overlay every read completes (p99 a handful");
    println!("of microseconds, zero lock requests, reads==reads_elided) while the");
    println!("check-out stays held; without it every read of the checked-out cell");
    println!("would block behind the long X lock — the readers make no progress at");
    println!("all until check-in. Long locks stop costing readers anything.");
}
