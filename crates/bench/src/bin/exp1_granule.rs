//! E1 — the granule-oriented problem (§3.2.1).
//!
//! Paper claims: (a) whole-object locking serializes Q1 ∥ Q2 although they
//! touch different parts of cell c1; (b) tuple-level locking explodes the
//! lock count as cells grow ("one cell may contain hundreds of c_objects");
//! (c) the proposed granules give concurrency at O(depth) lock cost.
//!
//! Output: for each cell size and protocol — locks needed by Q1, whether
//! Q1 ∥ Q2 interleave without blocking, and the tick count of the pair.

use colock_bench::cells_manager;
use colock_sim::metrics::Table;
use colock_sim::{CellsConfig, Op, TickDriver};
use colock_sim::driver::ticks::TickConfig;
use colock_txn::ProtocolKind;

fn main() {
    println!("E1 — granule-oriented problem: Q1 (read parts) vs Q2 (update robot) on one cell\n");
    let mut table = Table::new(&[
        "c_objects", "protocol", "locks(Q1)", "blocked", "ticks", "interleaves",
    ]);
    for n in [10usize, 50, 100, 500, 1000] {
        for protocol in [ProtocolKind::Proposed, ProtocolKind::WholeObject, ProtocolKind::TupleLevel] {
            let cfg = CellsConfig {
                n_cells: 1,
                c_objects_per_cell: n,
                robots_per_cell: 4,
                ..Default::default()
            };
            let mgr = cells_manager(&cfg, protocol);
            // Lock footprint of Q1 alone.
            let t = mgr.begin(colock_txn::TxnKind::Short);
            let (target, access) = Op::ReadParts { cell: 0 }.target();
            let report = t.lock(&target, access).expect("Q1 locks");
            let locks = report.lock_count();
            t.commit().unwrap();

            // Interleaving of Q1 ∥ Q2 under the deterministic driver.
            let driver = TickDriver::new(&mgr, TickConfig::default());
            let out = driver.run(vec![
                vec![vec![Op::ReadParts { cell: 0 }, Op::ReadParts { cell: 0 }]],
                vec![vec![Op::UpdateRobot { cell: 0, robot: 0 }]],
            ]);
            table.row(vec![
                n.to_string(),
                protocol.name().to_string(),
                locks.to_string(),
                out.metrics.blocked_ticks.to_string(),
                out.metrics.total_ticks.to_string(),
                (out.metrics.blocked_ticks == 0).to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    println!();
    println!("expected shape (paper): whole-object never interleaves; tuple-level");
    println!("interleaves but its lock count grows linearly with c_objects; the");
    println!("proposed technique interleaves at a small, size-independent lock count.");
}
