//! E6 — overall comparison (§4.6): throughput and overhead of the four
//! techniques over mixed workloads, plus the two stated disadvantages
//! measured.

use colock_bench::{cells_manager, f1};
use colock_core::{AccessMode, InstanceTarget};
use colock_sim::driver::ticks::TickConfig;
use colock_sim::metrics::Table;
use colock_sim::{CellsConfig, Op, OpGenerator, QueryMix, TickDriver};
use colock_txn::{ProtocolKind, TxnKind};

const PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Proposed,
    ProtocolKind::ProposedRule4,
    ProtocolKind::WholeObject,
    ProtocolKind::TupleLevel,
];

fn main() {
    println!("E6 — overall: mixed workloads under four lock techniques\n");
    for (mix_name, mix) in [
        ("engineering", QueryMix::engineering()),
        ("read-only", QueryMix::read_only()),
        ("update-heavy", QueryMix::update_heavy()),
    ] {
        println!("mix = {mix_name}:");
        let mut table = Table::new(&[
            "protocol", "committed", "ticks", "thr/ktick", "blocked", "deadlocks",
            "locks/txn", "locks/attempt", "conflict_tests", "max_table", "reads_elided",
        ]);
        for protocol in PROTOCOLS {
            let cfg = CellsConfig {
                n_cells: 4,
                c_objects_per_cell: 40,
                robots_per_cell: 4,
                n_effectors: 6,
                effectors_per_robot: 2,
                ..Default::default()
            };
            let mgr = cells_manager(&cfg, protocol);
            // All-read transactions ride the multiversion overlay: they show
            // up in `reads_elided` instead of the lock columns.
            let driver =
                TickDriver::new(&mgr, TickConfig { snapshot_readers: true, ..Default::default() });
            let mut gen = OpGenerator::new(cfg, mix, 1234);
            let scripts: Vec<Vec<Vec<Op>>> =
                (0..8).map(|_| (0..8).map(|_| gen.next_txn(3)).collect()).collect();
            let out = driver.run(scripts);
            let m = &out.metrics;
            table.row(vec![
                protocol.name().to_string(),
                m.committed.to_string(),
                m.total_ticks.to_string(),
                format!("{:.0}", m.throughput_per_kilotick()),
                m.blocked_ticks.to_string(),
                m.deadlock_aborts.to_string(),
                f1(m.locks_per_txn()),
                f1(m.locks_per_attempt()),
                m.locks.conflict_tests.to_string(),
                m.locks.max_table_entries.to_string(),
                m.locks.reads_elided.to_string(),
            ]);
        }
        print!("{}", table.render());
        println!();
    }

    // Disadvantage 2 (§4.6): extra overhead when only *disjoint* complex
    // objects are exclusively accessed — the proposed technique still walks
    // its deeper granule chain.
    println!("disadvantage check — disjoint-only exclusive access (no references):");
    let mut table = Table::new(&["protocol", "locks per whole-cell X"]);
    for protocol in [ProtocolKind::Proposed, ProtocolKind::WholeObject] {
        let cfg = CellsConfig {
            n_cells: 2,
            effectors_per_robot: 0, // fully disjoint objects
            ..Default::default()
        };
        let mgr = cells_manager(&cfg, protocol);
        let t = mgr.begin(TxnKind::Short);
        let report = t
            .lock(&InstanceTarget::object("cells", "c1"), AccessMode::Update)
            .unwrap();
        table.row(vec![protocol.name().to_string(), report.lock_count().to_string()]);
        t.commit().unwrap();
    }
    print!("{}", table.render());
    println!();
    println!("expected shape (paper): the proposed technique wins on throughput for");
    println!("partial accesses (esp. update-heavy, shared data) while whole-object");
    println!("wins slightly on per-lock overhead when objects are disjoint and always");
    println!("accessed as a whole — exactly §4.6's advantages 1-4 / disadvantage 2.");
    println!("On disjoint objects the proposed protocol degenerates to the");
    println!("traditional one (§4.4.2.1), so the lock counts above coincide.");
}
