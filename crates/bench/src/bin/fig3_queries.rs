//! F3 — Fig. 3: queries Q1, Q2 and Q3 parsed and analyzed; the analysis
//! shows which attributes each accesses and in which mode (§4.1 step 1).

use colock_core::fixtures::fig1_catalog;
use colock_core::optimizer::Optimizer;
use colock_query::plan::plan_locks;
use colock_query::{analyze::analyze, parse};

const QUERIES: [(&str, &str); 3] = [
    (
        "Q1",
        "SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ",
    ),
    (
        "Q2",
        "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE",
    ),
    (
        "Q3",
        "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' FOR UPDATE",
    ),
];

fn main() {
    let catalog = fig1_catalog();
    for (name, text) in QUERIES {
        println!("{name}: {text}");
        let stmt = parse(text).expect("parse");
        let a = analyze(&catalog, &stmt).expect("analyze");
        for r in &a.ranges {
            println!(
                "  range {:>2} in {}.{} key={:?} pinned={:?}",
                r.var,
                r.relation,
                r.path,
                r.key_attr,
                r.key_predicate.as_ref().map(|k| k.to_string()),
            );
        }
        for acc in &a.accesses {
            println!(
                "  access var={} path={} mode={:?} whole_element={}",
                acc.var, acc.path, acc.mode, acc.whole_element
            );
        }
        let plan = plan_locks(&catalog, stmt.clone(), a, &Optimizer::default()).expect("plan");
        for line in plan.explain().lines() {
            println!("  | {line}");
        }
        println!();
    }
    println!("Q1 and Q2 access different parts of complex object c1 ->");
    println!("no conflict at the logical level; they could run simultaneously (§3.2.1).");
}
