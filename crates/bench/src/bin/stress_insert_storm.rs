//! Stress harness: the hot-HoLU insert storm — the acceptance workload of
//! the semantic commutativity modes.
//!
//! Every round, `COLOCK_STORM_WORKERS` writer threads each run
//! `COLOCK_STORM_INSERTS` short transactions that insert one *distinct*
//! robot into the same set-valued HoLU (`cells/c1.robots`). With the
//! semantic modes on (the default), each inserter announces `Insert` on the
//! container and X on only its own element, so the whole storm commutes in
//! the lock table; with `COLOCK_NO_SEMANTIC=1` every insert X-locks the
//! container and the storm fully serializes. Both configurations must be
//! *correct* — the round asserts every inserted element is present exactly
//! once, no transaction survives, and the summary words still re-derive —
//! the difference is purely concurrency (measured in E5's scaling table).
//!
//! With `COLOCK_CHECK=1` the entire round's trace is replayed through the
//! §4.4.2 protocol linter, which knows the semantic modes' parent-intent
//! rules.
//!
//! Runs `COLOCK_STRESS_ROUNDS` rounds (default 100000 — effectively until
//! interrupted; CI sets a small bound) with a stall watchdog like
//! `stress_lockmgr`.

use colock_bench::cells_manager;
use colock_core::InstanceTarget;
use colock_nf2::value::build::{set, tup};
use colock_nf2::Value;
use colock_sim::CellsConfig;
use colock_txn::{ProtocolKind, TxnKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn robot(worker: usize, i: usize) -> Value {
    tup(vec![
        ("robot_id", Value::str(format!("w{worker}-i{i}"))),
        ("trajectory", Value::str(format!("storm-{worker}-{i}"))),
        ("effectors", set(Vec::new())),
    ])
}

fn main() {
    let checking = colock_check::enabled_from_env();
    if checking {
        colock_trace::enable();
    }
    let rounds = env_u64("COLOCK_STRESS_ROUNDS", 100000);
    let workers = env_u64("COLOCK_STORM_WORKERS", 4) as usize;
    let inserts = env_u64("COLOCK_STORM_INSERTS", 16) as usize;
    let cells = CellsConfig {
        n_cells: 1,
        c_objects_per_cell: 4,
        robots_per_cell: 2,
        n_effectors: 4,
        effectors_per_robot: 1,
        ..Default::default()
    };
    let round_counter = Arc::new(AtomicU64::new(0));
    for round in 0..rounds {
        round_counter.store(round, Ordering::Relaxed);
        let mark = colock_trace::current_seq();
        let mgr = cells_manager(&cells, ProtocolKind::Proposed);
        let semantic = mgr.semantic_enabled();

        // Watchdog: if this round takes >8s, dump the lock table and park.
        let mgr2 = Arc::clone(&mgr);
        let rc = Arc::clone(&round_counter);
        let watchdog = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(8));
            if rc.load(Ordering::Relaxed) == round {
                eprintln!("=== STALL at round {round} ===");
                eprintln!("{}", mgr2.lock_manager().debug_dump());
                eprintln!("=== parked for inspection (pid {}) ===", std::process::id());
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(60));
                }
            }
        });

        let container = InstanceTarget::object("cells", "c1").attr("robots");
        let started = std::time::Instant::now();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let mgr = &mgr;
                let container = &container;
                scope.spawn(move || {
                    for i in 0..inserts {
                        let t = mgr.begin(TxnKind::Short);
                        t.insert_element(container, robot(w, i))
                            .expect("storm insert must succeed");
                        t.commit().expect("storm commit must succeed");
                    }
                });
            }
        });
        let elapsed = started.elapsed();
        drop(watchdog);

        // Correctness, semantic or not: every element present exactly once.
        let t = mgr.begin(TxnKind::Short);
        let members = match t.read(&container).expect("read back the container") {
            Value::Set(es) | Value::List(es) => es,
            other => panic!("robots is not a collection: {other:?}"),
        };
        t.commit().expect("verify commit");
        let expected = cells.robots_per_cell + workers * inserts;
        assert_eq!(members.len(), expected, "round {round}: lost or duplicated inserts");
        assert_eq!(mgr.active_count(), 0, "round {round}: transactions survived");
        if let Err(e) = mgr.lock_manager().check_summary_consistency() {
            panic!("round {round}: summary words inconsistent: {e}");
        }

        if checking {
            let events = colock_trace::events_since(mark);
            let report =
                colock_check::Linter::with_catalog(mgr.store().catalog()).lint(&events);
            assert!(
                report.is_clean(),
                "round {round}: storm trace has protocol violations:\n{}",
                report.render()
            );
            if colock_check::certify_enabled_from_env() {
                let cert = colock_check::Certifier::new().certify(&events);
                assert!(
                    cert.is_clean(),
                    "round {round}: storm trace not conflict-serializable:\n{}",
                    cert.render_with_context(&events)
                );
            }
        }
        if round % 50 == 0 {
            println!(
                "round {round}: semantic={semantic} {} inserts in {:.1}ms ({:.0}/s)",
                workers * inserts,
                elapsed.as_secs_f64() * 1000.0,
                workers as f64 * inserts as f64 / elapsed.as_secs_f64(),
            );
        }
    }
    println!("stress_insert_storm: ok");
}
