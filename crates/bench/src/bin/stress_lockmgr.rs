//! Stress harness: hammers the multithreaded driver with varied-seed
//! engineering-mix workloads and watchdogs every round — the tool that
//! exposed the lock manager's lost-grant and invisible-positional-block
//! bugs (see DESIGN.md §5). Runs `COLOCK_STRESS_ROUNDS` rounds (default
//! 100000 — effectively until interrupted; CI sets a small bound); prints a
//! lock-table dump and parks if any round stalls for more than 8 seconds.

use colock_bench::cells_manager;
use colock_sim::{run_threads, CellsConfig, QueryMix, ThreadConfig};
use colock_txn::ProtocolKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let cells = CellsConfig {
        n_cells: 4, c_objects_per_cell: 40, robots_per_cell: 4,
        n_effectors: 6, effectors_per_robot: 2, ..Default::default()
    };
    let rounds: u64 = std::env::var("COLOCK_STRESS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100000);
    let round_counter = Arc::new(AtomicU64::new(0));
    for round in 0..rounds {
        round_counter.store(round, Ordering::Relaxed);
        let mgr = cells_manager(&cells, ProtocolKind::Proposed);
        let cfg = ThreadConfig {
            workers: 4, txns_per_worker: 8, ops_per_txn: 3,
            mix: QueryMix::engineering(), seed: round, cells,
        };
        // Watchdog: if this round takes >8s, dump the lock table and abort.
        let mgr2 = Arc::clone(&mgr);
        let rc = Arc::clone(&round_counter);
        let watchdog = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(8));
            if rc.load(Ordering::Relaxed) == round {
                eprintln!("=== STALL at round {round} (dump 1) ===");
                eprintln!("{}", mgr2.lock_manager().debug_dump());
                std::thread::sleep(std::time::Duration::from_secs(2));
                eprintln!("=== STALL at round {round} (dump 2) ===");
                eprintln!("{}", mgr2.lock_manager().debug_dump());
                eprintln!("=== parked for inspection (pid {}) ===", std::process::id());
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(60));
                }
            }
        });
        let r = run_threads(&mgr, &cfg);
        drop(watchdog);
        // Fast-path bookkeeping must balance every round: each gate entry is
        // exactly one CAS publication or one shard-mutex fallback, and the
        // summary words must re-derive from the (now quiescent) shard maps.
        let stats = mgr.lock_manager().stats().snapshot();
        assert_eq!(
            stats.fastpath_hits + stats.fastpath_fallbacks,
            stats.intent_acquires,
            "round {round}: fast-path gate identity broken: {stats:?}"
        );
        if let Err(e) = mgr.lock_manager().check_summary_consistency() {
            panic!("round {round}: summary words inconsistent: {e}");
        }
        if round % 50 == 0 {
            println!(
                "round {round}: committed={} deadlocks={} fastpath={}/{}",
                r.metrics.committed, r.metrics.deadlock_aborts,
                stats.fastpath_hits, stats.intent_acquires
            );
        }
    }
}
