//! E5 — anticipation of lock escalations (§4.5, \[HDKS89\]).
//!
//! Two updaters each touch many c_objects of the *same* cell. The
//! *anticipating* optimizer requests one subtree X lock up front (the second
//! updater waits; no deadlock). The *reactive* strategy takes element locks
//! one by one and escalates when the count crosses θ — two interleaved
//! escalators deadlock, one aborts. Also: lock-request counts per strategy
//! as the accessed fraction grows.

use colock_bench::cells_manager;
use colock_core::optimizer::Optimizer;
use colock_core::{AccessMode, InstanceTarget, ProtocolOptions};
use colock_lockmgr::LockMode;
use colock_sim::metrics::Table;
use colock_sim::CellsConfig;
use colock_txn::{ProtocolKind, TxnKind};

fn main() {
    println!("E5 — anticipated vs reactive lock escalation\n");

    // Part 1: lock-request counts for one reader of k elements, θ = 16.
    let mut t1 = Table::new(&["elements", "strategy", "locks", "escalations"]);
    for k in [4usize, 16, 64, 256] {
        let cfg = CellsConfig { n_cells: 1, c_objects_per_cell: 256, ..Default::default() };
        // Anticipating: the optimizer turns k >= θ (or >= half the set) into
        // one subtree lock.
        let opt = Optimizer::new(16.0);
        let plan = opt.plan(
            mgr_catalog(&cfg),
            &[colock_core::optimizer::AccessEstimate {
                relation: "cells".into(),
                path: colock_nf2::AttrPath::parse("c_objects"),
                access: AccessMode::Read,
                objects_expected: 1.0,
                elems_expected: k as f64,
            }],
        );
        let anticipated_locks = match plan.locks[0].granularity {
            colock_core::optimizer::Granularity::Subtree
            | colock_core::optimizer::Granularity::Relation
            | colock_core::optimizer::Granularity::Object => 1usize,
            colock_core::optimizer::Granularity::Elements => k,
        };
        t1.row(vec![
            k.to_string(),
            "anticipated".to_string(),
            // +4 for the intent chain db/seg/rel/obj.
            (anticipated_locks + 4).to_string(),
            plan.anticipated_escalations.to_string(),
        ]);

        // Reactive: element locks, then an escalation once k crosses θ.
        let mgr = cells_manager(&cfg, ProtocolKind::Proposed);
        let t = mgr.begin(TxnKind::Short);
        let mut locks = 0usize;
        let mut escalations = 0u64;
        for i in 0..k.min(16) {
            let target = InstanceTarget::object("cells", "c1")
                .elem("c_objects", format!("c1-o{i}"));
            locks += t.lock(&target, AccessMode::Read).unwrap().lock_count();
        }
        if k > 16 {
            // Escalate: coarse lock + release of the element locks.
            let coarse = InstanceTarget::object("cells", "c1").attr("c_objects");
            let (report, released) = mgr
                .engine()
                .escalate(
                    mgr.lock_manager(),
                    t.id(),
                    &**mgr.store(),
                    mgr.authorization(),
                    &coarse,
                    LockMode::S,
                    ProtocolOptions::default(),
                )
                .unwrap();
            locks += report.lock_count() + released; // work done, then undone
            escalations += 1;
        }
        t.commit().unwrap();
        t1.row(vec![k.to_string(), "reactive".to_string(), locks.to_string(), escalations.to_string()]);
    }
    print!("{}", t1.render());

    // Part 2: deadlock behaviour of two concurrent updaters of one cell.
    println!("\ntwo concurrent whole-set updaters of the same cell:");
    let mut t2 = Table::new(&["strategy", "deadlocks", "both finished"]);
    // Anticipated: both request the subtree X up front; pure queueing.
    {
        let cfg = CellsConfig { n_cells: 1, c_objects_per_cell: 32, ..Default::default() };
        let mgr = cells_manager(&cfg, ProtocolKind::Proposed);
        let a = mgr.begin(TxnKind::Short);
        let coarse = InstanceTarget::object("cells", "c1").attr("c_objects");
        a.lock(&coarse, AccessMode::Update).unwrap();
        let b = mgr.begin(TxnKind::Short);
        let blocked = b.try_lock(&coarse, AccessMode::Update).is_err();
        a.commit().unwrap();
        let ok = b.lock(&coarse, AccessMode::Update).is_ok();
        b.commit().unwrap();
        t2.row(vec![
            "anticipated".into(),
            "0".into(),
            format!("{} (second waited: {})", ok, blocked),
        ]);
    }
    // Reactive: both take element locks from opposite ends, then escalate →
    // upgrade deadlock; the younger aborts.
    {
        let cfg = CellsConfig { n_cells: 1, c_objects_per_cell: 32, ..Default::default() };
        let mgr = cells_manager(&cfg, ProtocolKind::Proposed);
        let a = mgr.begin(TxnKind::Short);
        let b = mgr.begin(TxnKind::Short);
        for i in 0..8 {
            a.lock(
                &InstanceTarget::object("cells", "c1").elem("c_objects", format!("c1-o{i}")),
                AccessMode::Update,
            )
            .unwrap();
            b.lock(
                &InstanceTarget::object("cells", "c1").elem("c_objects", format!("c1-o{}", 31 - i)),
                AccessMode::Update,
            )
            .unwrap();
        }
        let coarse = InstanceTarget::object("cells", "c1").attr("c_objects");
        // Both now escalate; A blocks on B's elements, B's attempt closes the
        // cycle and B (younger) is chosen as the victim.
        let a_res = a.try_lock(&coarse, AccessMode::Update);
        let b_res = b.try_lock(&coarse, AccessMode::Update);
        let conflicted = a_res.is_err() && b_res.is_err();
        b.abort().unwrap();
        let a_after = a.lock(&coarse, AccessMode::Update).is_ok();
        a.commit().unwrap();
        t2.row(vec![
            "reactive".into(),
            if conflicted { "1 (cross-blocked; victim aborted)" } else { "0" }.into(),
            a_after.to_string(),
        ]);
    }
    print!("{}", t2.render());
    println!();
    println!("expected shape (paper): anticipation avoids run-time escalations and");
    println!("their deadlocks — 'lock escalations … cause immense run-time overhead,");
    println!("and increase highly the probability for deadlocks' (§4.5).");

    // Part 3: the hot-HoLU insert storm — semantic Insert modes vs the
    // classical protocol. N writers insert distinct robots into ONE
    // set-valued HoLU; classically each insert X-locks the container and
    // the storm serializes, with the semantic modes the inserters commute.
    println!("\nhot-HoLU insert storm (distinct-element inserts into one set):");
    let mut t3 =
        Table::new(&["writers", "mode", "committed", "txns/s", "vs 1 writer", "lock waits"]);
    let mut baselines: [f64; 2] = [0.0, 0.0];
    for &writers in &[1usize, 2, 4, 8] {
        for (mi, (label, semantic)) in
            [("semantic", true), ("classical", false)].into_iter().enumerate()
        {
            let cfg = CellsConfig {
                n_cells: 1, c_objects_per_cell: 4, robots_per_cell: 2,
                n_effectors: 4, effectors_per_robot: 1, ..Default::default()
            };
            let mgr = cells_manager(&cfg, ProtocolKind::Proposed);
            mgr.set_semantic(semantic);
            let per_worker = 200usize;
            let container = InstanceTarget::object("cells", "c1").attr("robots");
            let started = std::time::Instant::now();
            std::thread::scope(|scope| {
                for w in 0..writers {
                    let mgr = &mgr;
                    let container = &container;
                    scope.spawn(move || {
                        for i in 0..per_worker {
                            let t = mgr.begin(TxnKind::Short);
                            t.insert_element(container, storm_robot(w, i)).unwrap();
                            t.commit().unwrap();
                        }
                    });
                }
            });
            let committed = writers * per_worker;
            let rate = committed as f64 / started.elapsed().as_secs_f64();
            if writers == 1 {
                baselines[mi] = rate;
            }
            t3.row(vec![
                writers.to_string(),
                label.to_string(),
                committed.to_string(),
                format!("{rate:.0}"),
                format!("{:.2}x", rate / baselines[mi]),
                mgr.lock_manager().stats().snapshot().waits.to_string(),
            ]);
        }
    }
    print!("{}", t3.render());
    println!();
    println!("expected shape: semantic Insert modes never block — the `lock waits`");
    println!("column stays 0 however many writers pile on, so on a multi-core host");
    println!("committed txns/s grows near-linearly with the writer count.");
    println!("Classically every insert X-locks the container: each added writer");
    println!("queues (one wait per insert beyond the first in flight) and the");
    println!("storm is fully serialized. On a single-core host the waits column");
    println!("is the machine-independent signal; wall-clock speedup is bounded");
    println!("at 1x there regardless of locking.");
    println!("this host: {} core(s).", std::thread::available_parallelism().map_or(1, |n| n.get()));

    // Part 4: adaptive θ — the static E5 anticipation number replaced by one
    // derived from measured waits (PR 3 wait histograms).
    println!("\nadaptive θ from measured contention (COLOCK_ADAPTIVE_THETA):");
    colock_trace::enable();
    let mark = colock_trace::current_seq();
    {
        // Generate real waits: a serialized storm on the hot container.
        let cfg = CellsConfig { n_cells: 1, c_objects_per_cell: 4, ..Default::default() };
        let mgr = cells_manager(&cfg, ProtocolKind::Proposed);
        mgr.set_semantic(false);
        let container = InstanceTarget::object("cells", "c1").attr("robots");
        std::thread::scope(|scope| {
            for w in 0..4 {
                let mgr = &mgr;
                let container = &container;
                scope.spawn(move || {
                    for i in 0..25 {
                        let t = mgr.begin(TxnKind::Short);
                        t.insert_element(container, storm_robot(w, 1000 + i)).unwrap();
                        // Hold the container X across a "think time" so the
                        // queued rivals accumulate real, hot waits.
                        std::thread::sleep(std::time::Duration::from_millis(3));
                        t.commit().unwrap();
                    }
                });
            }
        });
    }
    let mut measured = colock_trace::WaitHistogram::default();
    for (_, h) in colock_trace::wait_histograms(&colock_trace::events_since(mark)) {
        measured.merge(&h);
    }
    let mut t4 = Table::new(&["signal", "waits", "p99 (us)", "θ in", "θ out", "20-elem scan plans"]);
    let quiet = colock_trace::WaitHistogram::default();
    for (label, hist) in [("quiet (no waits)", &quiet), ("measured storm", &measured)] {
        let base = Optimizer::new(16.0);
        let adapted = base.adapted(hist);
        let plan = adapted.plan(
            mgr_catalog(&CellsConfig { n_cells: 1, c_objects_per_cell: 256, ..Default::default() }),
            &[colock_core::optimizer::AccessEstimate {
                relation: "cells".into(),
                path: colock_nf2::AttrPath::parse("c_objects"),
                access: AccessMode::Read,
                objects_expected: 1.0,
                elems_expected: 20.0,
            }],
        );
        t4.row(vec![
            label.to_string(),
            hist.count().to_string(),
            hist.quantile_us(0.99).to_string(),
            "16".to_string(),
            format!("{}", adapted.theta),
            format!("{:?}", plan.locks[0].granularity),
        ]);
    }
    print!("{}", t4.render());
    println!();
    println!("expected shape: with no measured waiting the optimizer escalates");
    println!("eagerly (θ halves — coarse locks cost no concurrency); a hot wait");
    println!("tail raises θ (stay fine-grained), so the same 20-element scan that");
    println!("the static θ=16 coarsens stays element-granular under contention.");
}

fn storm_robot(worker: usize, i: usize) -> colock_nf2::Value {
    use colock_nf2::value::build::{set, tup};
    use colock_nf2::Value;
    tup(vec![
        ("robot_id", Value::str(format!("w{worker}-i{i}"))),
        ("trajectory", Value::str(format!("storm-{worker}-{i}"))),
        ("effectors", set(Vec::new())),
    ])
}

fn mgr_catalog(cfg: &CellsConfig) -> &'static colock_nf2::Catalog {
    // Build once and leak: the optimizer only needs cardinalities.
    let store = colock_sim::build_cells_store(cfg);
    let catalog = (**store.catalog()).clone();
    Box::leak(Box::new(catalog))
}
