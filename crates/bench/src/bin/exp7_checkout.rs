//! E7 — long transactions and check-out/check-in (§1, §3.1).
//!
//! Workstations check out data for long periods. With whole-object locking a
//! robot check-out blocks the whole cell (readers of the cell's parts stall
//! for the entire hold time); with the proposed sub-object granules the
//! check-out blocks only the robot. The multiversion overlay removes the
//! readers from the picture entirely: as snapshot transactions they acquire
//! no locks, so their p99 wait is 0 under *both* protocols. Sweep the hold
//! time with locking readers and with snapshot readers.

use colock_bench::cells_manager;
use colock_sim::driver::ticks::TickConfig;
use colock_sim::metrics::Table;
use colock_sim::{CellsConfig, Op, TickDriver};
use colock_txn::ProtocolKind;

fn main() {
    println!("E7 — workstation check-out: long locks vs readers of other parts\n");
    let mut table = Table::new(&[
        "hold_ticks", "protocol", "readers", "ticks", "blocked", "reader p99", "reads elided",
    ]);
    for hold in [10u64, 50, 200] {
        for protocol in [ProtocolKind::Proposed, ProtocolKind::WholeObject] {
            for snapshot in [false, true] {
                let cfg = CellsConfig { n_cells: 2, c_objects_per_cell: 20, ..Default::default() };
                let mgr = cells_manager(&cfg, protocol);
                // Readers always run as read-only transactions; the overlay
                // toggle decides whether they snapshot-read or S-lock.
                mgr.set_mvcc(snapshot);
                let driver = TickDriver::new(
                    &mgr,
                    TickConfig {
                        hold_ticks_after_checkout: hold,
                        snapshot_readers: true,
                        ..Default::default()
                    },
                );
                // Worker 0 checks out a robot of cell 0 and holds it; workers
                // 1..4 read the *parts* of cell 0 repeatedly.
                let mut scripts: Vec<Vec<Vec<Op>>> =
                    vec![vec![vec![Op::CheckoutRobot { cell: 0, robot: 0 }]]];
                for _ in 0..3 {
                    scripts.push(vec![
                        vec![Op::ReadParts { cell: 0 }],
                        vec![Op::ReadParts { cell: 0 }],
                        vec![Op::ReadParts { cell: 0 }],
                    ]);
                }
                let out = driver.run(scripts);
                table.row(vec![
                    hold.to_string(),
                    protocol.name().to_string(),
                    if snapshot { "snapshot" } else { "locking" }.to_string(),
                    out.metrics.total_ticks.to_string(),
                    out.metrics.blocked_ticks.to_string(),
                    format!("{} ticks", out.metrics.reader_waits.quantile_us(0.99)),
                    out.metrics.locks.reads_elided.to_string(),
                ]);
            }
        }
    }
    print!("{}", table.render());
    println!();
    println!("expected shape (paper): under whole-object locking the locking readers");
    println!("stall for the whole hold time (blocked ~ 3 readers x hold); under the");
    println!("proposed technique the robot check-out never blocks part readers —");
    println!("'long locks on coarse granules may unnecessarily block a large amount");
    println!("of data for a long time' (§3.2.1). Snapshot readers sidestep the");
    println!("trade-off: reader p99 is 0 ticks under either protocol because they");
    println!("read committed versions and never enter the lock table at all.");
}
