//! F2 — Fig. 2: the System R (a) and XSQL (b) lock graphs, and the check
//! that both are special cases of the general lock graph (§4.2).

use colock_core::graph::display::concept_graph_text;
use colock_core::ConceptGraph;

fn main() {
    println!("Figure 2 (a) — Lock graph (DAG) of System R\n");
    print!("{}", concept_graph_text(&ConceptGraph::system_r()));
    println!("\nFigure 2 (b) — Lock graph of XSQL (complex objects added)\n");
    print!("{}", concept_graph_text(&ConceptGraph::xsql()));
    println!();
    println!(
        "System R graph acyclic: {}",
        ConceptGraph::system_r().solid_part_is_acyclic()
    );
    println!(
        "System R is a special case of the general graph: {}",
        ConceptGraph::system_r().is_special_case_of_general()
    );
    println!(
        "XSQL is a special case of the general graph:     {}",
        ConceptGraph::xsql().is_special_case_of_general()
    );
}
