//! F5 — Fig. 5: the object-specific lock graph of the complex relation
//! `cells` and its common data (`effectors`), derived automatically from the
//! schema by the rules of §4.3.

use colock_core::fixtures::fig1_catalog;
use colock_core::graph::display::object_graph_tree;
use colock_core::{derive_lock_graph, Category};

fn main() {
    let catalog = fig1_catalog();
    let graph = derive_lock_graph(&catalog);
    println!("Figure 5 — Object-Specific Lock Graph: \"cells\" and its common data\n");
    print!("{}", object_graph_tree(&graph));
    println!();
    let mut counts = std::collections::BTreeMap::new();
    for n in graph.nodes() {
        *counts.entry(format!("{}", n.category)).or_insert(0usize) += 1;
    }
    println!("node counts by category: {counts:?}");
    let helu = graph
        .nodes()
        .iter()
        .filter(|n| n.category == Category::HeLU)
        .count();
    println!("HeLU nodes (complex tuples): {helu}");
    println!(
        "dashed edges from cells: {:?} (ref BLU -> entry point)",
        graph.dashed_targets("cells")
    );
}
