//! F4 — Fig. 4: the general lock graph for disjoint and non-disjoint
//! complex objects.

use colock_core::graph::display::concept_graph_text;
use colock_core::ConceptGraph;

fn main() {
    println!("Figure 4 — General Lock Graph for Disjoint and Non-Disjoint Complex Objects\n");
    print!("{}", concept_graph_text(&ConceptGraph::general()));
    println!();
    println!("HeLU: heterogeneous lockable unit (complex tuple)");
    println!("HoLU: homogeneous lockable unit (set / list)");
    println!("BLU:  basic lockable unit (atomic attribute or reference)");
    println!();
    println!("solid edge  --> : composition within non-shared data");
    println!("dashed edge - ->: reference to common data (entry into an inner unit)");
}
