//! E12 — wait-time distribution on a hot spot (observability layer).
//!
//! Reruns E6's contended shape at its sharpest: a single manufacturing cell
//! whose few objects every worker hammers with the update-heavy mix, under
//! the proposed protocol vs tuple-level locking. Tracing is enabled, so the
//! thread driver pairs every `Wait` with its `Grant` and buckets the blocked
//! microseconds per resource into power-of-two histograms.
//!
//! ```text
//! cargo run --release --bin exp12_wait_hist
//! ```

use colock_bench::{cells_manager, f1};
use colock_sim::{run_threads, CellsConfig, QueryMix, ThreadConfig};
use colock_trace::WaitHistogram;
use colock_txn::ProtocolKind;

fn main() {
    colock_trace::enable();
    println!("E12 — wait-time histograms on a hot-spot workload (tracing enabled)\n");

    let cells = CellsConfig {
        n_cells: 1,
        c_objects_per_cell: 6,
        robots_per_cell: 3,
        n_effectors: 4,
        effectors_per_robot: 2,
        ..Default::default()
    };
    let cfg = ThreadConfig {
        workers: 6,
        txns_per_worker: 20,
        ops_per_txn: 3,
        mix: QueryMix::update_heavy(),
        seed: 42,
        cells,
        readonly_pct: 0,
    };

    for protocol in [ProtocolKind::Proposed, ProtocolKind::TupleLevel] {
        let mgr = cells_manager(&cells, protocol);
        let report = run_threads(&mgr, &cfg);
        let m = &report.metrics;
        println!("protocol = {}:", protocol.name());
        println!(
            "  committed={} deadlocks={} attempts={} locks/txn={} locks/attempt={} wall={}ms",
            m.committed,
            m.deadlock_aborts,
            m.attempts(),
            f1(m.locks_per_txn()),
            f1(m.locks_per_attempt()),
            m.wall_ms,
        );

        let total = m.total_wait_hist();
        if total.count() == 0 {
            println!("  no waits recorded (every request was granted immediately)\n");
            continue;
        }
        print_hist(&total, "all resources merged");

        // The hottest individual resources, by number of waits.
        let mut hot: Vec<(&String, &WaitHistogram)> = m.wait_hists.iter().collect();
        hot.sort_by(|a, b| b.1.count().cmp(&a.1.count()).then(a.0.cmp(b.0)));
        for (resource, hist) in hot.iter().take(3) {
            print_hist(hist, &format!("hot spot {resource}"));
        }
        println!();
    }

    println!("expected shape: both protocols serialize the same hot objects, but");
    println!("tuple-level queues on many fine tuples (more, shorter waits) while the");
    println!("proposed technique's subobject granules keep disjoint work out of each");
    println!("other's way — fewer transactions ever reach the wait queue at all.");
}

fn print_hist(h: &WaitHistogram, label: &str) {
    for line in h.render(label).lines() {
        println!("  {line}");
    }
    println!(
        "    p50={}us p90={}us p95={}us p99={}us max={}us",
        h.quantile_us(0.50),
        h.quantile_us(0.90),
        h.quantile_us(0.95),
        h.quantile_us(0.99),
        h.max_us(),
    );
}
