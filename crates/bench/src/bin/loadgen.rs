//! E14 — closed-loop load generator for the TCP serving layer.
//!
//! Starts an in-process server over the standard cells environment, opens
//! `COLOCK_LOAD_SESSIONS` real loopback connections (default 1000), and
//! drives them from `COLOCK_LOAD_WORKERS` closed-loop worker threads: each
//! worker round-robins its share of sessions, running one transaction at a
//! time and recording the end-to-end latency (BEGIN to COMMIT acknowledged,
//! over the socket) in a `WaitHistogram`.
//!
//! Transaction mix (percentages of `COLOCK_LOAD_TXNS`, default 2000 total):
//! - `COLOCK_LOAD_READONLY_PCT` (default 30): `BEGIN READONLY` + snapshot
//!   `GET` — never waits on long locks (PR 7's overlay).
//! - `COLOCK_LOAD_CHECKOUT_PCT` (default 20): `BEGIN LONG` + `CHECKOUT` /
//!   `CHECKIN` of a robot — durable long locks over the wire.
//! - remainder: short read-modify-write of a robot trajectory.
//!
//! `COLOCK_LOAD_SKEW` (default 20) redirects that percentage of
//! transactions to cell 1 — a tunable hot spot. Retryable refusals
//! (deadlock victim, admission BUSY, lock timeout) abort the attempt and
//! retry on the same session, as a closed-loop client would.
//!
//! With `COLOCK_CHECK=1`, tracing is enabled and the entire served window
//! is replayed through the §4.4.2 protocol linter at the end.

use colock_bench::f1;
use colock_core::authorization::{Authorization, Right};
use colock_core::AccessMode;
use colock_nf2::Value;
use colock_server::client::Client;
use colock_server::session::{AdmissionPolicy, BACKOFF_FLOOR_MS};
use colock_server::wire::{parse_target, BeginKind, Role};
use colock_server::{Server, ServerConfig};
use colock_sim::{build_cells_store, CellsConfig};
use colock_testkit::{Backoff, Rng};
use colock_trace::WaitHistogram;
use colock_txn::{ProtocolKind, TransactionManager};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct LoadConfig {
    sessions: usize,
    workers: usize,
    txns: u64,
    readonly_pct: u64,
    checkout_pct: u64,
    skew_pct: u64,
    cells: usize,
    seed: u64,
}

struct WorkerReport {
    hist: WaitHistogram,
    committed: u64,
    retries: u64,
}

fn run_worker(
    addr: std::net::SocketAddr,
    cfg: &LoadConfig,
    worker_id: usize,
    budget: &AtomicU64,
) -> WorkerReport {
    let my_sessions = (cfg.sessions / cfg.workers).max(1);
    let mut clients: Vec<Client> = (0..my_sessions)
        .map(|i| {
            Client::connect(addr, &format!("lg-{worker_id}-{i}"), Role::Engineer)
                .expect("loadgen connect")
        })
        .collect();
    let mut rng = Rng::seed_from_u64(cfg.seed ^ (worker_id as u64).wrapping_mul(0x9E37_79B9));
    // Retry pacing: deadlock/timeout retries draw pure jitter; admission
    // refusals additionally honor the server's hint, floored so a 0-ms (or
    // missing) hint can never turn the workers into a tight retry herd.
    let mut backoff = Backoff::new(cfg.seed ^ (worker_id as u64), 1, 8);
    let mut hist = WaitHistogram::default();
    let mut committed = 0u64;
    let mut retries = 0u64;
    let mut next = 0usize;

    while budget.fetch_sub(1, Ordering::Relaxed) as i64 > 0 {
        let slot = next % clients.len();
        let c = &mut clients[slot];
        next += 1;
        let cell = if rng.gen_range(0..100u64) < cfg.skew_pct {
            1
        } else {
            rng.gen_range(0..cfg.cells) + 1
        };
        let robot = rng.gen_range(0..4usize) + 1;
        let draw = rng.gen_range(0..100u64);
        let started = Instant::now();
        let outcome = if draw < cfg.readonly_pct {
            run_readonly(c, cell, robot)
        } else if draw < cfg.readonly_pct + cfg.checkout_pct {
            run_checkout(c, cell, robot)
        } else {
            run_rmw(c, cell, robot)
        };
        match outcome {
            Ok(()) => {
                hist.record(started.elapsed().as_micros() as u64);
                committed += 1;
                backoff.reset();
            }
            Err(e) => {
                // Closed loop: clean up and retry on this session later.
                let _ = c.abort();
                retries += 1;
                if !e.is_retryable() {
                    panic!("non-retryable server error in loadgen: {e}");
                }
                let hinted = match &e {
                    colock_server::client::ClientError::Server {
                        backoff_ms: Some(ms), ..
                    } => Some((*ms).max(BACKOFF_FLOOR_MS)),
                    _ => None,
                };
                let ms = hinted.unwrap_or(0) + backoff.next_delay();
                if ms > 0 {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                budget.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    for c in &mut clients {
        c.quit();
    }
    WorkerReport { hist, committed, retries }
}

type Outcome = Result<(), colock_server::client::ClientError>;

fn traj(cell: usize, robot: usize) -> colock_core::InstanceTarget {
    parse_target(&format!("rel:cells/obj:c{cell}/attr:robots/elem:r{robot}/attr:trajectory"))
        .expect("static target")
}

fn robot_target(cell: usize, robot: usize) -> colock_core::InstanceTarget {
    parse_target(&format!("rel:cells/obj:c{cell}/attr:robots/elem:r{robot}")).expect("static")
}

fn run_readonly(c: &mut Client, cell: usize, robot: usize) -> Outcome {
    c.begin(BeginKind::ReadOnly)?;
    c.get(&traj(cell, robot))?;
    c.commit()
}

fn run_checkout(c: &mut Client, cell: usize, robot: usize) -> Outcome {
    c.begin(BeginKind::Long)?;
    let target = robot_target(cell, robot);
    let copy = c.checkout(&target, AccessMode::Update)?;
    c.checkin(&target, copy)?;
    c.commit()
}

fn run_rmw(c: &mut Client, cell: usize, robot: usize) -> Outcome {
    c.begin(BeginKind::Short)?;
    let target = traj(cell, robot);
    let v = c.get(&target)?;
    let text = match v {
        Value::Str(s) => s,
        other => colock_server::client::value_text(&other),
    };
    c.put(&target, Value::str(format!("{}+", text.chars().take(24).collect::<String>())))?;
    c.commit()
}

fn main() {
    let checking = colock_check::enabled_from_env();
    if checking {
        colock_trace::enable();
    }
    let cfg = LoadConfig {
        sessions: env("COLOCK_LOAD_SESSIONS", 1000),
        workers: env("COLOCK_LOAD_WORKERS", 8),
        txns: env("COLOCK_LOAD_TXNS", 2000),
        readonly_pct: env("COLOCK_LOAD_READONLY_PCT", 30),
        checkout_pct: env("COLOCK_LOAD_CHECKOUT_PCT", 20),
        skew_pct: env("COLOCK_LOAD_SKEW", 20),
        cells: env("COLOCK_CELLS", 8),
        seed: env("COLOCK_SEED", 42),
    };

    let store = build_cells_store(&CellsConfig {
        n_cells: cfg.cells,
        c_objects_per_cell: 8,
        ..Default::default()
    });
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    let manager =
        Arc::new(TransactionManager::over_store(store, authz, ProtocolKind::Proposed));
    let server = Server::start(
        manager,
        ServerConfig {
            max_sessions: cfg.sessions + 64,
            max_inflight: 256,
            admission: AdmissionPolicy::Queue,
            lock_wait: Duration::from_secs(2),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let mark = colock_trace::current_seq();

    let budget = AtomicU64::new(cfg.txns);
    let started = Instant::now();
    let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.workers)
            .map(|w| {
                let cfg = &cfg;
                let budget = &budget;
                scope.spawn(move || run_worker(addr, cfg, w, budget))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });
    let elapsed = started.elapsed();

    let mut hist = WaitHistogram::default();
    let (mut committed, mut retries) = (0u64, 0u64);
    for r in &reports {
        hist.merge(&r.hist);
        committed += r.committed;
        retries += r.retries;
    }
    let sessions_served = cfg.workers * (cfg.sessions / cfg.workers).max(1);

    println!("# E14: served throughput over loopback TCP (closed loop)");
    println!(
        "sessions={} workers={} mix: {}% readonly / {}% checkout / {}% rmw, skew {}% to cell 1",
        sessions_served, cfg.workers, cfg.readonly_pct, cfg.checkout_pct,
        100 - cfg.readonly_pct - cfg.checkout_pct, cfg.skew_pct
    );
    println!(
        "| committed | retries | txns/s | p50 (us) | p99 (us) | p999 (us) | mean (us) |"
    );
    println!("|---|---|---|---|---|---|---|");
    println!(
        "| {committed} | {retries} | {} | {} | {} | {} | {} |",
        f1(committed as f64 / elapsed.as_secs_f64()),
        hist.quantile_us(0.50),
        hist.quantile_us(0.99),
        hist.quantile_us(0.999),
        hist.mean_us(),
    );

    let manager = Arc::clone(server.manager());
    let stragglers = server.drain(Duration::from_secs(5));
    assert_eq!(stragglers, 0, "loadgen sessions must drain cleanly");
    assert_eq!(manager.active_count(), 0, "no transactions may survive the drain");
    assert!(committed + retries >= cfg.txns, "budget fully consumed");

    if checking {
        let events = colock_trace::events_since(mark);
        let report =
            colock_check::Linter::with_catalog(manager.store().catalog()).lint(&events);
        assert!(
            report.is_clean(),
            "COLOCK_CHECK: served trace has protocol violations:\n{}",
            report.render()
        );
        println!(
            "lint: {} events, {} grants checked, 0 violations",
            events.len(),
            report.grants_checked
        );
        if colock_check::certify_enabled_from_env() {
            let cert = colock_check::Certifier::new().certify(&events);
            assert!(
                cert.is_clean(),
                "COLOCK_CERTIFY: served trace not conflict-serializable:\n{}",
                cert.render_with_context(&events)
            );
            println!(
                "certify: {} committed txn(s), {} edge(s), conflict graph acyclic",
                cert.txns_committed, cert.edges
            );
        }
    }
    println!("loadgen: ok");
}
