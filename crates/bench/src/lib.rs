#![forbid(unsafe_code)]
//! Shared experiment machinery for the figure/experiment binaries and the
//! Criterion benches. Every table printed by a binary in `src/bin/` is
//! recorded (paper statement vs measured shape) in `EXPERIMENTS.md`.

use colock_core::authorization::{Authorization, Right};
use colock_sim::{build_cells_store, CellsConfig};
use colock_txn::{ProtocolKind, TransactionManager};
use std::sync::Arc;

/// The standard rights of the paper's running example: everyone may update
/// cells, nobody may update the effectors library (Fig. 7's assumption).
pub fn standard_authz() -> Authorization {
    let mut a = Authorization::allow_all();
    a.set_relation_default("effectors", Right::Read);
    a
}

/// Rights matrix where the library is writable by everyone (used to contrast
/// rule 4 against rule 4′).
pub fn writable_library_authz() -> Authorization {
    Authorization::allow_all()
}

/// Builds a transaction manager over a fresh cells store.
pub fn cells_manager(cfg: &CellsConfig, protocol: ProtocolKind) -> Arc<TransactionManager> {
    Arc::new(TransactionManager::over_store(build_cells_store(cfg), standard_authz(), protocol))
}

/// Builds a manager with a writable effectors library.
pub fn cells_manager_writable(cfg: &CellsConfig, protocol: ProtocolKind) -> Arc<TransactionManager> {
    Arc::new(TransactionManager::over_store(
        build_cells_store(cfg),
        writable_library_authz(),
        protocol,
    ))
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Runs the built-in contention demo shared by `trace_explain` and
/// `colock_check --self-test`: two well-behaved transactions (a reader and
/// an updater) followed by a forced two-transaction deadlock — two threads
/// X-lock whole cells in opposite order with a barrier between first and
/// second acquisition, so the second requests close a waits-for cycle and
/// the detector must abort one of them.
///
/// Enables tracing and returns exactly the events this demo produced.
pub fn contention_demo() -> Vec<colock_trace::Event> {
    use colock_core::{AccessMode, InstanceTarget};
    use colock_txn::TxnKind;
    use std::sync::Barrier;

    colock_trace::enable();
    let mark = colock_trace::current_seq();

    let cfg = CellsConfig { n_cells: 2, c_objects_per_cell: 4, ..Default::default() };
    let mgr = cells_manager(&cfg, ProtocolKind::Proposed);

    let reader = mgr.begin(TxnKind::Short);
    reader
        .lock(&InstanceTarget::object("cells", "c1").elem("robots", "r1"), AccessMode::Read)
        .expect("read lock");
    reader.commit().expect("commit");
    let writer = mgr.begin(TxnKind::Short);
    writer
        .lock(&InstanceTarget::object("cells", "c2"), AccessMode::Update)
        .expect("update lock");
    writer.commit().expect("commit");

    let barrier = Barrier::new(2);
    std::thread::scope(|scope| {
        for (mine, theirs) in [("c1", "c2"), ("c2", "c1")] {
            let mgr = &mgr;
            let barrier = &barrier;
            scope.spawn(move || {
                let txn = mgr.begin(TxnKind::Short);
                txn.lock(&InstanceTarget::object("cells", mine), AccessMode::Update)
                    .expect("first lock is uncontended");
                barrier.wait();
                match txn.lock(&InstanceTarget::object("cells", theirs), AccessMode::Update) {
                    Ok(_) => txn.commit().expect("commit"),
                    Err(e) if e.is_deadlock() => txn.abort().expect("abort"),
                    Err(e) => panic!("unexpected lock failure: {e}"),
                }
            });
        }
    });

    colock_trace::events_since(mark)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_authz_locks_down_effectors() {
        let a = standard_authz();
        assert!(!a.can_modify(colock_lockmgr::TxnId(1), "effectors"));
        assert!(a.can_modify(colock_lockmgr::TxnId(1), "cells"));
    }

    #[test]
    fn managers_construct() {
        let cfg = CellsConfig { n_cells: 1, c_objects_per_cell: 2, ..Default::default() };
        let m = cells_manager(&cfg, ProtocolKind::Proposed);
        assert_eq!(m.store().len("cells").unwrap(), 1);
    }
}
