//! Shared experiment machinery for the figure/experiment binaries and the
//! Criterion benches. Every table printed by a binary in `src/bin/` is
//! recorded (paper statement vs measured shape) in `EXPERIMENTS.md`.

use colock_core::authorization::{Authorization, Right};
use colock_sim::{build_cells_store, CellsConfig};
use colock_txn::{ProtocolKind, TransactionManager};
use std::sync::Arc;

/// The standard rights of the paper's running example: everyone may update
/// cells, nobody may update the effectors library (Fig. 7's assumption).
pub fn standard_authz() -> Authorization {
    let mut a = Authorization::allow_all();
    a.set_relation_default("effectors", Right::Read);
    a
}

/// Rights matrix where the library is writable by everyone (used to contrast
/// rule 4 against rule 4′).
pub fn writable_library_authz() -> Authorization {
    Authorization::allow_all()
}

/// Builds a transaction manager over a fresh cells store.
pub fn cells_manager(cfg: &CellsConfig, protocol: ProtocolKind) -> Arc<TransactionManager> {
    Arc::new(TransactionManager::over_store(build_cells_store(cfg), standard_authz(), protocol))
}

/// Builds a manager with a writable effectors library.
pub fn cells_manager_writable(cfg: &CellsConfig, protocol: ProtocolKind) -> Arc<TransactionManager> {
    Arc::new(TransactionManager::over_store(
        build_cells_store(cfg),
        writable_library_authz(),
        protocol,
    ))
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_authz_locks_down_effectors() {
        let a = standard_authz();
        assert!(!a.can_modify(colock_lockmgr::TxnId(1), "effectors"));
        assert!(a.can_modify(colock_lockmgr::TxnId(1), "cells"));
    }

    #[test]
    fn managers_construct() {
        let cfg = CellsConfig { n_cells: 1, c_objects_per_cell: 2, ..Default::default() };
        let m = cells_manager(&cfg, ProtocolKind::Proposed);
        assert_eq!(m.store().len("cells").unwrap(), 1);
    }
}
