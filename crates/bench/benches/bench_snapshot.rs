//! Multiversion overlay costs: the snapshot-read path, the timestamp
//! pin/unpin of a read-only transaction, the chain walk as versions pile
//! up, and the writer-side commit that installs them.

use colock_bench::cells_manager;
use colock_core::InstanceTarget;
use colock_nf2::Value;
use colock_sim::CellsConfig;
use colock_testkit::{black_box, BenchHarness};
use colock_txn::{ProtocolKind, TxnKind};

fn robot_trajectory() -> InstanceTarget {
    InstanceTarget::object("cells", CellsConfig::cell_key(0))
        .elem("robots", CellsConfig::robot_key(0))
        .attr("trajectory")
}

fn bench_snapshot_read(h: &mut BenchHarness) {
    let cells = CellsConfig { n_cells: 2, c_objects_per_cell: 8, ..Default::default() };
    let mut group = h.group("snapshot_read");
    group.bench("snapshot_read_hot", |b| {
        let mgr = cells_manager(&cells, ProtocolKind::Proposed);
        let reader = mgr.begin_readonly();
        let target = robot_trajectory();
        b.iter(|| reader.snapshot_read(black_box(&target)).unwrap());
    });
    group.bench("snapshot_read_64_version_chain", |b| {
        // An unpruned 64-entry chain on the hot object: the visibility scan
        // has to walk past every version newer than the pinned snapshot.
        let mgr = cells_manager(&cells, ProtocolKind::Proposed);
        mgr.set_gc_every(0);
        let reader = mgr.begin_readonly();
        let target = robot_trajectory();
        for i in 0..64 {
            let w = mgr.begin(TxnKind::Short);
            w.update(&target, Value::str(format!("t{i}"))).unwrap();
            w.commit().unwrap();
        }
        b.iter(|| reader.snapshot_read(black_box(&target)).unwrap());
    });
    group.bench("begin_commit_readonly", |b| {
        // Pure transaction overhead of a snapshot reader: timestamp pin at
        // begin, unpin at commit, no reads.
        let mgr = cells_manager(&cells, ProtocolKind::Proposed);
        b.iter(|| mgr.begin_readonly().commit().unwrap());
    });
    group.bench("locking_read_covered", |b| {
        // The ablation's repeat-read cost: the S lock is already held, so
        // this is a covered reacquire plus the same tree walk.
        let mgr = cells_manager(&cells, ProtocolKind::Proposed);
        mgr.set_mvcc(false);
        let reader = mgr.begin_readonly();
        let target = robot_trajectory();
        b.iter(|| reader.snapshot_read(black_box(&target)).unwrap());
    });
    group.bench("update_commit_installs_version", |b| {
        // Writer-side price of the overlay: every committing update also
        // composes a patch from its undo log and installs one version.
        let mgr = cells_manager(&cells, ProtocolKind::Proposed);
        let target = robot_trajectory();
        b.iter(|| {
            let w = mgr.begin(TxnKind::Short);
            w.update(&target, black_box(Value::str("t"))).unwrap();
            w.commit().unwrap();
        });
    });
    group.finish();
}

fn main() {
    let mut h = BenchHarness::new();
    bench_snapshot_read(&mut h);
}
