//! Companion to E2: wall-clock cost of X-locking a shared effector — the
//! naive DAG's reverse scan vs the proposed entry-point lock.

use colock_bench::cells_manager_writable;
use colock_core::{AccessMode, InstanceTarget};
use colock_sim::CellsConfig;
use colock_testkit::BenchHarness;
use colock_txn::{ProtocolKind, TxnKind};

fn bench_shared_xlock(h: &mut BenchHarness) {
    let mut group = h.group("e2_x_on_shared_effector");
    for n_cells in [2usize, 8, 32] {
        let cfg = CellsConfig {
            n_cells,
            c_objects_per_cell: 10,
            robots_per_cell: 4,
            n_effectors: 4,
            effectors_per_robot: 2,
            ..Default::default()
        };
        for protocol in [ProtocolKind::NaiveDag, ProtocolKind::Proposed] {
            let mgr = cells_manager_writable(&cfg, protocol);
            group.bench(&format!("{}/{}", protocol.name(), n_cells), |b| {
                b.iter(|| {
                    let t = mgr.begin(TxnKind::Short);
                    t.lock(
                        &InstanceTarget::object("effectors", "e1"),
                        AccessMode::Update,
                    )
                    .unwrap();
                    t.commit().unwrap();
                });
            });
        }
    }
    group.finish();
}

fn main() {
    let mut h = BenchHarness::new();
    bench_shared_xlock(&mut h);
}
