//! Crash-recovery constant factors: the write-ahead append a long-lock
//! grant pays, cold-medium replay, and bulk lock re-installation.

use colock_lockmgr::{Journal, JournalOp, JournalSink, LockManager, LockMode, TxnId};
use colock_testkit::{black_box, BenchHarness};

/// A medium with `n` grants from 16 owners, every other one released, so
/// replay exercises the fold (insert + remove), not just inserts.
fn medium_with(n: u64) -> String {
    let journal: Journal<u64> = Journal::new();
    for i in 0..n {
        journal.record(JournalOp::Grant, TxnId(1 + i % 16), &i, LockMode::X).unwrap();
    }
    for i in (0..n).step_by(2) {
        journal.record(JournalOp::Release, TxnId(1 + i % 16), &i, LockMode::X).unwrap();
    }
    journal.contents()
}

fn bench_recovery(h: &mut BenchHarness) {
    let mut group = h.group("recovery");
    group.bench("journal_append_grant", |b| {
        let journal: Journal<u64> = Journal::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            journal.record(JournalOp::Grant, TxnId(1), black_box(&i), LockMode::X).unwrap();
        });
    });
    group.bench("replay_1500_records", |b| {
        let medium = medium_with(1_000);
        b.iter(|| Journal::<u64>::replay(black_box(&medium)).unwrap());
    });
    group.bench("reinstall_500_locks", |b| {
        let recovered = Journal::<u64>::replay(&medium_with(1_000)).unwrap();
        b.iter(|| {
            let lm: LockManager<u64> = LockManager::new();
            for (resource, txn, mode) in &recovered.entries {
                lm.install_recovered(*txn, *resource, *mode);
            }
            black_box(lm.table_size())
        });
    });
    group.finish();
}

fn main() {
    let mut h = BenchHarness::new();
    bench_recovery(&mut h);
}
