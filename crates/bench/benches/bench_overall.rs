//! Companion to E6 plus the §4.6 disadvantage-1 measurement:
//! the once-per-query analysis/planning overhead of the proposed technique.

use colock_bench::cells_manager;
use colock_core::optimizer::Optimizer;
use colock_query::{analyze::analyze, parse, plan::plan_locks};
use colock_sim::{run_threads, CellsConfig, QueryMix, ThreadConfig};
use colock_testkit::BenchHarness;
use colock_txn::{ProtocolKind, TxnKind};

const Q2: &str = "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE";

fn bench_mixed_throughput(h: &mut BenchHarness) {
    let mut group = h.group("e6_mixed_throughput");
    let cells = CellsConfig {
        n_cells: 4,
        c_objects_per_cell: 40,
        robots_per_cell: 4,
        n_effectors: 6,
        effectors_per_robot: 2,
        ..Default::default()
    };
    for protocol in [
        ProtocolKind::Proposed,
        ProtocolKind::ProposedRule4,
        ProtocolKind::WholeObject,
        ProtocolKind::TupleLevel,
    ] {
        group.bench(&format!("engineering_mix/{}", protocol.name()), |b| {
            b.iter(|| {
                let mgr = cells_manager(&cells, protocol);
                let cfg = ThreadConfig {
                    workers: 4,
                    txns_per_worker: 8,
                    ops_per_txn: 3,
                    mix: QueryMix::engineering(),
                    seed: 9,
                    cells,
                    readonly_pct: 0,
                };
                run_threads(&mgr, &cfg)
            });
        });
    }
    group.finish();
}

/// §4.6 disadvantage 1: "some additional but small overhead to determine
/// (only once) the object- and query-specific lock graph before the
/// execution of a query". Measured: parse+analyze+plan vs full execution.
fn bench_plan_overhead(h: &mut BenchHarness) {
    let mut group = h.group("disadvantage1_plan_overhead");
    let cells = CellsConfig::default();
    let mgr = cells_manager(&cells, ProtocolKind::Proposed);
    let catalog = mgr.store().catalog().clone();
    group.bench("parse_analyze_plan_q2", |b| {
        b.iter(|| {
            let stmt = parse(Q2).unwrap();
            let a = analyze(&catalog, &stmt).unwrap();
            plan_locks(&catalog, stmt, a, &Optimizer::default()).unwrap()
        });
    });
    group.bench("full_execution_q2", |b| {
        b.iter(|| {
            let t = mgr.begin(TxnKind::Short);
            let out = colock_query::exec::run(&t, Q2, &Optimizer::default()).unwrap();
            t.commit().unwrap();
            out
        });
    });
    group.finish();
}

fn main() {
    let mut h = BenchHarness::new();
    bench_mixed_throughput(&mut h);
    bench_plan_overhead(&mut h);
}
