//! Companion to E4 (ablation): multithreaded throughput of robot updaters
//! sharing a small effector library — rule 4′ vs plain rule 4.

use colock_bench::cells_manager;
use colock_sim::{run_threads, CellsConfig, QueryMix, ThreadConfig};
use colock_testkit::BenchHarness;
use colock_txn::ProtocolKind;

fn bench_rule4(h: &mut BenchHarness) {
    let mut group = h.group("e4_rule4_vs_rule4prime");
    let cells = CellsConfig {
        n_cells: 8,
        robots_per_cell: 4,
        n_effectors: 2,
        effectors_per_robot: 2,
        c_objects_per_cell: 5,
        ..Default::default()
    };
    let mix = QueryMix {
        read_parts: 0,
        update_robot: 100,
        read_robot: 0,
        checkout_cell: 0,
        read_cell: 0,
        update_effector: 0,
        read_effector: 0,
    };
    for protocol in [ProtocolKind::Proposed, ProtocolKind::ProposedRule4] {
        group.bench(&format!("updaters_x4/{}", protocol.name()), |b| {
            b.iter(|| {
                let mgr = cells_manager(&cells, protocol);
                let cfg = ThreadConfig {
                    workers: 4,
                    txns_per_worker: 10,
                    ops_per_txn: 2,
                    mix,
                    seed: 3,
                    cells,
                    readonly_pct: 0,
                };
                run_threads(&mgr, &cfg)
            });
        });
    }
    group.finish();
}

fn main() {
    let mut h = BenchHarness::new();
    bench_rule4(&mut h);
}
