//! Criterion: raw lock-manager operations — the constant factors underneath
//! every protocol comparison.

use colock_lockmgr::{LockManager, LockMode, LockRequestOptions, TxnId};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_acquire_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("lockmgr");
    group.bench_function("acquire_release_x", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        b.iter(|| {
            lm.acquire(txn, black_box(42), LockMode::X, LockRequestOptions::default()).unwrap();
            lm.release(txn, &42);
        });
    });
    group.bench_function("reentrant_covered_acquire", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        lm.acquire(txn, 42, LockMode::X, LockRequestOptions::default()).unwrap();
        b.iter(|| {
            lm.acquire(txn, black_box(42), LockMode::S, LockRequestOptions::default()).unwrap()
        });
    });
    group.bench_function("shared_group_of_8", |b| {
        let lm: LockManager<u64> = LockManager::new();
        for i in 0..8 {
            lm.acquire(TxnId(i), 7, LockMode::S, LockRequestOptions::default()).unwrap();
        }
        let txn = TxnId(99);
        b.iter(|| {
            lm.acquire(txn, black_box(7), LockMode::S, LockRequestOptions::default()).unwrap();
            lm.release(txn, &7);
        });
    });
    group.bench_function("conversion_s_to_x", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        b.iter(|| {
            lm.acquire(txn, 1, LockMode::S, LockRequestOptions::default()).unwrap();
            lm.acquire(txn, 1, LockMode::X, LockRequestOptions::default()).unwrap();
            lm.release(txn, &1);
        });
    });
    group.bench_function("chain_of_6_intents", |b| {
        // The cost of one proposed-protocol chain: db/seg/rel/obj/holu/elem.
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        b.iter(|| {
            for r in 0..5u64 {
                lm.acquire(txn, r, LockMode::IX, LockRequestOptions::default()).unwrap();
            }
            lm.acquire(txn, 5, LockMode::X, LockRequestOptions::default()).unwrap();
            lm.release_all(txn);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_acquire_release);
criterion_main!(benches);
