//! Raw lock-manager operations — the constant factors underneath every
//! protocol comparison.

use colock_lockmgr::{LockManager, LockMode, LockRequestOptions, TxnId};
use colock_testkit::{black_box, BenchHarness};

fn bench_acquire_release(h: &mut BenchHarness) {
    let mut group = h.group("lockmgr");
    group.bench("acquire_release_x", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        b.iter(|| {
            lm.acquire(txn, black_box(42), LockMode::X, LockRequestOptions::default()).unwrap();
            lm.release(txn, &42);
        });
    });
    group.bench("reentrant_covered_acquire", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        lm.acquire(txn, 42, LockMode::X, LockRequestOptions::default()).unwrap();
        b.iter(|| {
            lm.acquire(txn, black_box(42), LockMode::S, LockRequestOptions::default()).unwrap()
        });
    });
    group.bench("shared_group_of_8", |b| {
        let lm: LockManager<u64> = LockManager::new();
        for i in 0..8 {
            lm.acquire(TxnId(i), 7, LockMode::S, LockRequestOptions::default()).unwrap();
        }
        let txn = TxnId(99);
        b.iter(|| {
            lm.acquire(txn, black_box(7), LockMode::S, LockRequestOptions::default()).unwrap();
            lm.release(txn, &7);
        });
    });
    group.bench("conversion_s_to_x", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        b.iter(|| {
            lm.acquire(txn, 1, LockMode::S, LockRequestOptions::default()).unwrap();
            lm.acquire(txn, 1, LockMode::X, LockRequestOptions::default()).unwrap();
            lm.release(txn, &1);
        });
    });
    group.bench("chain_of_6_intents", |b| {
        // The cost of one proposed-protocol chain: db/seg/rel/obj/holu/elem.
        // Uses the batched chain call exactly like the protocol engine does;
        // with the fast path on, the five intents are one summary-word
        // publication each under a single stripe critical section.
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        let ancestors: Vec<u64> = (0..5).collect();
        b.iter(|| {
            lm.acquire_intent_chain(txn, black_box(&ancestors), LockMode::IX, LockRequestOptions::default())
                .unwrap();
            lm.acquire(txn, 5, LockMode::X, LockRequestOptions::default()).unwrap();
            lm.release_all(txn);
        });
    });
    group.finish();
}

/// The optimistic-vs-pessimistic ablation: the same 5-intent ancestor chain
/// through the summary-word CAS (per-acquire and batched) and forced down
/// the shard-mutex path.
fn bench_optimistic_ablation(h: &mut BenchHarness) {
    let mut group = h.group("optimistic");
    group.bench("chain_fastpath_gate", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        b.iter(|| {
            for r in 0..5u64 {
                lm.acquire(txn, black_box(r), LockMode::IX, LockRequestOptions::default()).unwrap();
            }
            lm.release_all(txn);
        });
    });
    group.bench("chain_fastpath_batched", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        let ancestors: Vec<u64> = (0..5).collect();
        b.iter(|| {
            lm.acquire_intent_chain(txn, black_box(&ancestors), LockMode::IX, LockRequestOptions::default())
                .unwrap();
            lm.release_all(txn);
        });
    });
    group.bench("chain_pessimistic", |b| {
        let lm: LockManager<u64> = LockManager::new();
        lm.set_fastpath(false);
        let txn = TxnId(1);
        let ancestors: Vec<u64> = (0..5).collect();
        b.iter(|| {
            lm.acquire_intent_chain(txn, black_box(&ancestors), LockMode::IX, LockRequestOptions::default())
                .unwrap();
            lm.release_all(txn);
        });
    });
    group.finish();
}

fn main() {
    let mut h = BenchHarness::new();
    bench_acquire_release(&mut h);
    bench_optimistic_ablation(&mut h);
}
