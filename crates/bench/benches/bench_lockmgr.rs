//! Raw lock-manager operations — the constant factors underneath every
//! protocol comparison.

use colock_lockmgr::{LockManager, LockMode, LockRequestOptions, TxnId};
use colock_testkit::{black_box, BenchHarness};

fn bench_acquire_release(h: &mut BenchHarness) {
    let mut group = h.group("lockmgr");
    group.bench("acquire_release_x", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        b.iter(|| {
            lm.acquire(txn, black_box(42), LockMode::X, LockRequestOptions::default()).unwrap();
            lm.release(txn, &42);
        });
    });
    group.bench("reentrant_covered_acquire", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        lm.acquire(txn, 42, LockMode::X, LockRequestOptions::default()).unwrap();
        b.iter(|| {
            lm.acquire(txn, black_box(42), LockMode::S, LockRequestOptions::default()).unwrap()
        });
    });
    group.bench("shared_group_of_8", |b| {
        let lm: LockManager<u64> = LockManager::new();
        for i in 0..8 {
            lm.acquire(TxnId(i), 7, LockMode::S, LockRequestOptions::default()).unwrap();
        }
        let txn = TxnId(99);
        b.iter(|| {
            lm.acquire(txn, black_box(7), LockMode::S, LockRequestOptions::default()).unwrap();
            lm.release(txn, &7);
        });
    });
    group.bench("conversion_s_to_x", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        b.iter(|| {
            lm.acquire(txn, 1, LockMode::S, LockRequestOptions::default()).unwrap();
            lm.acquire(txn, 1, LockMode::X, LockRequestOptions::default()).unwrap();
            lm.release(txn, &1);
        });
    });
    group.bench("chain_of_6_intents", |b| {
        // The cost of one proposed-protocol chain: db/seg/rel/obj/holu/elem.
        // Uses the batched chain call exactly like the protocol engine does;
        // with the fast path on, the five intents are one summary-word
        // publication each under a single stripe critical section.
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        let ancestors: Vec<u64> = (0..5).collect();
        b.iter(|| {
            lm.acquire_intent_chain(txn, black_box(&ancestors), LockMode::IX, LockRequestOptions::default())
                .unwrap();
            lm.acquire(txn, 5, LockMode::X, LockRequestOptions::default()).unwrap();
            lm.release_all(txn);
        });
    });
    group.finish();
}

/// The optimistic-vs-pessimistic ablation: the same 5-intent ancestor chain
/// through the summary-word CAS (per-acquire and batched) and forced down
/// the shard-mutex path.
fn bench_optimistic_ablation(h: &mut BenchHarness) {
    let mut group = h.group("optimistic");
    group.bench("chain_fastpath_gate", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        b.iter(|| {
            for r in 0..5u64 {
                lm.acquire(txn, black_box(r), LockMode::IX, LockRequestOptions::default()).unwrap();
            }
            lm.release_all(txn);
        });
    });
    group.bench("chain_fastpath_batched", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        let ancestors: Vec<u64> = (0..5).collect();
        b.iter(|| {
            lm.acquire_intent_chain(txn, black_box(&ancestors), LockMode::IX, LockRequestOptions::default())
                .unwrap();
            lm.release_all(txn);
        });
    });
    group.bench("chain_pessimistic", |b| {
        let lm: LockManager<u64> = LockManager::new();
        lm.set_fastpath(false);
        let txn = TxnId(1);
        let ancestors: Vec<u64> = (0..5).collect();
        b.iter(|| {
            lm.acquire_intent_chain(txn, black_box(&ancestors), LockMode::IX, LockRequestOptions::default())
                .unwrap();
            lm.release_all(txn);
        });
    });
    group.finish();
}

/// Costs of the semantic commutativity modes (Insert/Delete/Member): the
/// conflict rows equal IX/IX/IS, so none of these may cost more than the
/// classical intents they stand in for.
fn bench_semantic_modes(h: &mut BenchHarness) {
    let mut group = h.group("semantic");
    group.bench("insert_acquire_release", |b| {
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        b.iter(|| {
            lm.acquire(txn, black_box(42), LockMode::Insert, LockRequestOptions::default())
                .unwrap();
            lm.release(txn, &42);
        });
    });
    group.bench("commuting_inserters_of_8", |b| {
        // Eight concurrent inserters hold Insert on the hot container; a
        // ninth joins and leaves — the semantic analogue of
        // shared_group_of_8, except every holder is a *writer*.
        let lm: LockManager<u64> = LockManager::new();
        for i in 0..8 {
            lm.acquire(TxnId(i), 7, LockMode::Insert, LockRequestOptions::default()).unwrap();
        }
        let txn = TxnId(99);
        b.iter(|| {
            lm.acquire(txn, black_box(7), LockMode::Insert, LockRequestOptions::default())
                .unwrap();
            lm.release(txn, &7);
        });
    });
    group.bench("member_beside_inserters", |b| {
        // A membership probe joining a container full of active inserters:
        // Member's row is IS, Insert's is IX — compatible, no queueing.
        let lm: LockManager<u64> = LockManager::new();
        for i in 0..8 {
            lm.acquire(TxnId(i), 7, LockMode::Insert, LockRequestOptions::default()).unwrap();
        }
        let txn = TxnId(99);
        b.iter(|| {
            lm.acquire(txn, black_box(7), LockMode::Member, LockRequestOptions::default())
                .unwrap();
            lm.release(txn, &7);
        });
    });
    group.bench("semantic_element_insert_chain", |b| {
        // The full protocol shape of one element insert: 4 classical
        // intents (db/seg/rel/obj), Insert on the container, X on the
        // element — what `Transaction::insert_element` pays per call.
        let lm: LockManager<u64> = LockManager::new();
        let txn = TxnId(1);
        let ancestors: Vec<u64> = (0..4).collect();
        b.iter(|| {
            lm.acquire_intent_chain(txn, black_box(&ancestors), LockMode::IX, LockRequestOptions::default())
                .unwrap();
            lm.acquire(txn, 4, LockMode::Insert, LockRequestOptions::default()).unwrap();
            lm.acquire(txn, 5, LockMode::X, LockRequestOptions::default()).unwrap();
            lm.release_all(txn);
        });
    });
    group.finish();
}

fn main() {
    let mut h = BenchHarness::new();
    bench_acquire_release(&mut h);
    bench_optimistic_ablation(&mut h);
    bench_semantic_modes(&mut h);
}
