//! Companion to E1: lock-acquisition cost of "read all parts of a
//! cell" per protocol, as the cell grows. Tuple-level locking pays per
//! element; whole-object and proposed pay O(depth).

use colock_bench::cells_manager;
use colock_sim::{CellsConfig, Op};
use colock_txn::{ProtocolKind, TxnKind};
use colock_testkit::BenchHarness;

fn bench_read_parts(h: &mut BenchHarness) {
    let mut group = h.group("e1_read_parts_lock_cost");
    for n in [10usize, 100, 500] {
        for protocol in
            [ProtocolKind::Proposed, ProtocolKind::WholeObject, ProtocolKind::TupleLevel]
        {
            let cfg = CellsConfig {
                n_cells: 1,
                c_objects_per_cell: n,
                ..Default::default()
            };
            let mgr = cells_manager(&cfg, protocol);
            group.bench(&format!("{}/{}", protocol.name(), n), |b| {
                b.iter(|| {
                    let t = mgr.begin(TxnKind::Short);
                    let (target, access) = Op::ReadParts { cell: 0 }.target();
                    t.lock(&target, access).unwrap();
                    t.commit().unwrap();
                });
            });
        }
    }
    group.finish();
}

fn main() {
    let mut h = BenchHarness::new();
    bench_read_parts(&mut h);
}
