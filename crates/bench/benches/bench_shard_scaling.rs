//! Multithreaded lock-table scalability: threads sweeping disjoint vs
//! shared-hot-spot resource sets, plus a shards=1 vs shards=16 ablation.
//!
//! Unlike the single-threaded microbenches, each measurement here times a
//! whole parallel phase (barrier start → all threads joined) and reports
//! nanoseconds per acquire/release pair. The [`BenchReport`] JSON lines use
//! the same shape as the testkit harness so downstream tooling can ingest
//! both. `COLOCK_BENCH_MS` scales the per-thread operation count.

use colock_lockmgr::{LockManager, LockMode, LockRequestOptions, TxnId};
use colock_testkit::bench::BenchReport;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;
/// Resources per thread in the disjoint workload (enough to keep several
/// shards populated per thread).
const DISJOINT_RES: u64 = 64;
/// Size of the contended pool in the hot-spot workload.
const HOT_RES: u64 = 4;

fn ops_per_thread() -> u64 {
    let ms: u64 = std::env::var("COLOCK_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    (ms * 60).clamp(1_000, 40_000)
}

/// Every thread loops over its own private resource range: zero logical
/// conflicts, so the only serialization left is the lock manager's own.
fn disjoint_body(lm: &LockManager<u64>, tid: usize, ops: u64) {
    let txn = TxnId(tid as u64 + 1);
    let base = tid as u64 * DISJOINT_RES;
    for i in 0..ops {
        let r = base + (i % DISJOINT_RES);
        lm.acquire(txn, r, LockMode::X, LockRequestOptions::default()).unwrap();
        lm.release(txn, &r);
    }
}

/// Every thread hammers a tiny shared pool with X requests: real blocking,
/// queue processing and targeted wakeups on every collision.
fn hotspot_body(lm: &LockManager<u64>, tid: usize, ops: u64) {
    let txn = TxnId(tid as u64 + 1);
    for i in 0..ops {
        let r = (i + tid as u64) % HOT_RES;
        // One lock at a time per txn: waits happen, cycles cannot.
        lm.acquire(txn, r, LockMode::X, LockRequestOptions::default()).unwrap();
        lm.release(txn, &r);
    }
}

fn run_case(
    bench: &str,
    threads: usize,
    shards: usize,
    body: fn(&LockManager<u64>, usize, u64),
) -> BenchReport {
    let ops = ops_per_thread();
    let mut per_op_ns: Vec<f64> = Vec::with_capacity(REPS);
    let mut iters: u64 = 0;
    for _ in 0..REPS {
        let lm: Arc<LockManager<u64>> = Arc::new(LockManager::with_shards(shards));
        let barrier = Arc::new(Barrier::new(threads + 1));
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let lm = Arc::clone(&lm);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    body(&lm, tid, ops);
                })
            })
            .collect();
        // Stamp before releasing the barrier (main is the last arriver, so
        // release is immediate): stamping after it can undercount on a
        // single-core host where workers finish before main is rescheduled.
        let t = Instant::now();
        barrier.wait();
        for h in handles {
            h.join().unwrap();
        }
        let total_ops = ops * threads as u64;
        per_op_ns.push(t.elapsed().as_nanos() as f64 / total_ops as f64);
        iters += total_ops;
        assert_eq!(lm.table_size(), 0, "{bench}: table must drain");
    }
    per_op_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let report = BenchReport {
        group: "shard_scaling".to_string(),
        name: bench.to_string(),
        iters,
        min_ns: per_op_ns[0],
        median_ns: per_op_ns[per_op_ns.len() / 2],
        p99_ns: *per_op_ns.last().unwrap(),
    };
    println!("{}", report.to_json());
    report
}

fn main() {
    // Thread sweep over both workloads at the default shard count.
    for &threads in &THREAD_COUNTS {
        run_case(&format!("disjoint_t{threads}"), threads, 16, disjoint_body);
    }
    for &threads in &THREAD_COUNTS {
        run_case(&format!("hotspot_t{threads}"), threads, 16, hotspot_body);
    }
    // Ablation: the same 4-thread disjoint load against a single-shard
    // (global-mutex-equivalent) table vs the striped default.
    run_case("disjoint_t4_shards1", 4, 1, disjoint_body);
    run_case("disjoint_t4_shards16", 4, 16, disjoint_body);
}
