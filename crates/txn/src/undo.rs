//! Undo log: before-images for rollback.

use colock_core::TargetStep;
use colock_nf2::{ObjectKey, Value};
use colock_storage::{StorageError, Store, VersionPatch};
use std::collections::BTreeMap;

/// One undo record; applied in reverse order on abort.
#[derive(Debug, Clone)]
pub enum UndoRecord {
    /// An object was inserted: undo removes it.
    Inserted {
        /// Relation.
        relation: String,
        /// Key of the inserted object.
        key: ObjectKey,
    },
    /// A subvalue was updated: undo restores the before-image *at the
    /// updated path only*. Path granularity matters: the transaction holds
    /// an X lock on exactly this subtree, and a whole-object restore would
    /// wipe out committed concurrent writes to element-locked siblings.
    Updated {
        /// Relation.
        relation: String,
        /// Key.
        key: ObjectKey,
        /// Path of the update within the object.
        steps: Vec<TargetStep>,
        /// The before-image of the subvalue at `steps`.
        before: Value,
    },
    /// An object was deleted: undo re-inserts the before-image.
    Deleted {
        /// Relation.
        relation: String,
        /// Key.
        key: ObjectKey,
        /// The deleted object.
        before: Value,
    },
    /// One element was inserted into a set/list HoLU under a semantic Insert
    /// lock: undo removes exactly that element, leaving concurrent writes to
    /// sibling elements untouched.
    ElementInserted {
        /// Relation.
        relation: String,
        /// Key of the owning object.
        key: ObjectKey,
        /// Path of the *container* within the object.
        steps: Vec<TargetStep>,
        /// Key of the inserted element.
        elem_key: ObjectKey,
    },
    /// One element was removed from a set/list HoLU under a semantic Delete
    /// lock: undo puts the before-image back into the container.
    ElementRemoved {
        /// Relation.
        relation: String,
        /// Key of the owning object.
        key: ObjectKey,
        /// Path of the *container* within the object.
        steps: Vec<TargetStep>,
        /// Key of the removed element.
        elem_key: ObjectKey,
        /// Position the element held in the container (lists are ordered).
        at: usize,
        /// The removed element.
        before: Value,
    },
}

impl UndoRecord {
    /// Applies the undo against the store.
    ///
    /// Failures (e.g. a record naming a relation the store no longer knows)
    /// are propagated, not asserted away: a silently skipped undo leaves the
    /// store half-rolled-back, which release builds must surface too.
    pub fn apply(&self, store: &Store) -> Result<(), StorageError> {
        match self {
            UndoRecord::Inserted { relation, key } => store.restore(relation, key, None),
            UndoRecord::Updated { relation, key, steps, before } => {
                store.restore_at(relation, key, steps, before.clone())
            }
            UndoRecord::Deleted { relation, key, before } => {
                store.restore(relation, key, Some(before.clone()))
            }
            UndoRecord::ElementInserted { relation, key, steps, elem_key } => {
                store.restore_element(relation, key, steps, elem_key, None)
            }
            UndoRecord::ElementRemoved { relation, key, steps, elem_key, at, before } => {
                store.restore_element(relation, key, steps, elem_key, Some((*at, before.clone())))
            }
        }
    }

    /// The element's full instance path (container steps with the trailing
    /// attr step element-qualified) for element-granular records.
    fn element_path(steps: &[TargetStep], elem_key: &ObjectKey) -> Vec<TargetStep> {
        let mut path = steps.to_vec();
        if let Some(last) = path.pop() {
            path.push(TargetStep { attr: last.attr, elem: Some(elem_key.clone()) });
        }
        path
    }
}

/// Rolls back a log (newest first). Every record is attempted even when an
/// earlier one fails — partial damage control beats stopping — and the
/// *first* failure is returned.
pub fn rollback(store: &Store, log: &[UndoRecord]) -> Result<(), StorageError> {
    let mut first_err = None;
    for rec in log.iter().rev() {
        if let Err(e) = rec.apply(store) {
            first_err.get_or_insert(e);
        }
    }
    match first_err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Derives a committing transaction's version patches from its undo log:
/// one patch per touched `(relation, key)`, in deterministic key order.
///
/// The undo log is the exact record of what this transaction wrote under
/// its own X locks, which makes it the right source for the new versions —
/// a raw clone of the live object could carry uncommitted sibling-element
/// writes of concurrent transactions (see
/// [`colock_storage::Store::install_version`]).
///
/// * live object gone          → [`VersionPatch::Tombstone`]
/// * inserted by this txn      → [`VersionPatch::Full`]
/// * otherwise                 → [`VersionPatch::Paths`] of the updated
///   subtrees, in write order
pub fn commit_patches(
    store: &Store,
    log: &[UndoRecord],
) -> Vec<(String, ObjectKey, VersionPatch)> {
    #[derive(Default)]
    struct Touched {
        inserted: bool,
        paths: Vec<Vec<TargetStep>>,
    }
    let mut grouped: BTreeMap<(String, ObjectKey), Touched> = BTreeMap::new();
    for rec in log {
        match rec {
            UndoRecord::Inserted { relation, key } => {
                grouped.entry((relation.clone(), key.clone())).or_default().inserted = true;
            }
            UndoRecord::Updated { relation, key, steps, .. } => {
                grouped
                    .entry((relation.clone(), key.clone()))
                    .or_default()
                    .paths
                    .push(steps.clone());
            }
            UndoRecord::Deleted { relation, key, .. } => {
                grouped.entry((relation.clone(), key.clone())).or_default();
            }
            // Element-granular writes commit as paths ending in an elem step;
            // `install_version` composes them as element insert/removal
            // against the base image.
            UndoRecord::ElementInserted { relation, key, steps, elem_key }
            | UndoRecord::ElementRemoved { relation, key, steps, elem_key, .. } => {
                grouped
                    .entry((relation.clone(), key.clone()))
                    .or_default()
                    .paths
                    .push(UndoRecord::element_path(steps, elem_key));
            }
        }
    }
    grouped
        .into_iter()
        .map(|((relation, key), t)| {
            let patch = if !store.contains(&relation, &key) {
                // Deleted (possibly after updates): commit a tombstone.
                VersionPatch::Tombstone
            } else if t.inserted || t.paths.is_empty() {
                // Born in this txn (even if updated afterwards — its whole
                // state is this txn's work), or delete-then-reinsert.
                VersionPatch::Full
            } else {
                VersionPatch::Paths(t.paths)
            };
            (relation, key, patch)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use colock_core::fixtures::fig1_catalog;
    use colock_nf2::value::build::tup;
    use std::sync::Arc;

    fn effector(id: &str, tool: &str) -> Value {
        tup(vec![("eff_id", Value::str(id)), ("tool", Value::str(tool))])
    }

    #[test]
    fn rollback_reverses_in_order() {
        let store = Store::new(Arc::new(fig1_catalog()));
        // op1: insert e1; op2: update e1.
        store.insert("effectors", effector("e1", "a")).unwrap();
        let before = store
            .update_at(
                "effectors",
                &ObjectKey::from("e1"),
                &[TargetStep::attr("tool")],
                Value::str("b"),
            )
            .unwrap();
        let log = vec![
            UndoRecord::Inserted { relation: "effectors".into(), key: ObjectKey::from("e1") },
            UndoRecord::Updated {
                relation: "effectors".into(),
                key: ObjectKey::from("e1"),
                steps: vec![TargetStep::attr("tool")],
                before,
            },
        ];
        rollback(&store, &log).unwrap();
        // update undone first, then the insert: object gone entirely.
        assert!(!store.contains("effectors", &ObjectKey::from("e1")));
    }

    #[test]
    fn unknown_relation_propagates_instead_of_being_swallowed() {
        let store = Store::new(Arc::new(fig1_catalog()));
        store.insert("effectors", effector("e1", "a")).unwrap();
        let log = vec![
            // Newest first at rollback: the bad record is attempted first,
            // and the valid one must still be applied.
            UndoRecord::Inserted { relation: "effectors".into(), key: ObjectKey::from("e1") },
            UndoRecord::Deleted {
                relation: "no-such-relation".into(),
                key: ObjectKey::from("zz"),
                before: effector("zz", "t"),
            },
        ];
        let err = rollback(&store, &log).unwrap_err();
        assert!(err.to_string().contains("no-such-relation"), "{err}");
        // The valid undo still ran: the insert was removed.
        assert!(!store.contains("effectors", &ObjectKey::from("e1")));
    }

    #[test]
    fn commit_patches_classify_touches() {
        let store = Store::new(Arc::new(fig1_catalog()));
        store.insert("effectors", effector("e1", "a")).unwrap();
        store.insert("effectors", effector("e2", "b")).unwrap();
        let before = store
            .update_at_pending(
                "effectors",
                &ObjectKey::from("e1"),
                &[TargetStep::attr("tool")],
                Value::str("a2"),
            )
            .unwrap();
        let gone = store.delete_pending("effectors", &ObjectKey::from("e2")).unwrap();
        store.insert_pending("effectors", effector("e3", "c")).unwrap();
        let log = vec![
            UndoRecord::Updated {
                relation: "effectors".into(),
                key: ObjectKey::from("e1"),
                steps: vec![TargetStep::attr("tool")],
                before,
            },
            UndoRecord::Deleted {
                relation: "effectors".into(),
                key: ObjectKey::from("e2"),
                before: gone,
            },
            UndoRecord::Inserted { relation: "effectors".into(), key: ObjectKey::from("e3") },
        ];
        let patches = commit_patches(&store, &log);
        assert_eq!(patches.len(), 3);
        assert!(matches!(patches[0], (_, _, VersionPatch::Paths(ref p)) if p.len() == 1));
        assert!(matches!(patches[1], (_, _, VersionPatch::Tombstone)));
        assert!(matches!(patches[2], (_, _, VersionPatch::Full)));
    }

    #[test]
    fn deleted_record_reinserts() {
        let store = Store::new(Arc::new(fig1_catalog()));
        store.insert("effectors", effector("e1", "a")).unwrap();
        let before = store.delete("effectors", &ObjectKey::from("e1")).unwrap();
        rollback(
            &store,
            &[UndoRecord::Deleted {
                relation: "effectors".into(),
                key: ObjectKey::from("e1"),
                before,
            }],
        )
        .unwrap();
        assert!(store.contains("effectors", &ObjectKey::from("e1")));
    }
}
