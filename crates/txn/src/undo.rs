//! Undo log: before-images for rollback.

use colock_core::TargetStep;
use colock_nf2::{ObjectKey, Value};
use colock_storage::{Store, StorageError};

/// One undo record; applied in reverse order on abort.
#[derive(Debug, Clone)]
pub enum UndoRecord {
    /// An object was inserted: undo removes it.
    Inserted {
        /// Relation.
        relation: String,
        /// Key of the inserted object.
        key: ObjectKey,
    },
    /// A subvalue was updated: undo restores the before-image *at the
    /// updated path only*. Path granularity matters: the transaction holds
    /// an X lock on exactly this subtree, and a whole-object restore would
    /// wipe out committed concurrent writes to element-locked siblings.
    Updated {
        /// Relation.
        relation: String,
        /// Key.
        key: ObjectKey,
        /// Path of the update within the object.
        steps: Vec<TargetStep>,
        /// The before-image of the subvalue at `steps`.
        before: Value,
    },
    /// An object was deleted: undo re-inserts the before-image.
    Deleted {
        /// Relation.
        relation: String,
        /// Key.
        key: ObjectKey,
        /// The deleted object.
        before: Value,
    },
}

impl UndoRecord {
    /// Applies the undo against the store.
    ///
    /// Failures (e.g. a record naming a relation the store no longer knows)
    /// are propagated, not asserted away: a silently skipped undo leaves the
    /// store half-rolled-back, which release builds must surface too.
    pub fn apply(&self, store: &Store) -> Result<(), StorageError> {
        match self {
            UndoRecord::Inserted { relation, key } => store.restore(relation, key, None),
            UndoRecord::Updated { relation, key, steps, before } => {
                store.restore_at(relation, key, steps, before.clone())
            }
            UndoRecord::Deleted { relation, key, before } => {
                store.restore(relation, key, Some(before.clone()))
            }
        }
    }
}

/// Rolls back a log (newest first). Every record is attempted even when an
/// earlier one fails — partial damage control beats stopping — and the
/// *first* failure is returned.
pub fn rollback(store: &Store, log: &[UndoRecord]) -> Result<(), StorageError> {
    let mut first_err = None;
    for rec in log.iter().rev() {
        if let Err(e) = rec.apply(store) {
            first_err.get_or_insert(e);
        }
    }
    match first_err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colock_core::fixtures::fig1_catalog;
    use colock_nf2::value::build::tup;
    use std::sync::Arc;

    fn effector(id: &str, tool: &str) -> Value {
        tup(vec![("eff_id", Value::str(id)), ("tool", Value::str(tool))])
    }

    #[test]
    fn rollback_reverses_in_order() {
        let store = Store::new(Arc::new(fig1_catalog()));
        // op1: insert e1; op2: update e1.
        store.insert("effectors", effector("e1", "a")).unwrap();
        let before = store
            .update_at(
                "effectors",
                &ObjectKey::from("e1"),
                &[TargetStep::attr("tool")],
                Value::str("b"),
            )
            .unwrap();
        let log = vec![
            UndoRecord::Inserted { relation: "effectors".into(), key: ObjectKey::from("e1") },
            UndoRecord::Updated {
                relation: "effectors".into(),
                key: ObjectKey::from("e1"),
                steps: vec![TargetStep::attr("tool")],
                before,
            },
        ];
        rollback(&store, &log).unwrap();
        // update undone first, then the insert: object gone entirely.
        assert!(!store.contains("effectors", &ObjectKey::from("e1")));
    }

    #[test]
    fn unknown_relation_propagates_instead_of_being_swallowed() {
        let store = Store::new(Arc::new(fig1_catalog()));
        store.insert("effectors", effector("e1", "a")).unwrap();
        let log = vec![
            // Newest first at rollback: the bad record is attempted first,
            // and the valid one must still be applied.
            UndoRecord::Inserted { relation: "effectors".into(), key: ObjectKey::from("e1") },
            UndoRecord::Deleted {
                relation: "no-such-relation".into(),
                key: ObjectKey::from("zz"),
                before: effector("zz", "t"),
            },
        ];
        let err = rollback(&store, &log).unwrap_err();
        assert!(err.to_string().contains("no-such-relation"), "{err}");
        // The valid undo still ran: the insert was removed.
        assert!(!store.contains("effectors", &ObjectKey::from("e1")));
    }

    #[test]
    fn deleted_record_reinserts() {
        let store = Store::new(Arc::new(fig1_catalog()));
        store.insert("effectors", effector("e1", "a")).unwrap();
        let before = store.delete("effectors", &ObjectKey::from("e1")).unwrap();
        rollback(
            &store,
            &[UndoRecord::Deleted {
                relation: "effectors".into(),
                key: ObjectKey::from("e1"),
                before,
            }],
        )
        .unwrap();
        assert!(store.contains("effectors", &ObjectKey::from("e1")));
    }
}
