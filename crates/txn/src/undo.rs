//! Undo log: before-images for rollback.

use colock_core::TargetStep;
use colock_nf2::{ObjectKey, Value};
use colock_storage::Store;

/// One undo record; applied in reverse order on abort.
#[derive(Debug, Clone)]
pub enum UndoRecord {
    /// An object was inserted: undo removes it.
    Inserted {
        /// Relation.
        relation: String,
        /// Key of the inserted object.
        key: ObjectKey,
    },
    /// A subvalue was updated: undo restores the before-image *at the
    /// updated path only*. Path granularity matters: the transaction holds
    /// an X lock on exactly this subtree, and a whole-object restore would
    /// wipe out committed concurrent writes to element-locked siblings.
    Updated {
        /// Relation.
        relation: String,
        /// Key.
        key: ObjectKey,
        /// Path of the update within the object.
        steps: Vec<TargetStep>,
        /// The before-image of the subvalue at `steps`.
        before: Value,
    },
    /// An object was deleted: undo re-inserts the before-image.
    Deleted {
        /// Relation.
        relation: String,
        /// Key.
        key: ObjectKey,
        /// The deleted object.
        before: Value,
    },
}

impl UndoRecord {
    /// Applies the undo against the store.
    pub fn apply(&self, store: &Store) {
        let result = match self {
            UndoRecord::Inserted { relation, key } => store.restore(relation, key, None),
            UndoRecord::Updated { relation, key, steps, before } => {
                store.restore_at(relation, key, steps, before.clone())
            }
            UndoRecord::Deleted { relation, key, before } => {
                store.restore(relation, key, Some(before.clone()))
            }
        };
        // `restore` only fails on unknown relations, which cannot happen for
        // records we produced ourselves.
        debug_assert!(result.is_ok());
    }
}

/// Rolls back a log (newest first).
pub fn rollback(store: &Store, log: &[UndoRecord]) {
    for rec in log.iter().rev() {
        rec.apply(store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colock_core::fixtures::fig1_catalog;
    use colock_nf2::value::build::tup;
    use std::sync::Arc;

    fn effector(id: &str, tool: &str) -> Value {
        tup(vec![("eff_id", Value::str(id)), ("tool", Value::str(tool))])
    }

    #[test]
    fn rollback_reverses_in_order() {
        let store = Store::new(Arc::new(fig1_catalog()));
        // op1: insert e1; op2: update e1.
        store.insert("effectors", effector("e1", "a")).unwrap();
        let before = store
            .update_at(
                "effectors",
                &ObjectKey::from("e1"),
                &[TargetStep::attr("tool")],
                Value::str("b"),
            )
            .unwrap();
        let log = vec![
            UndoRecord::Inserted { relation: "effectors".into(), key: ObjectKey::from("e1") },
            UndoRecord::Updated {
                relation: "effectors".into(),
                key: ObjectKey::from("e1"),
                steps: vec![TargetStep::attr("tool")],
                before,
            },
        ];
        rollback(&store, &log);
        // update undone first, then the insert: object gone entirely.
        assert!(!store.contains("effectors", &ObjectKey::from("e1")));
    }

    #[test]
    fn deleted_record_reinserts() {
        let store = Store::new(Arc::new(fig1_catalog()));
        store.insert("effectors", effector("e1", "a")).unwrap();
        let before = store.delete("effectors", &ObjectKey::from("e1")).unwrap();
        rollback(
            &store,
            &[UndoRecord::Deleted {
                relation: "effectors".into(),
                key: ObjectKey::from("e1"),
                before,
            }],
        );
        assert!(store.contains("effectors", &ObjectKey::from("e1")));
    }
}
