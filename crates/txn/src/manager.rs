//! The transaction manager.

use crate::error::TxnError;
use crate::transaction::{Transaction, TxnKind};
use crate::Result;
use colock_core::{
    AccessMode, Authorization, InstanceTarget, LockReport, ProtocolEngine, ProtocolOptions,
    ResourcePath, TxnLockCache,
};
use colock_lockmgr::txnid::TxnIdGen;
use colock_lockmgr::{Journal, JournalSink, LockManager, TxnId};
use colock_lockmgr::LockStats;
use colock_storage::Store;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Which lock protocol a manager (or an individual transaction) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The paper's protocol with rule 4′.
    Proposed,
    /// The paper's protocol with plain rule 4 (no authorization cooperation).
    ProposedRule4,
    /// XSQL-style whole-object locking.
    WholeObject,
    /// System R tuple-level locking.
    TupleLevel,
    /// Naive traditional DAG on non-disjoint data.
    NaiveDag,
    /// Naive DAG with the all-parents rule given up (§3.2.2): cheap X on
    /// shared data, but from-the-side conflicts go undetected.
    NaiveRelaxed,
}

impl ProtocolKind {
    /// All protocol kinds (for sweeps).
    pub const ALL: [ProtocolKind; 6] = [
        ProtocolKind::Proposed,
        ProtocolKind::ProposedRule4,
        ProtocolKind::WholeObject,
        ProtocolKind::TupleLevel,
        ProtocolKind::NaiveDag,
        ProtocolKind::NaiveRelaxed,
    ];

    /// Short display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Proposed => "proposed(4')",
            ProtocolKind::ProposedRule4 => "proposed(4)",
            ProtocolKind::WholeObject => "whole-object",
            ProtocolKind::TupleLevel => "tuple-level",
            ProtocolKind::NaiveDag => "naive-dag",
            ProtocolKind::NaiveRelaxed => "naive-relaxed",
        }
    }
}

pub(crate) struct TxnState {
    pub undo: Vec<crate::undo::UndoRecord>,
    pub shrinking: bool,
    pub checked_out: HashMap<String, InstanceTarget>,
    /// Per-transaction ancestor-lock cache; dies with the state at EOT, so
    /// invalidation needs no extra bookkeeping. Cleared on early release.
    pub cache: Arc<TxnLockCache>,
    /// Begun via `begin_readonly`: must never write.
    pub readonly: bool,
    /// Snapshot timestamp pinned at begin (MVCC read-only transactions
    /// only); unregistered from the GC watermark set at EOT.
    pub snapshot_ts: Option<u64>,
}

/// The transaction manager: owns lock manager, engine, store, rights.
pub struct TransactionManager {
    lm: Arc<LockManager<ResourcePath>>,
    engine: Arc<ProtocolEngine>,
    store: Arc<Store>,
    authz: Arc<Authorization>,
    protocol: ProtocolKind,
    idgen: TxnIdGen,
    pub(crate) states: Mutex<HashMap<TxnId, TxnState>>,
    /// Durable long-lock journal, if one has been attached. The manager
    /// keeps the concrete type (the lock manager only sees the sink trait)
    /// so recovery can inspect the medium.
    journal: OnceLock<Arc<Journal<ResourcePath>>>,
    /// Multiversion overlay toggle (`COLOCK_NO_MVCC` ablation): off,
    /// `begin_readonly` degrades to a locking reader.
    mvcc: AtomicBool,
    /// Active snapshot timestamps → number of pinning transactions. The min
    /// key is the GC low watermark; pruning runs under this mutex so a
    /// concurrent `begin_readonly` cannot pin a timestamp mid-prune.
    snapshots: Mutex<BTreeMap<u64, usize>>,
    /// Writer commits since the last GC pass.
    commits_since_gc: AtomicU64,
    /// GC cadence in writer commits (`COLOCK_GC_EVERY`, 0 = off).
    gc_every: AtomicU64,
    /// Semantic commutativity container modes toggle (`COLOCK_NO_SEMANTIC`
    /// ablation): off, element operations degrade to classical X on the
    /// container.
    semantic: AtomicBool,
}

/// `COLOCK_NO_MVCC` set (non-empty, not "0") disables the overlay.
fn mvcc_default() -> bool {
    match std::env::var("COLOCK_NO_MVCC") {
        Ok(v) => v.is_empty() || v == "0",
        Err(_) => true,
    }
}

/// `COLOCK_GC_EVERY` overrides the version-GC cadence (default every 64
/// writer commits; 0 disables automatic pruning).
fn gc_every_default() -> u64 {
    std::env::var("COLOCK_GC_EVERY").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// `COLOCK_NO_SEMANTIC` set (non-empty, not "0") disables the semantic
/// Insert/Delete/Member container modes.
fn semantic_default() -> bool {
    match std::env::var("COLOCK_NO_SEMANTIC") {
        Ok(v) => v.is_empty() || v == "0",
        Err(_) => true,
    }
}

/// What `TransactionManager::recover` restored from a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Owners that were re-adopted (ascending ids), one fresh long
    /// transaction state each.
    pub owners: Vec<TxnId>,
    /// Total long locks re-installed across all owners.
    pub locks: usize,
    /// Torn-tail records dropped during replay (0 for a clean shutdown).
    pub dropped_tail: usize,
}

impl TransactionManager {
    /// Creates a manager over shared components.
    pub fn new(
        lm: Arc<LockManager<ResourcePath>>,
        engine: Arc<ProtocolEngine>,
        store: Arc<Store>,
        authz: Arc<Authorization>,
        protocol: ProtocolKind,
    ) -> Self {
        TransactionManager {
            lm,
            engine,
            store,
            authz,
            protocol,
            idgen: TxnIdGen::new(),
            states: Mutex::new(HashMap::new()),
            journal: OnceLock::new(),
            mvcc: AtomicBool::new(mvcc_default()),
            snapshots: Mutex::new(BTreeMap::new()),
            commits_since_gc: AtomicU64::new(0),
            gc_every: AtomicU64::new(gc_every_default()),
            semantic: AtomicBool::new(semantic_default()),
        }
    }

    fn snapshots_locked(&self) -> MutexGuard<'_, BTreeMap<u64, usize>> {
        self.snapshots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether the multiversion read overlay is active (read-only
    /// transactions elide locks). Defaults to on; `COLOCK_NO_MVCC=1` or
    /// [`TransactionManager::set_mvcc`] turn it off.
    pub fn mvcc_enabled(&self) -> bool {
        self.mvcc.load(Ordering::Relaxed)
    }

    /// Toggles the multiversion overlay (ablation hook; the env-independent
    /// counterpart of `COLOCK_NO_MVCC` for parallel tests).
    pub fn set_mvcc(&self, enabled: bool) {
        self.mvcc.store(enabled, Ordering::Relaxed);
    }

    /// Whether the semantic commutativity container modes (Insert/Delete/
    /// Member) are in play. Defaults to on; `COLOCK_NO_SEMANTIC=1` or
    /// [`TransactionManager::set_semantic`] turn them off.
    pub fn semantic_enabled(&self) -> bool {
        self.semantic.load(Ordering::Relaxed)
    }

    /// Toggles the semantic container modes (the env-independent counterpart
    /// of `COLOCK_NO_SEMANTIC` for parallel tests).
    pub fn set_semantic(&self, enabled: bool) {
        self.semantic.store(enabled, Ordering::Relaxed);
    }

    /// Whether the container HoLU named by `container` should be locked with
    /// the semantic modes: toggle on, a protocol that understands explicit
    /// modes, and a schema whose element keys are derivable (the catalog's
    /// admission rule). Anything else degrades to the classical protocol.
    pub fn semantic_for(&self, container: &InstanceTarget) -> bool {
        if !self.semantic_enabled()
            || !matches!(self.protocol, ProtocolKind::Proposed | ProtocolKind::ProposedRule4)
        {
            return false;
        }
        self.store
            .catalog()
            .admits_semantic_modes(&container.relation, &container.attr_path())
            .unwrap_or(false)
    }

    /// Version-GC cadence in writer commits (0 = automatic GC off).
    pub fn gc_every(&self) -> u64 {
        self.gc_every.load(Ordering::Relaxed)
    }

    /// Overrides the version-GC cadence (the env-independent counterpart of
    /// `COLOCK_GC_EVERY`).
    pub fn set_gc_every(&self, every: u64) {
        self.gc_every.store(every, Ordering::Relaxed);
    }

    /// The GC low watermark: the oldest snapshot timestamp still pinned by
    /// an active read-only transaction, or the current stable timestamp when
    /// none is active. Versions older than the newest chain entry ≤ this are
    /// unreachable.
    pub fn low_watermark(&self) -> u64 {
        self.snapshots_locked()
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.store.clock().stable())
    }

    /// Prunes version chains up to the low watermark now; returns entries
    /// dropped. Runs automatically every [`TransactionManager::gc_every`]
    /// writer commits.
    pub fn gc_versions(&self) -> u64 {
        // Hold the snapshot registry across the prune: a reader beginning
        // concurrently pins stable() ≥ our watermark, which pruning keeps.
        let snaps = self.snapshots_locked();
        let watermark =
            snaps.keys().next().copied().unwrap_or_else(|| self.store.clock().stable());
        self.store.prune_versions(watermark)
    }

    /// Locks the per-transaction state map, recovering from poisoning so a
    /// panicking test thread cannot wedge the whole manager.
    pub(crate) fn states_locked(&self) -> MutexGuard<'_, HashMap<TxnId, TxnState>> {
        self.states.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Convenience constructor wiring everything from a store.
    pub fn over_store(store: Arc<Store>, authz: Authorization, protocol: ProtocolKind) -> Self {
        let engine = Arc::new(ProtocolEngine::new(Arc::clone(store.catalog())));
        Self::new(Arc::new(LockManager::new()), engine, store, Arc::new(authz), protocol)
    }

    /// Attaches a durable long-lock journal to this manager *and* its lock
    /// manager; every long-lock grant/conversion/release is recorded
    /// write-ahead from now on. First sink wins (returns `false` if either
    /// the manager or the lock manager already had one).
    pub fn attach_journal(&self, journal: Arc<Journal<ResourcePath>>) -> bool {
        let sink: Arc<dyn JournalSink<ResourcePath>> = Arc::clone(&journal) as _;
        self.journal.set(journal).is_ok() && self.lm.attach_journal(sink)
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal<ResourcePath>>> {
        self.journal.get()
    }

    /// Whether the attached journal has simulated a crash (after which all
    /// long-lock requests fail unacknowledged).
    pub fn journal_crashed(&self) -> bool {
        self.journal.get().is_some_and(|j| j.crashed())
    }

    /// Replays a journal (the medium text of a crashed peer) into this
    /// manager: every surviving long lock is re-installed in the lock
    /// manager under its original owner, and each owner gets a fresh long
    /// transaction state so it can be resumed, checked in, or aborted
    /// exactly like a live one. The id generator is bumped past the highest
    /// recovered owner so new transactions cannot collide with re-adopted
    /// ones.
    ///
    /// If a journal is attached to *this* manager, the re-installed locks
    /// are re-journaled into it, so a second crash recovers them again.
    pub fn recover(&self, journal_text: &str) -> Result<RecoveryReport> {
        let recovered = Journal::<ResourcePath>::replay(journal_text)?;
        let owners = recovered.owners();
        let mut per_owner: HashMap<TxnId, usize> = HashMap::new();
        for (resource, txn, mode) in &recovered.entries {
            self.lm.install_recovered(*txn, resource.clone(), *mode);
            *per_owner.entry(*txn).or_insert(0) += 1;
        }
        {
            let mut states = self.states_locked();
            for &owner in &owners {
                states.entry(owner).or_insert_with(|| TxnState {
                    undo: Vec::new(),
                    shrinking: false,
                    checked_out: HashMap::new(),
                    cache: Arc::new(TxnLockCache::new()),
                    readonly: false,
                    snapshot_ts: None,
                });
            }
        }
        if let Some(&max) = owners.iter().max() {
            self.idgen.ensure_above(max);
        }
        for &owner in &owners {
            let n = per_owner.get(&owner).copied().unwrap_or(0);
            colock_trace::emit(|| {
                colock_trace::Event::new(colock_trace::EventKind::TxnRecovered, owner.0)
                    .detail(format!("{n} long locks"))
            });
        }
        Ok(RecoveryReport {
            owners,
            locks: recovered.entries.len(),
            dropped_tail: recovered.dropped_tail,
        })
    }

    /// Hands out a handle to a transaction this manager already tracks —
    /// the post-crash counterpart of `begin`, for owners re-adopted by
    /// `recover`. The caller is responsible for not resuming the same
    /// transaction twice concurrently (the second handle's drop would abort
    /// an already-finished transaction).
    pub fn resume(&self, txn: TxnId) -> Result<Transaction<'_>> {
        if !self.states_locked().contains_key(&txn) {
            return Err(TxnError::NotActive(txn));
        }
        Ok(Transaction::new(self, txn, TxnKind::Long))
    }

    /// Starts a transaction.
    pub fn begin(&self, kind: TxnKind) -> Transaction<'_> {
        let id = self.idgen.next();
        self.states_locked().insert(
            id,
            TxnState {
                undo: Vec::new(),
                shrinking: false,
                checked_out: HashMap::new(),
                cache: Arc::new(TxnLockCache::new()),
                readonly: false,
                snapshot_ts: None,
            },
        );
        colock_trace::emit(|| {
            colock_trace::Event::new(colock_trace::EventKind::TxnBegin, id.0)
                .detail(if kind == TxnKind::Long { "long" } else { "short" })
        });
        Transaction::new(self, id, kind)
    }

    /// Starts a read-only transaction. With the multiversion overlay on it
    /// pins a snapshot timestamp at begin and every read resolves against
    /// the version chains — zero locks, never in the waits-for graph, never
    /// blocked behind a long check-out. With the overlay off
    /// (`COLOCK_NO_MVCC`) it degrades to an ordinary locking reader (begin
    /// detail `readonly-locking`), which is the ablation baseline.
    pub fn begin_readonly(&self) -> Transaction<'_> {
        let id = self.idgen.next();
        let snap = if self.mvcc_enabled() {
            // Pin under the registry lock so a concurrent GC pass cannot
            // compute a watermark above this timestamp before it lands.
            let mut snaps = self.snapshots_locked();
            let ts = self.store.clock().stable();
            *snaps.entry(ts).or_insert(0) += 1;
            Some(ts)
        } else {
            None
        };
        self.states_locked().insert(
            id,
            TxnState {
                undo: Vec::new(),
                shrinking: false,
                checked_out: HashMap::new(),
                cache: Arc::new(TxnLockCache::new()),
                readonly: true,
                snapshot_ts: snap,
            },
        );
        colock_trace::emit(|| {
            colock_trace::Event::new(colock_trace::EventKind::TxnBegin, id.0)
                .detail(if snap.is_some() { "readonly" } else { "readonly-locking" })
        });
        Transaction::new_readonly(self, id, snap)
    }

    /// The lock manager.
    pub fn lock_manager(&self) -> &Arc<LockManager<ResourcePath>> {
        &self.lm
    }

    /// The protocol engine.
    pub fn engine(&self) -> &Arc<ProtocolEngine> {
        &self.engine
    }

    /// The store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The rights matrix.
    pub fn authorization(&self) -> &Arc<Authorization> {
        &self.authz
    }

    /// The protocol in use.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Locks `target` for `txn` under the configured protocol.
    pub fn lock(
        &self,
        txn: TxnId,
        target: &InstanceTarget,
        access: AccessMode,
        opts: ProtocolOptions,
    ) -> Result<LockReport> {
        let cache = self.active_cache(txn)?;
        let cache = Some(cache.as_ref());
        let src: &Store = &self.store;
        let report = match self.protocol {
            ProtocolKind::Proposed => self.engine.lock_proposed_cached(
                &self.lm,
                txn,
                src,
                &self.authz,
                target,
                access,
                ProtocolOptions { rule4_prime: true, ..opts },
                cache,
            ),
            ProtocolKind::ProposedRule4 => self.engine.lock_proposed_cached(
                &self.lm,
                txn,
                src,
                &self.authz,
                target,
                access,
                ProtocolOptions { rule4_prime: false, ..opts },
                cache,
            ),
            ProtocolKind::WholeObject => self
                .engine
                .lock_whole_object_cached(&self.lm, txn, src, &self.authz, target, access, opts, cache),
            ProtocolKind::TupleLevel => self
                .engine
                .lock_tuple_level_cached(&self.lm, txn, src, &self.authz, target, access, opts, cache),
            ProtocolKind::NaiveDag => self
                .engine
                .lock_naive_dag_cached(&self.lm, txn, src, &self.authz, target, access, opts, cache),
            ProtocolKind::NaiveRelaxed => self
                .engine
                .lock_naive_relaxed_cached(&self.lm, txn, src, &self.authz, target, access, opts, cache),
        }?;
        Ok(report)
    }

    /// Fetches the ancestor-lock cache of an active, still-growing
    /// transaction (shared entry point of `lock` / `lock_mode`).
    fn active_cache(&self, txn: TxnId) -> Result<Arc<TxnLockCache>> {
        let states = self.states_locked();
        let st = states.get(&txn).ok_or(TxnError::NotActive(txn))?;
        if st.shrinking {
            return Err(TxnError::TwoPhaseViolation(txn));
        }
        // Manager-level backstop for the handle-level guard: a snapshot
        // transaction must never reach the lock table, whatever path the
        // request took.
        if st.readonly && st.snapshot_ts.is_some() {
            return Err(TxnError::ReadOnlyTxn(txn));
        }
        Ok(Arc::clone(&st.cache))
    }

    /// Locks `target` in an explicit multi-granularity mode (IS/IX/S/SIX/X).
    /// The proposed protocol honours the exact mode; the baselines have no
    /// notion of intent requests from above and fall back to the S/X their
    /// access-kind mapping produces.
    pub fn lock_mode(
        &self,
        txn: TxnId,
        target: &InstanceTarget,
        mode: colock_lockmgr::LockMode,
        opts: ProtocolOptions,
    ) -> Result<LockReport> {
        let cache = self.active_cache(txn)?;
        let src: &Store = &self.store;
        match self.protocol {
            ProtocolKind::Proposed => Ok(self.engine.lock_proposed_mode_cached(
                &self.lm,
                txn,
                src,
                &self.authz,
                target,
                mode,
                ProtocolOptions { rule4_prime: true, ..opts },
                Some(cache.as_ref()),
            )?),
            ProtocolKind::ProposedRule4 => Ok(self.engine.lock_proposed_mode_cached(
                &self.lm,
                txn,
                src,
                &self.authz,
                target,
                mode,
                ProtocolOptions { rule4_prime: false, ..opts },
                Some(cache.as_ref()),
            )?),
            _ => {
                // Required parent intent IX singles out the write-side modes
                // including semantic Insert/Delete, which sit below IX and so
                // would be misread as Read by a bare `covers(IX)` test.
                let access = if mode.required_parent_intent() == colock_lockmgr::LockMode::IX {
                    AccessMode::Update
                } else {
                    AccessMode::Read
                };
                self.lock(txn, target, access, opts)
            }
        }
    }

    pub(crate) fn finish(&self, txn: TxnId, commit: bool) -> Result<()> {
        let state = self
            .states_locked()
            .remove(&txn)
            .ok_or(TxnError::NotActive(txn))?;
        if let Some(ts) = state.snapshot_ts {
            // Unpin the snapshot; the GC watermark may advance past it now.
            let mut snaps = self.snapshots_locked();
            if let Some(n) = snaps.get_mut(&ts) {
                *n -= 1;
                if *n == 0 {
                    snaps.remove(&ts);
                }
            }
        }
        let rolled_back = if commit {
            Ok(())
        } else {
            crate::undo::rollback(&self.store, &state.undo)
        };
        // A committing writer installs its new versions *before* releasing
        // its X locks: the patches are composed from subtrees no concurrent
        // transaction may touch yet, and the commit gate makes the whole
        // multi-object install atomic to snapshot readers.
        let mut commit_ts = None;
        let installed: std::result::Result<(), colock_storage::StorageError> = if commit
            && !state.undo.is_empty()
        {
            let patches = crate::undo::commit_patches(&self.store, &state.undo);
            self.store.clock().commit(|ts| {
                commit_ts = Some(ts);
                for (relation, key, patch) in &patches {
                    self.store.install_version(relation, key, ts, patch)?;
                }
                Ok(())
            })
        } else {
            Ok(())
        };
        // Locks are released even when an undo record failed: holding them
        // would wedge every waiter behind a transaction that no longer
        // exists. The failure still reaches the caller below.
        self.lm.release_all(txn);
        // Per-transaction rights die with the transaction (ids are never
        // reused; session-granted rule 4′ contexts must not accumulate).
        self.authz.retract(txn);
        colock_trace::emit(|| {
            let kind =
                if commit { colock_trace::EventKind::TxnCommit } else { colock_trace::EventKind::TxnAbort };
            let ev = colock_trace::Event::new(kind, txn.0);
            // A version-installing commit stamps its clock timestamp so the
            // serializability certifier can order snapshot reads against it
            // (reads-from edges are `version ts ≤ snapshot ts`).
            match commit_ts {
                Some(ts) => ev.detail(format!("ts={ts}")),
                None => ev,
            }
        });
        if commit && !state.undo.is_empty() {
            let every = self.gc_every.load(Ordering::Relaxed);
            if every > 0
                && (self.commits_since_gc.fetch_add(1, Ordering::Relaxed) + 1).is_multiple_of(every)
            {
                self.gc_versions();
            }
        }
        rolled_back.map_err(TxnError::from).and(installed.map_err(TxnError::from))
    }

    /// Bumps the elided-read counter (one per lock-free snapshot read).
    pub(crate) fn note_read_elided(&self) {
        LockStats::bump(&self.lm.stats().reads_elided);
    }

    /// Number of active transactions.
    pub fn active_count(&self) -> usize {
        self.states_locked().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colock_core::fixtures::fig1_catalog;

    #[test]
    fn protocol_names_are_distinct() {
        let mut names: Vec<&str> = ProtocolKind::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn begin_and_finish_lifecycle() {
        let store = Arc::new(Store::new(Arc::new(fig1_catalog())));
        let mgr = TransactionManager::over_store(store, Authorization::allow_all(), ProtocolKind::Proposed);
        let t = mgr.begin(TxnKind::Short);
        assert_eq!(mgr.active_count(), 1);
        t.commit().unwrap();
        assert_eq!(mgr.active_count(), 0);
    }
}
