//! The transaction manager.

use crate::error::TxnError;
use crate::transaction::{Transaction, TxnKind};
use crate::Result;
use colock_core::{
    AccessMode, Authorization, InstanceTarget, LockReport, ProtocolEngine, ProtocolOptions,
    ResourcePath, TxnLockCache,
};
use colock_lockmgr::{LockManager, TxnId};
use colock_lockmgr::txnid::TxnIdGen;
use colock_storage::Store;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Which lock protocol a manager (or an individual transaction) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The paper's protocol with rule 4′.
    Proposed,
    /// The paper's protocol with plain rule 4 (no authorization cooperation).
    ProposedRule4,
    /// XSQL-style whole-object locking.
    WholeObject,
    /// System R tuple-level locking.
    TupleLevel,
    /// Naive traditional DAG on non-disjoint data.
    NaiveDag,
    /// Naive DAG with the all-parents rule given up (§3.2.2): cheap X on
    /// shared data, but from-the-side conflicts go undetected.
    NaiveRelaxed,
}

impl ProtocolKind {
    /// All protocol kinds (for sweeps).
    pub const ALL: [ProtocolKind; 6] = [
        ProtocolKind::Proposed,
        ProtocolKind::ProposedRule4,
        ProtocolKind::WholeObject,
        ProtocolKind::TupleLevel,
        ProtocolKind::NaiveDag,
        ProtocolKind::NaiveRelaxed,
    ];

    /// Short display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Proposed => "proposed(4')",
            ProtocolKind::ProposedRule4 => "proposed(4)",
            ProtocolKind::WholeObject => "whole-object",
            ProtocolKind::TupleLevel => "tuple-level",
            ProtocolKind::NaiveDag => "naive-dag",
            ProtocolKind::NaiveRelaxed => "naive-relaxed",
        }
    }
}

pub(crate) struct TxnState {
    pub undo: Vec<crate::undo::UndoRecord>,
    pub shrinking: bool,
    pub checked_out: HashMap<String, InstanceTarget>,
    /// Per-transaction ancestor-lock cache; dies with the state at EOT, so
    /// invalidation needs no extra bookkeeping. Cleared on early release.
    pub cache: Arc<TxnLockCache>,
}

/// The transaction manager: owns lock manager, engine, store, rights.
pub struct TransactionManager {
    lm: Arc<LockManager<ResourcePath>>,
    engine: Arc<ProtocolEngine>,
    store: Arc<Store>,
    authz: Arc<Authorization>,
    protocol: ProtocolKind,
    idgen: TxnIdGen,
    pub(crate) states: Mutex<HashMap<TxnId, TxnState>>,
}

impl TransactionManager {
    /// Creates a manager over shared components.
    pub fn new(
        lm: Arc<LockManager<ResourcePath>>,
        engine: Arc<ProtocolEngine>,
        store: Arc<Store>,
        authz: Arc<Authorization>,
        protocol: ProtocolKind,
    ) -> Self {
        TransactionManager {
            lm,
            engine,
            store,
            authz,
            protocol,
            idgen: TxnIdGen::new(),
            states: Mutex::new(HashMap::new()),
        }
    }

    /// Locks the per-transaction state map, recovering from poisoning so a
    /// panicking test thread cannot wedge the whole manager.
    pub(crate) fn states_locked(&self) -> MutexGuard<'_, HashMap<TxnId, TxnState>> {
        self.states.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Convenience constructor wiring everything from a store.
    pub fn over_store(store: Arc<Store>, authz: Authorization, protocol: ProtocolKind) -> Self {
        let engine = Arc::new(ProtocolEngine::new(Arc::clone(store.catalog())));
        Self::new(Arc::new(LockManager::new()), engine, store, Arc::new(authz), protocol)
    }

    /// Starts a transaction.
    pub fn begin(&self, kind: TxnKind) -> Transaction<'_> {
        let id = self.idgen.next();
        self.states_locked().insert(
            id,
            TxnState {
                undo: Vec::new(),
                shrinking: false,
                checked_out: HashMap::new(),
                cache: Arc::new(TxnLockCache::new()),
            },
        );
        colock_trace::emit(|| {
            colock_trace::Event::new(colock_trace::EventKind::TxnBegin, id.0)
                .detail(if kind == TxnKind::Long { "long" } else { "short" })
        });
        Transaction::new(self, id, kind)
    }

    /// The lock manager.
    pub fn lock_manager(&self) -> &Arc<LockManager<ResourcePath>> {
        &self.lm
    }

    /// The protocol engine.
    pub fn engine(&self) -> &Arc<ProtocolEngine> {
        &self.engine
    }

    /// The store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The rights matrix.
    pub fn authorization(&self) -> &Arc<Authorization> {
        &self.authz
    }

    /// The protocol in use.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Locks `target` for `txn` under the configured protocol.
    pub fn lock(
        &self,
        txn: TxnId,
        target: &InstanceTarget,
        access: AccessMode,
        opts: ProtocolOptions,
    ) -> Result<LockReport> {
        let cache = self.active_cache(txn)?;
        let cache = Some(cache.as_ref());
        let src: &Store = &self.store;
        let report = match self.protocol {
            ProtocolKind::Proposed => self.engine.lock_proposed_cached(
                &self.lm,
                txn,
                src,
                &self.authz,
                target,
                access,
                ProtocolOptions { rule4_prime: true, ..opts },
                cache,
            ),
            ProtocolKind::ProposedRule4 => self.engine.lock_proposed_cached(
                &self.lm,
                txn,
                src,
                &self.authz,
                target,
                access,
                ProtocolOptions { rule4_prime: false, ..opts },
                cache,
            ),
            ProtocolKind::WholeObject => self
                .engine
                .lock_whole_object_cached(&self.lm, txn, src, &self.authz, target, access, opts, cache),
            ProtocolKind::TupleLevel => self
                .engine
                .lock_tuple_level_cached(&self.lm, txn, src, &self.authz, target, access, opts, cache),
            ProtocolKind::NaiveDag => self
                .engine
                .lock_naive_dag_cached(&self.lm, txn, src, &self.authz, target, access, opts, cache),
            ProtocolKind::NaiveRelaxed => self
                .engine
                .lock_naive_relaxed_cached(&self.lm, txn, src, &self.authz, target, access, opts, cache),
        }?;
        Ok(report)
    }

    /// Fetches the ancestor-lock cache of an active, still-growing
    /// transaction (shared entry point of `lock` / `lock_mode`).
    fn active_cache(&self, txn: TxnId) -> Result<Arc<TxnLockCache>> {
        let states = self.states_locked();
        let st = states.get(&txn).ok_or(TxnError::NotActive(txn))?;
        if st.shrinking {
            return Err(TxnError::TwoPhaseViolation(txn));
        }
        Ok(Arc::clone(&st.cache))
    }

    /// Locks `target` in an explicit multi-granularity mode (IS/IX/S/SIX/X).
    /// The proposed protocol honours the exact mode; the baselines have no
    /// notion of intent requests from above and fall back to the S/X their
    /// access-kind mapping produces.
    pub fn lock_mode(
        &self,
        txn: TxnId,
        target: &InstanceTarget,
        mode: colock_lockmgr::LockMode,
        opts: ProtocolOptions,
    ) -> Result<LockReport> {
        let cache = self.active_cache(txn)?;
        let src: &Store = &self.store;
        match self.protocol {
            ProtocolKind::Proposed => Ok(self.engine.lock_proposed_mode_cached(
                &self.lm,
                txn,
                src,
                &self.authz,
                target,
                mode,
                ProtocolOptions { rule4_prime: true, ..opts },
                Some(cache.as_ref()),
            )?),
            ProtocolKind::ProposedRule4 => Ok(self.engine.lock_proposed_mode_cached(
                &self.lm,
                txn,
                src,
                &self.authz,
                target,
                mode,
                ProtocolOptions { rule4_prime: false, ..opts },
                Some(cache.as_ref()),
            )?),
            _ => {
                let access = if mode.covers(colock_lockmgr::LockMode::IX) {
                    AccessMode::Update
                } else {
                    AccessMode::Read
                };
                self.lock(txn, target, access, opts)
            }
        }
    }

    pub(crate) fn finish(&self, txn: TxnId, commit: bool) -> Result<()> {
        let state = self
            .states_locked()
            .remove(&txn)
            .ok_or(TxnError::NotActive(txn))?;
        if !commit {
            crate::undo::rollback(&self.store, &state.undo);
        }
        self.lm.release_all(txn);
        colock_trace::emit(|| {
            let kind =
                if commit { colock_trace::EventKind::TxnCommit } else { colock_trace::EventKind::TxnAbort };
            colock_trace::Event::new(kind, txn.0)
        });
        Ok(())
    }

    /// Number of active transactions.
    pub fn active_count(&self) -> usize {
        self.states_locked().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colock_core::fixtures::fig1_catalog;

    #[test]
    fn protocol_names_are_distinct() {
        let mut names: Vec<&str> = ProtocolKind::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn begin_and_finish_lifecycle() {
        let store = Arc::new(Store::new(Arc::new(fig1_catalog())));
        let mgr = TransactionManager::over_store(store, Authorization::allow_all(), ProtocolKind::Proposed);
        let t = mgr.begin(TxnKind::Short);
        assert_eq!(mgr.active_count(), 1);
        t.commit().unwrap();
        assert_eq!(mgr.active_count(), 0);
    }
}
