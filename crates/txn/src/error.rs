//! Transaction errors.

use colock_core::ProtocolError;
use colock_lockmgr::{JournalError, LockError, TxnId};
use colock_storage::StorageError;
use std::fmt;

/// Errors raised by transaction operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnError {
    /// Locking failed (would-block, deadlock victim, timeout, rights).
    Protocol(ProtocolError),
    /// Storage operation failed.
    Storage(StorageError),
    /// Operation on a transaction that is no longer active.
    NotActive(TxnId),
    /// Lock request after the transaction entered its shrinking phase
    /// (strict 2PL violation).
    TwoPhaseViolation(TxnId),
    /// Check-in of a target that was never checked out.
    NotCheckedOut(String),
    /// The long-lock journal could not be replayed during crash recovery.
    Recovery(JournalError),
    /// A write (or lock request) on a read-only snapshot transaction.
    /// Snapshot transactions read the multiversion overlay and must never
    /// mutate data or enter the lock table.
    ReadOnlyTxn(TxnId),
}

impl TxnError {
    /// Whether this error is a deadlock-victim notification (the caller
    /// should abort and may retry).
    pub fn is_deadlock(&self) -> bool {
        matches!(self, TxnError::Protocol(ProtocolError::Lock(LockError::Deadlock { .. })))
    }

    /// Whether this is a would-block result of a try-lock policy.
    pub fn is_would_block(&self) -> bool {
        matches!(self, TxnError::Protocol(ProtocolError::Lock(LockError::WouldBlock { .. })))
    }

    /// Whether this error reports that the long-lock journal crashed before
    /// acknowledging the request (the grant is not durable).
    pub fn is_crashed(&self) -> bool {
        matches!(self, TxnError::Protocol(ProtocolError::Lock(LockError::Crashed)))
    }

    /// Whether this error reports a lock request refused because the lock
    /// manager is draining for shutdown (the caller should abort).
    pub fn is_draining(&self) -> bool {
        matches!(self, TxnError::Protocol(ProtocolError::Lock(LockError::Draining)))
    }

    /// Whether this is a blocking request that exceeded its timeout.
    pub fn is_timeout(&self) -> bool {
        matches!(self, TxnError::Protocol(ProtocolError::Lock(LockError::Timeout)))
    }
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Protocol(e) => write!(f, "{e}"),
            TxnError::Storage(e) => write!(f, "{e}"),
            TxnError::NotActive(t) => write!(f, "{t} is not active"),
            TxnError::TwoPhaseViolation(t) => {
                write!(f, "{t} requested a lock after releasing (2PL violation)")
            }
            TxnError::NotCheckedOut(t) => write!(f, "`{t}` was not checked out"),
            TxnError::Recovery(e) => write!(f, "recovery failed: {e}"),
            TxnError::ReadOnlyTxn(t) => {
                write!(f, "{t} is read-only (snapshot transactions cannot write or lock)")
            }
        }
    }
}

impl std::error::Error for TxnError {}

impl From<ProtocolError> for TxnError {
    fn from(e: ProtocolError) -> Self {
        TxnError::Protocol(e)
    }
}

impl From<StorageError> for TxnError {
    fn from(e: StorageError) -> Self {
        TxnError::Storage(e)
    }
}

impl From<JournalError> for TxnError {
    fn from(e: JournalError) -> Self {
        TxnError::Recovery(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_classification() {
        let e = TxnError::Protocol(ProtocolError::Lock(LockError::Deadlock {
            victim: TxnId(3),
            cycle: vec![TxnId(1), TxnId(3)],
        }));
        assert!(e.is_deadlock());
        assert!(!e.is_would_block());
        let wb = TxnError::Protocol(ProtocolError::Lock(LockError::WouldBlock { holders: vec![] }));
        assert!(wb.is_would_block());
    }
}
