#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # `colock-txn` — transactions over the lock technique
//!
//! Transaction substrate tying the pieces together: a [`TransactionManager`]
//! owns the lock manager, protocol engine, store and authorization matrix,
//! and hands out [`Transaction`] handles that
//!
//! * lock before access using a configurable [`ProtocolKind`] (the proposed
//!   technique or one of the paper's baselines — the experiment harness swaps
//!   them),
//! * enforce **strict two-phase locking**: all locks are held to end of
//!   transaction (early release is possible leaf-to-root per rule 5, after
//!   which the transaction may not grow again),
//! * guarantee degree-3 consistency (§1: "multiple reads of the same data
//!   during one transaction lead to the same result" \[GLPT76\]) — S locks held
//!   to EOT make repeated reads stable,
//! * keep an undo log of before-images so aborts (including deadlock
//!   victims) roll back cleanly,
//! * support **long transactions** and **check-out/check-in** (§1, §3.1):
//!   checked-out subobjects get long locks that survive a simulated system
//!   crash (see `colock-lockmgr::persistent`).

pub mod error;
pub mod manager;
pub mod transaction;
pub mod undo;

pub use error::TxnError;
pub use manager::{ProtocolKind, RecoveryReport, TransactionManager};
pub use transaction::{Transaction, TxnKind};
pub use undo::UndoRecord;

/// Result alias.
pub type Result<T> = std::result::Result<T, TxnError>;
