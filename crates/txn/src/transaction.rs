//! Transaction handles.

use crate::error::TxnError;
use crate::manager::TransactionManager;
use crate::undo::UndoRecord;
use crate::Result;
use colock_core::{AccessMode, InstanceTarget, LockReport, ProtocolOptions, TargetStep};
use colock_lockmgr::{LockMode, TxnId, WaitPolicy};
use colock_nf2::{ObjectKey, Value};
use std::cell::Cell;

/// Short (conventional) vs long ("conversational", workstation-server)
/// transactions (§1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    /// Conventional short transaction; short locks.
    Short,
    /// Long transaction; its explicit data locks are long locks that survive
    /// simulated shutdowns.
    Long,
    /// Read-only transaction begun via
    /// [`TransactionManager::begin_readonly`]: reads through the
    /// multiversion overlay at a pinned snapshot timestamp (or, with the
    /// overlay disabled, through ordinary S locks) and may never write.
    ReadOnly,
}

/// A live transaction. Dropping without [`Transaction::commit`] /
/// [`Transaction::abort`] leaks locks on purpose — call one of them (the
/// experiment drivers always do); a `debug_assert` guards misuse in tests.
pub struct Transaction<'m> {
    mgr: &'m TransactionManager,
    id: TxnId,
    kind: TxnKind,
    /// Snapshot timestamp (MVCC read-only transactions only). `Some` means
    /// every read resolves against the version chains and any lock request
    /// is an error.
    snap: Option<u64>,
    /// Wait policy applied to every implicit lock request this handle
    /// issues. Defaults to [`WaitPolicy::Block`]; a serving layer overrides
    /// it with a timeout so one stuck session can never block forever.
    wait: Cell<WaitPolicy>,
    finished: bool,
}

impl<'m> Transaction<'m> {
    pub(crate) fn new(mgr: &'m TransactionManager, id: TxnId, kind: TxnKind) -> Self {
        Transaction { mgr, id, kind, snap: None, wait: Cell::new(WaitPolicy::Block), finished: false }
    }

    pub(crate) fn new_readonly(mgr: &'m TransactionManager, id: TxnId, snap: Option<u64>) -> Self {
        Transaction {
            mgr,
            id,
            kind: TxnKind::ReadOnly,
            snap,
            wait: Cell::new(WaitPolicy::Block),
            finished: false,
        }
    }

    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Short or long.
    pub fn kind(&self) -> TxnKind {
        self.kind
    }

    /// The owning manager (store/catalog/lock-manager access for executors).
    pub fn manager(&self) -> &TransactionManager {
        self.mgr
    }

    /// The pinned snapshot timestamp, if this is an MVCC read-only
    /// transaction.
    pub fn snapshot_ts(&self) -> Option<u64> {
        self.snap
    }

    /// Overrides the wait policy for every later lock request made through
    /// this handle (`colock-server` uses `BlockTimeout` so a session blocked
    /// behind a long check-out eventually answers its client).
    pub fn set_wait_policy(&self, wait: WaitPolicy) {
        self.wait.set(wait);
    }

    /// The wait policy lock requests currently use.
    pub fn wait_policy(&self) -> WaitPolicy {
        self.wait.get()
    }

    fn opts(&self) -> ProtocolOptions {
        ProtocolOptions {
            long: self.kind == TxnKind::Long,
            wait: self.wait.get(),
            ..ProtocolOptions::default()
        }
    }

    /// Snapshot transactions never enter the lock table; a lock request on
    /// one is a protocol bug, reported as [`TxnError::ReadOnlyTxn`] (and the
    /// conformance linter flags any that slips through to the trace).
    fn check_may_lock(&self) -> Result<()> {
        if self.snap.is_some() {
            return Err(TxnError::ReadOnlyTxn(self.id));
        }
        Ok(())
    }

    /// Any write on a read-only transaction is rejected, snapshot or not.
    fn check_may_write(&self) -> Result<()> {
        if self.kind == TxnKind::ReadOnly {
            return Err(TxnError::ReadOnlyTxn(self.id));
        }
        Ok(())
    }

    /// Locks `target` for `access` without touching data (explicit lock
    /// request). Returns the lock report.
    pub fn lock(&self, target: &InstanceTarget, access: AccessMode) -> Result<LockReport> {
        self.check_may_lock()?;
        self.mgr.lock(self.id, target, access, self.opts())
    }

    /// Non-blocking lock (used by deterministic schedulers).
    pub fn try_lock(&self, target: &InstanceTarget, access: AccessMode) -> Result<LockReport> {
        self.check_may_lock()?;
        self.mgr.lock(self.id, target, access, self.opts().try_lock())
    }

    /// Locks `target` in an explicit multi-granularity mode (the planner
    /// emits SIX for scan-updates). `deref_refs: false` skips downward
    /// propagation for provably non-dereferencing accesses (§4.5).
    pub fn lock_with_mode(
        &self,
        target: &InstanceTarget,
        mode: colock_lockmgr::LockMode,
        deref_refs: bool,
    ) -> Result<LockReport> {
        self.check_may_lock()?;
        self.mgr.lock_mode(
            self.id,
            target,
            mode,
            ProtocolOptions { deref_refs, ..self.opts().try_lock() },
        )
    }

    /// Blocking variant of [`Transaction::lock_with_mode`].
    pub fn lock_with_mode_blocking(
        &self,
        target: &InstanceTarget,
        mode: colock_lockmgr::LockMode,
    ) -> Result<LockReport> {
        self.check_may_lock()?;
        self.mgr.lock_mode(self.id, target, mode, self.opts())
    }

    /// Locks without downward propagation — for accesses whose semantics
    /// provably never dereference the contained references (§4.5).
    pub fn lock_no_deref(&self, target: &InstanceTarget, access: AccessMode) -> Result<LockReport> {
        self.check_may_lock()?;
        self.mgr.lock(self.id, target, access, ProtocolOptions { deref_refs: false, ..self.opts() })
    }

    /// Reads the value at `target`: through the multiversion overlay for a
    /// snapshot transaction, via an S lock otherwise.
    pub fn read(&self, target: &InstanceTarget) -> Result<Value> {
        if self.snap.is_some() {
            return self.snapshot_read(target);
        }
        self.lock(target, AccessMode::Read)?;
        let key = target.object.clone().ok_or_else(|| {
            TxnError::Storage(colock_storage::StorageError::BadTarget(target.to_string()))
        })?;
        Ok(self.mgr.store().get_at(&target.relation, &key, &target.steps)?)
    }

    /// Reads `target` as of this transaction's snapshot timestamp, without
    /// acquiring any lock: the read resolves "newest version ≤ snapshot"
    /// against the version chains, so it can never block behind a long
    /// check-out (and never appears in the waits-for graph). Emits a
    /// `SnapshotRead` trace event and counts as an elided read in the lock
    /// manager's statistics. On a non-MVCC read-only transaction
    /// (`COLOCK_NO_MVCC` ablation) this degrades to the locking
    /// [`Transaction::read`], which *can* block.
    pub fn snapshot_read(&self, target: &InstanceTarget) -> Result<Value> {
        let Some(ts) = self.snap else {
            return self.read(target);
        };
        let key = target.object.clone().ok_or_else(|| {
            TxnError::Storage(colock_storage::StorageError::BadTarget(target.to_string()))
        })?;
        let value =
            self.mgr.store().get_at_snapshot(&target.relation, &key, &target.steps, ts)?;
        colock_trace::emit(|| {
            colock_trace::Event::new(colock_trace::EventKind::SnapshotRead, self.id.0)
                .resource(target.to_string())
                .detail(format!("ts={ts}"))
        });
        self.mgr.note_read_elided();
        Ok(value)
    }

    /// Non-blocking variant for deterministic schedulers: identical to
    /// [`Transaction::snapshot_read`] under MVCC (which never blocks
    /// anyway); under the ablation it try-locks S and surfaces would-block.
    pub fn try_snapshot_read(&self, target: &InstanceTarget) -> Result<Value> {
        if self.snap.is_some() {
            return self.snapshot_read(target);
        }
        self.try_lock(target, AccessMode::Read)?;
        let key = target.object.clone().ok_or_else(|| {
            TxnError::Storage(colock_storage::StorageError::BadTarget(target.to_string()))
        })?;
        Ok(self.mgr.store().get_at(&target.relation, &key, &target.steps)?)
    }

    /// Updates the subvalue at `target` (locks X first, logs undo).
    pub fn update(&self, target: &InstanceTarget, new_value: Value) -> Result<()> {
        self.check_may_write()?;
        self.lock(target, AccessMode::Update)?;
        let key = target.object.clone().ok_or_else(|| {
            TxnError::Storage(colock_storage::StorageError::BadTarget(target.to_string()))
        })?;
        let before = self
            .mgr
            .store()
            .update_at_pending(&target.relation, &key, &target.steps, new_value)?;
        self.log(UndoRecord::Updated {
            relation: target.relation.clone(),
            key,
            steps: target.steps.clone(),
            before,
        });
        Ok(())
    }

    /// Inserts a complex object (locks the relation IX + the new object X).
    pub fn insert(&self, relation: &str, value: Value) -> Result<ObjectKey> {
        self.check_may_write()?;
        // Insert first to learn the key, then lock the new object; the
        // relation-level IX comes with the object lock chain. (Phantom
        // protection is future work in the paper, §5.) The insert is
        // *pending*: no version exists until this transaction commits.
        let key = self.mgr.store().insert_pending(relation, value)?;
        let target = InstanceTarget::object(relation, key.clone());
        match self.lock(&target, AccessMode::Update) {
            Ok(_) => {
                self.log(UndoRecord::Inserted { relation: relation.to_string(), key: key.clone() });
                Ok(key)
            }
            Err(e) => {
                // Lock failed (deadlock victim, …): undo the insert now.
                let _ = self.mgr.store().restore(relation, &key, None);
                Err(e)
            }
        }
    }

    /// Deletes a complex object (locks X first, logs undo).
    pub fn delete(&self, relation: &str, key: &ObjectKey) -> Result<()> {
        self.check_may_write()?;
        let target = InstanceTarget::object(relation, key.clone());
        self.lock(&target, AccessMode::Update)?;
        let before = self.mgr.store().delete_pending(relation, key)?;
        self.log(UndoRecord::Deleted { relation: relation.to_string(), key: key.clone(), before });
        Ok(())
    }

    /// Splits an element target (`…robots[r1]`) into the owning object's key,
    /// the element key, and the container target (`…robots`).
    fn element_parts(element: &InstanceTarget) -> Result<(ObjectKey, ObjectKey, InstanceTarget)> {
        let bad =
            || TxnError::Storage(colock_storage::StorageError::BadTarget(element.to_string()));
        let key = element.object.clone().ok_or_else(bad)?;
        let elem_key = element.steps.last().and_then(|s| s.elem.clone()).ok_or_else(bad)?;
        let mut container = element.clone();
        let mut last = container.steps.pop().expect("last() above succeeded");
        last.elem = None;
        container.steps.push(last);
        Ok((key, elem_key, container))
    }

    /// Deletes one element of a set/list (e.g. one robot): semantic Delete on
    /// the container plus X on the element, so deleters of *distinct*
    /// elements commute while whole-container readers/writers still conflict.
    /// Because deletion provably never dereferences the element's references,
    /// downward propagation is skipped (§4.5: "no locks on common data are
    /// necessary at all").
    ///
    /// With the semantic modes unavailable (ablation, baseline protocol, or
    /// keyless elements) the container is X-locked instead. Either way the
    /// removal itself is a single element splice under the store latch — the
    /// old read-modify-write of the whole container value let two deleters
    /// holding only their element X locks overwrite each other's splice.
    pub fn delete_element(&self, element: &InstanceTarget) -> Result<()> {
        self.check_may_write()?;
        let (key, elem_key, container) = Self::element_parts(element)?;
        let opts = ProtocolOptions { deref_refs: false, ..self.opts() };
        if self.mgr.semantic_for(&container) {
            self.mgr.lock_mode(self.id, &container, LockMode::Delete, opts)?;
            self.mgr.lock(self.id, element, AccessMode::Update, opts)?;
        } else {
            self.mgr.lock(self.id, &container, AccessMode::Update, opts)?;
        }
        let (at, before) =
            self.mgr.store().remove_element_pending(&element.relation, &key, &container.steps, &elem_key)?;
        self.log(UndoRecord::ElementRemoved {
            relation: element.relation.clone(),
            key,
            steps: container.steps.clone(),
            elem_key,
            at,
            before,
        });
        Ok(())
    }

    /// Inserts one element into a set/list HoLU (e.g. one robot into
    /// `cell.robots`): semantic Insert on the container plus X on the new
    /// element, so inserters of distinct elements commute instead of
    /// serializing on a container X. Insertion never dereferences existing
    /// elements, so downward propagation is skipped (§4.5).
    ///
    /// Falls back to a classical container X when the semantic modes are
    /// unavailable. Returns the new element's key.
    pub fn insert_element(&self, container: &InstanceTarget, element: Value) -> Result<ObjectKey> {
        self.check_may_write()?;
        let bad =
            || TxnError::Storage(colock_storage::StorageError::BadTarget(container.to_string()));
        let key = container.object.clone().ok_or_else(bad)?;
        if container.steps.last().is_none_or(|s| s.elem.is_some()) {
            return Err(bad());
        }
        let opts = ProtocolOptions { deref_refs: false, ..self.opts() };
        let mode = if self.mgr.semantic_for(container) { LockMode::Insert } else { LockMode::X };
        self.mgr.lock_mode(self.id, container, mode, opts)?;
        // Insert pending first to derive (and validate) the element key, then
        // lock the new element; mirrors [`Transaction::insert`].
        let elem_key = self.mgr.store().insert_element_pending(
            &container.relation,
            &key,
            &container.steps,
            element,
        )?;
        let mut elem_target = container.clone();
        let last = elem_target.steps.pop().expect("non-empty: checked above");
        elem_target.steps.push(TargetStep { attr: last.attr, elem: Some(elem_key.clone()) });
        match self.mgr.lock(self.id, &elem_target, AccessMode::Update, opts) {
            Ok(_) => {
                self.log(UndoRecord::ElementInserted {
                    relation: container.relation.clone(),
                    key,
                    steps: container.steps.clone(),
                    elem_key: elem_key.clone(),
                });
                Ok(elem_key)
            }
            Err(e) => {
                // Lock failed (deadlock victim, …): undo the splice now.
                let _ = self.mgr.store().restore_element(
                    &container.relation,
                    &key,
                    &container.steps,
                    &elem_key,
                    None,
                );
                Err(e)
            }
        }
    }

    /// Membership probe: reads one element of a set/list under a semantic
    /// Member mode on the container plus S on the element — compatible with
    /// concurrent inserters/deleters of *other* elements. The probe never
    /// dereferences, so downward propagation is skipped. Snapshot
    /// transactions read the version chains lock-free; without semantic
    /// modes the container gets a plain IS (the classical read ancestor).
    pub fn member_element(&self, element: &InstanceTarget) -> Result<Value> {
        if self.snap.is_some() {
            return self.snapshot_read(element);
        }
        let (key, _elem_key, container) = Self::element_parts(element)?;
        let opts = ProtocolOptions { deref_refs: false, ..self.opts() };
        let mode = if self.mgr.semantic_for(&container) { LockMode::Member } else { LockMode::IS };
        self.mgr.lock_mode(self.id, &container, mode, opts)?;
        self.mgr.lock(self.id, element, AccessMode::Read, opts)?;
        Ok(self.mgr.store().get_at(&element.relation, &key, &element.steps)?)
    }

    /// Checks out `target` to a workstation: long lock (S for read-only
    /// check-out, X for update check-out) plus a private copy of the data.
    pub fn checkout(&self, target: &InstanceTarget, access: AccessMode) -> Result<Value> {
        self.check_may_write()?;
        self.mgr.lock(
            self.id,
            target,
            access,
            ProtocolOptions { long: true, wait: self.wait.get(), ..ProtocolOptions::default() },
        )?;
        let key = target.object.clone().ok_or_else(|| {
            TxnError::Storage(colock_storage::StorageError::BadTarget(target.to_string()))
        })?;
        let value = self.mgr.store().get_at(&target.relation, &key, &target.steps)?;
        let mut states = self.mgr.states_locked();
        if let Some(st) = states.get_mut(&self.id) {
            st.checked_out.insert(target.to_string(), target.clone());
        }
        Ok(value)
    }

    /// Checks a modified copy back in; the target must have been checked out
    /// by this transaction.
    pub fn checkin(&self, target: &InstanceTarget, new_value: Value) -> Result<()> {
        self.check_may_write()?;
        {
            let states = self.mgr.states_locked();
            let st = states.get(&self.id).ok_or(TxnError::NotActive(self.id))?;
            if !st.checked_out.contains_key(&target.to_string()) {
                return Err(TxnError::NotCheckedOut(target.to_string()));
            }
        }
        let key = target.object.clone().ok_or_else(|| {
            TxnError::Storage(colock_storage::StorageError::BadTarget(target.to_string()))
        })?;
        let before = self
            .mgr
            .store()
            .update_at_pending(&target.relation, &key, &target.steps, new_value)?;
        self.log(UndoRecord::Updated {
            relation: target.relation.clone(),
            key,
            steps: target.steps.clone(),
            before,
        });
        Ok(())
    }

    /// Releases `target` early (leaf-to-root, rule 5) and puts the
    /// transaction into its shrinking phase: further lock requests fail.
    pub fn release_early(&self, target: &InstanceTarget) -> Result<usize> {
        let released = self
            .mgr
            .engine()
            .release_target_early(self.mgr.lock_manager(), self.id, target)?;
        colock_trace::emit(|| {
            colock_trace::Event::new(colock_trace::EventKind::TxnReleaseEarly, self.id.0)
                .resource(target.to_string())
                .detail(format!("released {released} locks"))
        });
        let mut states = self.mgr.states_locked();
        if let Some(st) = states.get_mut(&self.id) {
            st.shrinking = true;
            // The cache may now claim locks that were just released; the
            // shrinking flag already blocks further requests, but clear it
            // anyway so no stale coverage can ever be consulted.
            st.cache.clear();
        }
        Ok(released)
    }

    fn log(&self, rec: UndoRecord) {
        let mut states = self.mgr.states_locked();
        if let Some(st) = states.get_mut(&self.id) {
            st.undo.push(rec);
        }
    }

    /// Forgets this handle without releasing locks or rolling back — the
    /// client side of a simulated crash. The transaction stays registered in
    /// the manager and its long locks stay held; a post-crash manager can
    /// re-adopt it from the journal via `TransactionManager::recover`.
    pub fn leak(mut self) {
        self.finished = true;
    }

    /// Commits: releases all locks, keeps all changes.
    pub fn commit(mut self) -> Result<()> {
        self.finished = true;
        self.mgr.finish(self.id, true)
    }

    /// Aborts: rolls back all changes, releases all locks.
    pub fn abort(mut self) -> Result<()> {
        self.finished = true;
        self.mgr.finish(self.id, false)
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if !self.finished {
            // Abort on drop keeps the system consistent even on panics.
            let _ = self.mgr.finish(self.id, false);
        }
    }
}
