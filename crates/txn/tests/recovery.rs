//! Crash-recovery integration tests: the journal/re-adoption path of §3.1
//! ("long locks survive system crashes") at the transaction-manager level.
//!
//! The crash model: a workstation checks subobjects out under long locks,
//! the server process dies (the `Transaction` handle is leaked, the manager
//! dropped), and a fresh manager over the *same* store replays the journal
//! medium. Every long lock acknowledged before the crash must come back
//! under its original owner — resumable, check-in-able, abortable.

use colock_core::authorization::Authorization;
use colock_core::fixtures::fig1_catalog;
use colock_core::{AccessMode, InstanceTarget, ResourcePath};
use colock_lockmgr::Journal;
use colock_nf2::value::build::{list, set, tup};
use colock_nf2::Value;
use colock_storage::Store;
use colock_testkit::{Backoff, CrashPoint, FaultPlan};
use colock_txn::{ProtocolKind, TransactionManager, TxnKind};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn populated_store() -> Arc<Store> {
    let store = Arc::new(Store::new(Arc::new(fig1_catalog())));
    for (e, t) in [("e1", "grip"), ("e2", "weld")] {
        store
            .insert("effectors", tup(vec![("eff_id", Value::str(e)), ("tool", Value::str(t))]))
            .unwrap();
    }
    store
        .insert(
            "cells",
            tup(vec![
                ("cell_id", Value::str("c1")),
                ("c_objects", set(vec![])),
                (
                    "robots",
                    list(vec![
                        tup(vec![
                            ("robot_id", Value::str("r1")),
                            ("trajectory", Value::str("t1")),
                            ("effectors", set(vec![Value::reference("effectors", "e1")])),
                        ]),
                        tup(vec![
                            ("robot_id", Value::str("r2")),
                            ("trajectory", Value::str("t2")),
                            ("effectors", set(vec![Value::reference("effectors", "e2")])),
                        ]),
                    ]),
                ),
            ]),
        )
        .unwrap();
    store
}

fn manager(store: &Arc<Store>) -> TransactionManager {
    TransactionManager::over_store(
        Arc::clone(store),
        Authorization::allow_all(),
        ProtocolKind::Proposed,
    )
}

fn journaled_manager(store: &Arc<Store>) -> (TransactionManager, Arc<Journal<ResourcePath>>) {
    let mgr = manager(store);
    let journal = Arc::new(Journal::<ResourcePath>::new());
    assert!(mgr.attach_journal(Arc::clone(&journal)));
    (mgr, journal)
}

fn trajectory(r: &str) -> InstanceTarget {
    InstanceTarget::object("cells", "c1").elem("robots", r).attr("trajectory")
}

#[test]
fn recovered_owner_is_resumable_and_its_locks_survive() {
    let store = populated_store();
    let (mgr, journal) = journaled_manager(&store);
    let t = mgr.begin(TxnKind::Long);
    let id = t.id();
    t.checkout(&trajectory("r1"), AccessMode::Update).unwrap();
    t.leak(); // crash: no release, no rollback
    let medium = journal.contents();
    drop(mgr);

    // Fresh server over the same store, its own (empty) journal.
    let (mgr2, journal2) = journaled_manager(&store);
    let report = mgr2.recover(&medium).unwrap();
    assert_eq!(report.owners, vec![id]);
    assert!(report.locks >= 1, "checkout journals at least the target lock");
    assert_eq!(report.dropped_tail, 0);

    // The recovered X lock still excludes others.
    let probe = mgr2.begin(TxnKind::Short);
    assert_ne!(probe.id(), id, "recovery must bump the id generator");
    assert!(probe.try_lock(&trajectory("r1"), AccessMode::Update).is_err());
    probe.abort().unwrap();

    // Recovery re-journals into the new medium: a second crash would
    // restore the same set.
    let again = Journal::<ResourcePath>::replay(&journal2.contents()).unwrap();
    assert_eq!(again.entries, Journal::<ResourcePath>::replay(&medium).unwrap().entries);

    // The owner can be resumed and finished like a live transaction.
    mgr2.resume(id).unwrap().abort().unwrap();
    let probe2 = mgr2.begin(TxnKind::Short);
    probe2.try_lock(&trajectory("r1"), AccessMode::Update).unwrap();
    probe2.commit().unwrap();
}

#[test]
fn recovered_owner_can_check_in() {
    let store = populated_store();
    let (mgr, journal) = journaled_manager(&store);
    let t = mgr.begin(TxnKind::Long);
    let id = t.id();
    t.checkout(&trajectory("r2"), AccessMode::Update).unwrap();
    t.leak();
    let medium = journal.contents();
    drop(mgr);

    let (mgr2, _j2) = journaled_manager(&store);
    mgr2.recover(&medium).unwrap();
    let resumed = mgr2.resume(id).unwrap();
    // The check-out registry died with the old manager, so the post-crash
    // write path is a plain update under the still-held X lock.
    resumed.update(&trajectory("r2"), Value::str("t2-edited")).unwrap();
    resumed.commit().unwrap();
    assert_eq!(
        mgr2.begin(TxnKind::Short).read(&trajectory("r2")).unwrap(),
        Value::str("t2-edited")
    );
}

/// The bug the snapshot path hides: re-installing locks without re-adopting
/// their owners leaves ghost holders nobody can release.
#[test]
fn install_recovered_without_readoption_leaks_the_lock() {
    let store = populated_store();
    let (mgr, journal) = journaled_manager(&store);
    // Burn ids so the ghost's id cannot collide with fresh probes below.
    mgr.begin(TxnKind::Short).commit().unwrap();
    mgr.begin(TxnKind::Short).commit().unwrap();
    let t = mgr.begin(TxnKind::Long);
    let id = t.id();
    t.checkout(&trajectory("r1"), AccessMode::Update).unwrap();
    t.leak();
    let medium = journal.contents();
    drop(mgr);

    let mgr2 = manager(&store);
    // Old-style recovery: locks only, no transaction state.
    let replayed = Journal::<ResourcePath>::replay(&medium).unwrap();
    for (resource, owner, mode) in &replayed.entries {
        mgr2.lock_manager().install_recovered(*owner, resource.clone(), *mode);
    }
    // The lock is held by a ghost: it blocks everyone...
    let probe = mgr2.begin(TxnKind::Short);
    assert!(probe.try_lock(&trajectory("r1"), AccessMode::Update).is_err());
    probe.abort().unwrap();
    // ...and the ghost cannot be finished, so nothing can ever release it.
    assert!(mgr2.resume(id).is_err(), "no txn state: the owner is unknown to the manager");

    // `recover` is the fix: it re-adopts the owner on top of the same locks.
    mgr2.recover(&medium).unwrap();
    mgr2.resume(id).unwrap().abort().unwrap();
    let probe2 = mgr2.begin(TxnKind::Short);
    probe2.try_lock(&trajectory("r1"), AccessMode::Update).unwrap();
    probe2.commit().unwrap();
}

#[test]
fn unacknowledged_grant_is_never_recovered() {
    for point in CrashPoint::ALL {
        let store = populated_store();
        let (mgr, journal) = journaled_manager(&store);

        // First checkout completes and is durable.
        let t1 = mgr.begin(TxnKind::Long);
        let id1 = t1.id();
        t1.checkout(&trajectory("r1"), AccessMode::Update).unwrap();

        // Second checkout crashes on its first journal append after arming.
        journal.arm(FaultPlan::crash_at(point, 1));
        let t2 = mgr.begin(TxnKind::Long);
        let id2 = t2.id();
        let err = t2.checkout(&trajectory("r2"), AccessMode::Update).unwrap_err();
        assert!(err.is_crashed(), "{point}: expected crashed journal, got {err}");
        assert!(mgr.journal_crashed());
        t1.leak();
        t2.leak();
        let medium = journal.contents();
        drop(mgr);

        let (mgr2, _j2) = journaled_manager(&store);
        let report = mgr2.recover(&medium).unwrap();
        assert!(report.dropped_tail <= 1, "{point}");
        match point {
            // The record hit the medium before the crash: that one grant is
            // durable even though the ack was lost, so the owner comes back
            // with its partial (intent-only) lock set — never half-present,
            // and releasable below like any other owner.
            CrashPoint::AfterAppend => assert_eq!(report.owners, vec![id1, id2], "{point}"),
            // Nothing (or a torn half-record) reached the medium: the
            // unacknowledged grant must not resurrect t2.
            CrashPoint::BeforeAppend | CrashPoint::MidRecord => {
                assert_eq!(report.owners, vec![id1], "{point}");
            }
        }
        // t2 crashed before its X lock on the target subtree was journaled,
        // so the target itself is free in every case.
        let probe = mgr2.begin(TxnKind::Short);
        probe.try_lock(&trajectory("r2"), AccessMode::Update).unwrap();
        probe.commit().unwrap();
        for owner in report.owners {
            mgr2.resume(owner).unwrap().abort().unwrap();
        }
        let sweep = mgr2.begin(TxnKind::Short);
        sweep.try_lock(&trajectory("r1"), AccessMode::Update).unwrap();
        sweep.commit().unwrap();
    }
}

#[test]
fn clean_finish_leaves_nothing_to_recover() {
    let store = populated_store();
    let (mgr, journal) = journaled_manager(&store);
    let t = mgr.begin(TxnKind::Long);
    t.checkout(&trajectory("r1"), AccessMode::Update).unwrap();
    t.commit().unwrap();
    let recovered = Journal::<ResourcePath>::replay(&journal.contents()).unwrap();
    assert!(recovered.entries.is_empty(), "grants and releases must cancel out");
    assert_eq!(recovered.dropped_tail, 0);
}

#[test]
fn contenders_converge_with_seeded_backoff() {
    let store = populated_store();
    let mgr = manager(&store);
    thread::scope(|s| {
        for w in 0..4u64 {
            let mgr = &mgr;
            s.spawn(move || {
                let mut backoff = Backoff::new(0xC0FFEE ^ w, 1, 64);
                loop {
                    let t = mgr.begin(TxnKind::Short);
                    match t.try_lock(&trajectory("r1"), AccessMode::Update) {
                        Ok(_) => {
                            thread::sleep(Duration::from_micros(20));
                            t.commit().unwrap();
                            return backoff.attempts();
                        }
                        Err(e) if e.is_would_block() || e.is_deadlock() => {
                            t.abort().unwrap();
                            thread::sleep(Duration::from_micros(backoff.next_delay()));
                        }
                        Err(e) => panic!("unexpected error under contention: {e}"),
                    }
                }
            });
        }
    });
    // Everyone finished (scope joined) and the table is clean.
    let probe = mgr.begin(TxnKind::Short);
    probe.try_lock(&trajectory("r1"), AccessMode::Update).unwrap();
    probe.commit().unwrap();
}
