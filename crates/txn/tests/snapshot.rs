//! Multiversion-overlay semantics: snapshot readers see a stable committed
//! state, never block behind long X check-outs, never acquire locks, and
//! version GC respects the low watermark.

use colock_core::authorization::Authorization;
use colock_core::fixtures::fig1_catalog;
use colock_core::{AccessMode, InstanceTarget};
use colock_nf2::value::build::{list, set, tup};
use colock_nf2::{ObjectKey, Value};
use colock_storage::Store;
use colock_txn::{ProtocolKind, TransactionManager, TxnError, TxnKind};
use std::sync::Arc;

fn populated_store() -> Arc<Store> {
    let store = Arc::new(Store::new(Arc::new(fig1_catalog())));
    for (e, t) in [("e1", "grip"), ("e2", "weld")] {
        store
            .insert("effectors", tup(vec![("eff_id", Value::str(e)), ("tool", Value::str(t))]))
            .unwrap();
    }
    store
        .insert(
            "cells",
            tup(vec![
                ("cell_id", Value::str("c1")),
                ("c_objects", set(vec![])),
                (
                    "robots",
                    list(vec![
                        tup(vec![
                            ("robot_id", Value::str("r1")),
                            ("trajectory", Value::str("t1")),
                            ("effectors", set(vec![Value::reference("effectors", "e1")])),
                        ]),
                        tup(vec![
                            ("robot_id", Value::str("r2")),
                            ("trajectory", Value::str("t2")),
                            ("effectors", set(vec![Value::reference("effectors", "e2")])),
                        ]),
                    ]),
                ),
            ]),
        )
        .unwrap();
    store
}

fn manager() -> TransactionManager {
    TransactionManager::over_store(populated_store(), Authorization::allow_all(), ProtocolKind::Proposed)
}

fn trajectory(r: &str) -> InstanceTarget {
    InstanceTarget::object("cells", "c1").elem("robots", r).attr("trajectory")
}

#[test]
fn snapshot_reader_sees_state_as_of_begin() {
    let mgr = manager();
    let reader = mgr.begin_readonly();
    assert!(reader.snapshot_ts().is_some());
    // A writer commits after the reader began.
    let w = mgr.begin(TxnKind::Short);
    w.update(&trajectory("r1"), Value::str("t1-new")).unwrap();
    w.commit().unwrap();
    // Repeatable read: old value, before and after the writer's commit.
    assert_eq!(reader.snapshot_read(&trajectory("r1")).unwrap(), Value::str("t1"));
    assert_eq!(reader.read(&trajectory("r1")).unwrap(), Value::str("t1"));
    reader.commit().unwrap();
    // A reader begun after the commit sees the new value.
    let later = mgr.begin_readonly();
    assert_eq!(later.snapshot_read(&trajectory("r1")).unwrap(), Value::str("t1-new"));
    later.commit().unwrap();
}

#[test]
fn uncommitted_writes_are_invisible_to_snapshots() {
    let mgr = manager();
    let w = mgr.begin(TxnKind::Short);
    w.update(&trajectory("r1"), Value::str("dirty")).unwrap();
    // A reader begun while the write is in flight never sees it...
    let reader = mgr.begin_readonly();
    assert_eq!(reader.snapshot_read(&trajectory("r1")).unwrap(), Value::str("t1"));
    w.abort().unwrap();
    // ...and certainly not after the abort.
    assert_eq!(reader.snapshot_read(&trajectory("r1")).unwrap(), Value::str("t1"));
    reader.commit().unwrap();
}

#[test]
fn snapshot_reader_never_blocks_behind_long_x_checkout() {
    let mgr = manager();
    let designer = mgr.begin(TxnKind::Long);
    designer.checkout(&InstanceTarget::object("cells", "c1"), AccessMode::Update).unwrap();
    // The whole cell is under a long X lock; a locking reader would wait for
    // the entire workstation session. The snapshot reader returns instantly.
    let reader = mgr.begin_readonly();
    assert_eq!(reader.try_snapshot_read(&trajectory("r1")).unwrap(), Value::str("t1"));
    assert_eq!(reader.snapshot_read(&trajectory("r2")).unwrap(), Value::str("t2"));
    reader.commit().unwrap();
    // The ablation baseline does block.
    mgr.set_mvcc(false);
    let blocked = mgr.begin_readonly();
    assert!(blocked.snapshot_ts().is_none());
    let err = blocked.try_snapshot_read(&trajectory("r1")).unwrap_err();
    assert!(err.is_would_block(), "{err}");
    blocked.abort().unwrap();
    designer.abort().unwrap();
}

#[test]
fn snapshot_reads_acquire_zero_locks_and_are_counted() {
    let mgr = manager();
    let before = mgr.lock_manager().stats().snapshot();
    let reader = mgr.begin_readonly();
    reader.snapshot_read(&trajectory("r1")).unwrap();
    reader.snapshot_read(&trajectory("r2")).unwrap();
    reader.commit().unwrap();
    let after = mgr.lock_manager().stats().snapshot().since(&before);
    assert_eq!(after.requests, 0, "snapshot reads must not touch the lock table");
    assert_eq!(after.reads_elided, 2);
}

#[test]
fn writes_and_locks_on_snapshot_txn_are_typed_errors() {
    let mgr = manager();
    let reader = mgr.begin_readonly();
    let id = reader.id();
    for err in [
        reader.update(&trajectory("r1"), Value::str("x")).unwrap_err(),
        reader.insert("effectors", tup(vec![])).unwrap_err(),
        reader.delete("effectors", &ObjectKey::from("e1")).unwrap_err(),
        reader.checkout(&InstanceTarget::object("cells", "c1"), AccessMode::Update).unwrap_err(),
        reader.lock(&trajectory("r1"), AccessMode::Read).unwrap_err(),
        reader.try_lock(&trajectory("r1"), AccessMode::Read).unwrap_err(),
    ] {
        assert_eq!(err, TxnError::ReadOnlyTxn(id), "{err}");
    }
    reader.commit().unwrap();
    // The non-MVCC fallback reader may lock (it has to), but still not write.
    mgr.set_mvcc(false);
    let fallback = mgr.begin_readonly();
    assert!(fallback.lock(&trajectory("r1"), AccessMode::Read).is_ok());
    assert!(matches!(
        fallback.update(&trajectory("r1"), Value::str("x")),
        Err(TxnError::ReadOnlyTxn(_))
    ));
    fallback.commit().unwrap();
}

#[test]
fn gc_respects_active_snapshot_watermark() {
    let mgr = manager();
    mgr.set_gc_every(0); // manual GC only
    let reader = mgr.begin_readonly();
    let pinned = reader.snapshot_ts().unwrap();
    for i in 0..8 {
        let w = mgr.begin(TxnKind::Short);
        w.update(&trajectory("r1"), Value::str(format!("v{i}"))).unwrap();
        w.commit().unwrap();
    }
    assert_eq!(mgr.low_watermark(), pinned);
    mgr.gc_versions();
    // The pinned snapshot still reads its version after pruning.
    assert_eq!(reader.snapshot_read(&trajectory("r1")).unwrap(), Value::str("t1"));
    reader.commit().unwrap();
    // With no reader active the watermark jumps to stable and the chains
    // collapse to the newest entries.
    let entries_before = mgr.store().version_entries("cells").unwrap();
    let pruned = mgr.gc_versions();
    assert!(pruned > 0, "had {entries_before} entries");
    let last = mgr.begin_readonly();
    assert_eq!(last.snapshot_read(&trajectory("r1")).unwrap(), Value::str("v7"));
    last.commit().unwrap();
}

#[test]
fn automatic_gc_bounds_chain_growth() {
    let mgr = manager();
    mgr.set_gc_every(4);
    for i in 0..32 {
        let w = mgr.begin(TxnKind::Short);
        w.update(&trajectory("r2"), Value::str(format!("v{i}"))).unwrap();
        w.commit().unwrap();
    }
    // 32 versions were installed but the cadence GC kept the chain short.
    assert!(mgr.store().versions_pruned() > 0);
    assert!(mgr.store().version_entries("cells").unwrap() <= 4);
}

#[test]
fn multi_object_commit_is_atomic_to_readers() {
    let mgr = manager();
    let w = mgr.begin(TxnKind::Short);
    w.update(&trajectory("r1"), Value::str("both")).unwrap();
    w.update(&trajectory("r2"), Value::str("both")).unwrap();
    w.commit().unwrap();
    let reader = mgr.begin_readonly();
    let a = reader.snapshot_read(&trajectory("r1")).unwrap();
    let b = reader.snapshot_read(&trajectory("r2")).unwrap();
    assert_eq!(a, b, "a snapshot must see all of a commit or none of it");
    reader.commit().unwrap();
}

#[test]
fn snapshot_sees_committed_inserts_and_deletes_consistently() {
    let mgr = manager();
    let w = mgr.begin(TxnKind::Short);
    let key = w
        .insert("effectors", tup(vec![("eff_id", Value::str("e9")), ("tool", Value::str("saw"))]))
        .unwrap();
    // Invisible to snapshots while pending.
    let during = mgr.begin_readonly();
    assert!(during
        .snapshot_read(&InstanceTarget::object("effectors", key.clone()))
        .is_err());
    during.commit().unwrap();
    w.commit().unwrap();
    // Visible after commit; a pre-delete snapshot survives the delete.
    let pre_delete = mgr.begin_readonly();
    assert!(pre_delete.snapshot_read(&InstanceTarget::object("effectors", key.clone())).is_ok());
    let d = mgr.begin(TxnKind::Short);
    d.delete("effectors", &key).unwrap();
    d.commit().unwrap();
    assert!(pre_delete.snapshot_read(&InstanceTarget::object("effectors", key.clone())).is_ok());
    pre_delete.commit().unwrap();
    let post_delete = mgr.begin_readonly();
    assert!(post_delete.snapshot_read(&InstanceTarget::object("effectors", key)).is_err());
    post_delete.commit().unwrap();
}
