//! Integration tests for the transaction layer: 2PL, rollback, deadlock
//! victims, degree-3 consistency, check-out/check-in with long locks.

use colock_core::authorization::{Authorization, Right};
use colock_core::fixtures::fig1_catalog;
use colock_core::{AccessMode, InstanceTarget};
use colock_lockmgr::LongLockImage;
use colock_nf2::value::build::{list, set, tup};
use colock_nf2::{ObjectKey, Value};
use colock_storage::Store;
use colock_txn::{ProtocolKind, TransactionManager, TxnKind};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn populated_store() -> Arc<Store> {
    let store = Arc::new(Store::new(Arc::new(fig1_catalog())));
    for (e, t) in [("e1", "grip"), ("e2", "weld"), ("e3", "drill")] {
        store
            .insert("effectors", tup(vec![("eff_id", Value::str(e)), ("tool", Value::str(t))]))
            .unwrap();
    }
    store
        .insert(
            "cells",
            tup(vec![
                ("cell_id", Value::str("c1")),
                (
                    "c_objects",
                    set(vec![tup(vec![
                        ("obj_id", Value::str("o1")),
                        ("obj_name", Value::str("part")),
                    ])]),
                ),
                (
                    "robots",
                    list(vec![
                        tup(vec![
                            ("robot_id", Value::str("r1")),
                            ("trajectory", Value::str("t1")),
                            (
                                "effectors",
                                set(vec![
                                    Value::reference("effectors", "e1"),
                                    Value::reference("effectors", "e2"),
                                ]),
                            ),
                        ]),
                        tup(vec![
                            ("robot_id", Value::str("r2")),
                            ("trajectory", Value::str("t2")),
                            (
                                "effectors",
                                set(vec![
                                    Value::reference("effectors", "e2"),
                                    Value::reference("effectors", "e3"),
                                ]),
                            ),
                        ]),
                    ]),
                ),
            ]),
        )
        .unwrap();
    store
}

fn manager(protocol: ProtocolKind) -> TransactionManager {
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    TransactionManager::over_store(populated_store(), authz, protocol)
}

fn robot(r: &str) -> InstanceTarget {
    InstanceTarget::object("cells", "c1").elem("robots", r)
}

fn trajectory(r: &str) -> InstanceTarget {
    robot(r).attr("trajectory")
}

#[test]
fn read_own_update() {
    let mgr = manager(ProtocolKind::Proposed);
    let t = mgr.begin(TxnKind::Short);
    t.update(&trajectory("r1"), Value::str("t-new")).unwrap();
    assert_eq!(t.read(&trajectory("r1")).unwrap(), Value::str("t-new"));
    t.commit().unwrap();
    // Visible after commit.
    let t2 = mgr.begin(TxnKind::Short);
    assert_eq!(t2.read(&trajectory("r1")).unwrap(), Value::str("t-new"));
    t2.commit().unwrap();
}

#[test]
fn abort_rolls_back_updates() {
    let mgr = manager(ProtocolKind::Proposed);
    let t = mgr.begin(TxnKind::Short);
    t.update(&trajectory("r1"), Value::str("garbage")).unwrap();
    t.abort().unwrap();
    let t2 = mgr.begin(TxnKind::Short);
    assert_eq!(t2.read(&trajectory("r1")).unwrap(), Value::str("t1"));
    t2.commit().unwrap();
}

#[test]
fn abort_rolls_back_insert_and_delete() {
    let mgr = manager(ProtocolKind::Proposed);
    let t = mgr.begin(TxnKind::Short);
    t.insert(
        "effectors",
        tup(vec![("eff_id", Value::str("e4")), ("tool", Value::str("saw"))]),
    )
    .unwrap_err(); // no update right on effectors
    t.abort().unwrap();

    // With rights: insert + delete round-trip under abort.
    let mut authz = Authorization::allow_all();
    let mgr = TransactionManager::over_store(populated_store(), authz.clone(), ProtocolKind::Proposed);
    let t = mgr.begin(TxnKind::Short);
    let key = t
        .insert(
            "effectors",
            tup(vec![("eff_id", Value::str("e4")), ("tool", Value::str("saw"))]),
        )
        .unwrap();
    assert!(mgr.store().contains("effectors", &key));
    t.abort().unwrap();
    assert!(!mgr.store().contains("effectors", &key));

    authz.set_relation_default("cells", Right::Update);
}

#[test]
fn delete_then_abort_restores() {
    let mgr = TransactionManager::over_store(
        populated_store(),
        Authorization::allow_all(),
        ProtocolKind::Proposed,
    );
    // e1 is referenced; deleting it must fail with integrity error.
    let t = mgr.begin(TxnKind::Short);
    let err = t.delete("effectors", &ObjectKey::from("e1")).unwrap_err();
    assert!(matches!(err, colock_txn::TxnError::Storage(_)), "{err:?}");
    t.abort().unwrap();
    // Insert an unreferenced one, commit; delete in a second txn, abort.
    let t = mgr.begin(TxnKind::Short);
    t.insert("effectors", tup(vec![("eff_id", Value::str("e9")), ("tool", Value::str("x"))]))
        .unwrap();
    t.commit().unwrap();
    let t = mgr.begin(TxnKind::Short);
    t.delete("effectors", &ObjectKey::from("e9")).unwrap();
    assert!(!mgr.store().contains("effectors", &ObjectKey::from("e9")));
    t.abort().unwrap();
    assert!(mgr.store().contains("effectors", &ObjectKey::from("e9")));
}

#[test]
fn two_updaters_of_different_robots_run_concurrently() {
    // The paper's headline concurrency: Q2 ∥ Q3 on the same cell.
    let mgr = manager(ProtocolKind::Proposed);
    let t2 = mgr.begin(TxnKind::Short);
    let t3 = mgr.begin(TxnKind::Short);
    t2.update(&trajectory("r1"), Value::str("t1'")).unwrap();
    t3.update(&trajectory("r2"), Value::str("t2'")).unwrap();
    t2.commit().unwrap();
    t3.commit().unwrap();
}

#[test]
fn whole_object_protocol_serializes_them() {
    let mgr = manager(ProtocolKind::WholeObject);
    let t2 = mgr.begin(TxnKind::Short);
    let t3 = mgr.begin(TxnKind::Short);
    t2.update(&trajectory("r1"), Value::str("t1'")).unwrap();
    let r = t3.try_lock(&robot("r2"), AccessMode::Update);
    assert!(r.is_err(), "whole-object must serialize");
    t2.commit().unwrap();
    t3.abort().unwrap();
}

#[test]
fn degree3_repeated_reads_are_stable() {
    let mgr = Arc::new(manager(ProtocolKind::Proposed));
    let reader = mgr.begin(TxnKind::Short);
    let v1 = reader.read(&trajectory("r1")).unwrap();

    // A concurrent writer cannot slip an update between the two reads: its
    // X request blocks until the reader commits.
    let mgr2 = Arc::clone(&mgr);
    let writer = thread::spawn(move || {
        let w = mgr2.begin(TxnKind::Short);
        w.update(&trajectory("r1"), Value::str("t1-writer")).unwrap();
        w.commit().unwrap();
    });
    thread::sleep(Duration::from_millis(50));
    let v2 = reader.read(&trajectory("r1")).unwrap();
    assert_eq!(v1, v2, "degree-3: repeated reads identical");
    reader.commit().unwrap();
    writer.join().unwrap();
    let check = mgr.begin(TxnKind::Short);
    assert_eq!(check.read(&trajectory("r1")).unwrap(), Value::str("t1-writer"));
    check.commit().unwrap();
}

#[test]
fn deadlock_victim_gets_error_and_can_abort() {
    let mgr = Arc::new(manager(ProtocolKind::Proposed));
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let m1 = Arc::clone(&mgr);
    let b1 = Arc::clone(&barrier);
    let h1 = thread::spawn(move || {
        let t = m1.begin(TxnKind::Short);
        t.update(&trajectory("r1"), Value::str("a")).unwrap();
        b1.wait();
        let r = t.update(&trajectory("r2"), Value::str("b"));
        let deadlocked = matches!(&r, Err(e) if e.is_deadlock());
        if r.is_ok() {
            t.commit().unwrap();
        } else {
            t.abort().unwrap();
        }
        deadlocked
    });
    let m2 = Arc::clone(&mgr);
    let b2 = Arc::clone(&barrier);
    let h2 = thread::spawn(move || {
        let t = m2.begin(TxnKind::Short);
        t.update(&trajectory("r2"), Value::str("c")).unwrap();
        b2.wait();
        let r = t.update(&trajectory("r1"), Value::str("d"));
        let deadlocked = matches!(&r, Err(e) if e.is_deadlock());
        if r.is_ok() {
            t.commit().unwrap();
        } else {
            t.abort().unwrap();
        }
        deadlocked
    });
    let d1 = h1.join().unwrap();
    let d2 = h2.join().unwrap();
    assert!(d1 ^ d2, "exactly one of the two must be the victim (d1={d1}, d2={d2})");
    assert_eq!(mgr.lock_manager().stats().snapshot().deadlocks, 1);
}

#[test]
fn release_early_enters_shrinking_phase() {
    let mgr = manager(ProtocolKind::Proposed);
    let t = mgr.begin(TxnKind::Short);
    t.lock(&robot("r1"), AccessMode::Read).unwrap();
    t.release_early(&robot("r1")).unwrap();
    let err = t.lock(&robot("r2"), AccessMode::Read).unwrap_err();
    assert!(matches!(err, colock_txn::TxnError::TwoPhaseViolation(_)));
    t.commit().unwrap();
}

#[test]
fn checkout_takes_long_locks_that_survive_crash() {
    let mgr = manager(ProtocolKind::Proposed);
    let t = mgr.begin(TxnKind::Long);
    let copy = t.checkout(&robot("r1"), AccessMode::Update).unwrap();
    assert_eq!(copy.field("robot_id"), Some(&Value::str("r1")));

    // Snapshot long locks, simulate crash, restore into a fresh table.
    let image = LongLockImage::capture(mgr.lock_manager());
    assert!(!image.is_empty(), "check-out must have produced long locks");
    let fresh = colock_lockmgr::LockManager::new();
    image.restore(&fresh);
    // The robot's X lock survived.
    let resource = mgr.engine().resource_for(&robot("r1")).unwrap();
    assert_eq!(fresh.held_mode(t.id(), &resource), colock_lockmgr::LockMode::X);
    t.commit().unwrap();
}

#[test]
fn checkin_requires_checkout() {
    let mgr = manager(ProtocolKind::Proposed);
    let t = mgr.begin(TxnKind::Long);
    let err = t.checkin(&trajectory("r1"), Value::str("x")).unwrap_err();
    assert!(matches!(err, colock_txn::TxnError::NotCheckedOut(_)));
    // Proper flow: checkout, modify, checkin, commit.
    let _copy = t.checkout(&trajectory("r1"), AccessMode::Update).unwrap();
    t.checkin(&trajectory("r1"), Value::str("t1-station")).unwrap();
    t.commit().unwrap();
    let check = mgr.begin(TxnKind::Short);
    assert_eq!(check.read(&trajectory("r1")).unwrap(), Value::str("t1-station"));
    check.commit().unwrap();
}

#[test]
fn drop_without_commit_aborts() {
    let mgr = manager(ProtocolKind::Proposed);
    {
        let t = mgr.begin(TxnKind::Short);
        t.update(&trajectory("r1"), Value::str("leaked")).unwrap();
        // dropped here
    }
    assert_eq!(mgr.active_count(), 0);
    let t = mgr.begin(TxnKind::Short);
    assert_eq!(t.read(&trajectory("r1")).unwrap(), Value::str("t1"), "drop must roll back");
    t.commit().unwrap();
}

#[test]
fn tuple_level_and_naive_protocols_also_work_end_to_end() {
    for kind in [ProtocolKind::TupleLevel, ProtocolKind::NaiveDag, ProtocolKind::ProposedRule4] {
        let mgr = manager(kind);
        let t = mgr.begin(TxnKind::Short);
        t.update(&trajectory("r1"), Value::str("t1-x")).unwrap();
        t.commit().unwrap();
        let t = mgr.begin(TxnKind::Short);
        assert_eq!(t.read(&trajectory("r1")).unwrap(), Value::str("t1-x"), "{kind:?}");
        t.commit().unwrap();
    }
}

// ---- semantic element operations ------------------------------------------

fn robots_container() -> InstanceTarget {
    InstanceTarget::object("cells", "c1").attr("robots")
}

fn new_robot(id: &str) -> Value {
    tup(vec![
        ("robot_id", Value::str(id)),
        ("trajectory", Value::str("t-new")),
        ("effectors", set(vec![])),
    ])
}

fn robot_ids(container: &Value) -> Vec<String> {
    container
        .elements()
        .unwrap()
        .iter()
        .map(|r| match r.field("robot_id") {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("robot without id: {other:?}"),
        })
        .collect()
}

#[test]
fn concurrent_element_inserters_commute_under_semantic_modes() {
    let mgr = manager(ProtocolKind::Proposed);
    let t1 = mgr.begin(TxnKind::Short);
    let t2 = mgr.begin(TxnKind::Short);
    // Try-policy: any lock conflict surfaces as WouldBlock instead of
    // wedging the single test thread.
    t2.set_wait_policy(colock_lockmgr::WaitPolicy::Try);
    t1.insert_element(&robots_container(), new_robot("r3")).unwrap();
    // t1 still holds Insert on the container and X on its new element; a
    // second inserter of a *different* element gets in without waiting.
    t2.insert_element(&robots_container(), new_robot("r4")).unwrap();
    t1.commit().unwrap();
    t2.commit().unwrap();
    let t = mgr.begin(TxnKind::Short);
    assert_eq!(robot_ids(&t.read(&robots_container()).unwrap()), ["r1", "r2", "r3", "r4"]);
    t.commit().unwrap();
}

#[test]
fn semantic_ablation_serializes_element_inserters() {
    let mgr = manager(ProtocolKind::Proposed);
    mgr.set_semantic(false);
    let t1 = mgr.begin(TxnKind::Short);
    let t2 = mgr.begin(TxnKind::Short);
    t2.set_wait_policy(colock_lockmgr::WaitPolicy::Try);
    t1.insert_element(&robots_container(), new_robot("r3")).unwrap();
    // Classical fallback X-locks the whole container: the second inserter
    // conflicts even though the elements are distinct.
    let err = t2.insert_element(&robots_container(), new_robot("r4")).unwrap_err();
    assert!(err.is_would_block(), "{err}");
    t1.commit().unwrap();
    t2.abort().unwrap();
}

#[test]
fn concurrent_element_delete_and_insert_compose_at_commit() {
    let mgr = manager(ProtocolKind::Proposed);
    let t1 = mgr.begin(TxnKind::Short);
    let t2 = mgr.begin(TxnKind::Short);
    t2.set_wait_policy(colock_lockmgr::WaitPolicy::Try);
    t1.delete_element(&robot("r1")).unwrap();
    t2.insert_element(&robots_container(), new_robot("r3")).unwrap();
    t1.commit().unwrap();
    t2.commit().unwrap();
    let t = mgr.begin(TxnKind::Short);
    assert_eq!(robot_ids(&t.read(&robots_container()).unwrap()), ["r2", "r3"]);
    t.commit().unwrap();
}

#[test]
fn concurrent_deleters_do_not_lose_each_others_splice() {
    // Regression: delete_element used to read the whole container, splice in
    // memory, and write the container back under only an element X lock —
    // two deleters of distinct robots could silently resurrect each other's
    // victim. The splice now happens element-granular under the store latch.
    let mgr = manager(ProtocolKind::Proposed);
    let t1 = mgr.begin(TxnKind::Short);
    let t2 = mgr.begin(TxnKind::Short);
    t2.set_wait_policy(colock_lockmgr::WaitPolicy::Try);
    t1.delete_element(&robot("r1")).unwrap();
    t2.delete_element(&robot("r2")).unwrap();
    t1.commit().unwrap();
    t2.commit().unwrap();
    let t = mgr.begin(TxnKind::Short);
    assert!(robot_ids(&t.read(&robots_container()).unwrap()).is_empty());
    t.commit().unwrap();
}

#[test]
fn member_probe_runs_beside_an_uncommitted_inserter() {
    let mgr = manager(ProtocolKind::Proposed);
    let t1 = mgr.begin(TxnKind::Short);
    t1.insert_element(&robots_container(), new_robot("r3")).unwrap();
    let t2 = mgr.begin(TxnKind::Short);
    t2.set_wait_policy(colock_lockmgr::WaitPolicy::Try);
    // Member on the container is compatible with t1's Insert; the probe of
    // an untouched element proceeds.
    let r1 = t2.member_element(&robot("r1")).unwrap();
    assert_eq!(r1.field("robot_id"), Some(&Value::str("r1")));
    // Probing the not-yet-committed element hits its X lock.
    let err = t2.member_element(&robot("r3")).unwrap_err();
    assert!(err.is_would_block(), "{err}");
    t1.abort().unwrap();
    t2.commit().unwrap();
}

#[test]
fn abort_rolls_back_element_insert_and_delete() {
    let mgr = manager(ProtocolKind::Proposed);
    let t = mgr.begin(TxnKind::Short);
    t.insert_element(&robots_container(), new_robot("r3")).unwrap();
    t.delete_element(&robot("r1")).unwrap();
    assert_eq!(robot_ids(&t.read(&robots_container()).unwrap()), ["r2", "r3"]);
    t.abort().unwrap();
    let t2 = mgr.begin(TxnKind::Short);
    assert_eq!(robot_ids(&t2.read(&robots_container()).unwrap()), ["r1", "r2"]);
    t2.commit().unwrap();
}

#[test]
fn snapshot_reader_never_sees_a_half_committed_element_storm() {
    let mgr = manager(ProtocolKind::Proposed);
    let reader = mgr.begin_readonly();
    let t = mgr.begin(TxnKind::Short);
    t.insert_element(&robots_container(), new_robot("r3")).unwrap();
    // Pinned before the writer committed: still the original two robots.
    assert_eq!(robot_ids(&reader.snapshot_read(&robots_container()).unwrap()), ["r1", "r2"]);
    t.commit().unwrap();
    assert_eq!(robot_ids(&reader.snapshot_read(&robots_container()).unwrap()), ["r1", "r2"]);
    reader.commit().unwrap();
    let after = mgr.begin_readonly();
    assert_eq!(
        robot_ids(&after.snapshot_read(&robots_container()).unwrap()),
        ["r1", "r2", "r3"]
    );
    after.commit().unwrap();
}
