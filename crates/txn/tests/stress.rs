//! Concurrency stress and corner cases at the transaction layer.

use colock_core::authorization::{Authorization, Right};
use colock_core::fixtures::fig1_catalog;
use colock_core::{AccessMode, InstanceTarget};
use colock_nf2::value::build::{list, set, tup};
use colock_nf2::{ObjectKey, Value};
use colock_storage::Store;
use colock_txn::{ProtocolKind, TransactionManager, TxnKind};
use colock_testkit::{lockstep, run_threads};
use std::sync::Arc;
use std::time::Duration;

fn populated(n_cells: usize) -> Arc<Store> {
    let store = Arc::new(Store::new(Arc::new(fig1_catalog())));
    for e in 0..4 {
        store
            .insert(
                "effectors",
                tup(vec![
                    ("eff_id", Value::str(format!("e{e}"))),
                    ("tool", Value::str("t")),
                ]),
            )
            .unwrap();
    }
    for c in 0..n_cells {
        store
            .insert(
                "cells",
                tup(vec![
                    ("cell_id", Value::str(format!("c{c}"))),
                    ("c_objects", set(vec![])),
                    (
                        "robots",
                        list((0..4)
                            .map(|r| {
                                tup(vec![
                                    ("robot_id", Value::str(format!("r{r}"))),
                                    ("trajectory", Value::str("t0")),
                                    (
                                        "effectors",
                                        set(vec![Value::reference(
                                            "effectors",
                                            format!("e{}", (c + r) % 4),
                                        )]),
                                    ),
                                ])
                            })
                            .collect()),
                    ),
                ]),
            )
            .unwrap();
    }
    store
}

fn manager(n_cells: usize) -> Arc<TransactionManager> {
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    Arc::new(TransactionManager::over_store(populated(n_cells), authz, ProtocolKind::Proposed))
}

#[test]
fn parallel_updaters_with_retry_all_writes_land() {
    let mgr = manager(4);
    let writers = 8usize;
    let rounds = 20;
    // Barrier-stepped: all writers complete round k before any starts k+1,
    // so every round contends and the watchdog bounds a wedged queue.
    let mgr2 = Arc::clone(&mgr);
    lockstep(writers, rounds, Duration::from_secs(60), move |w, round| {
        loop {
            let txn = mgr2.begin(TxnKind::Short);
            let target = InstanceTarget::object("cells", format!("c{}", w % 4))
                .elem("robots", format!("r{}", (w / 4) % 4))
                .attr("trajectory");
            match txn.update(&target, Value::str(format!("w{w}-{round}"))) {
                Ok(()) => {
                    txn.commit().unwrap();
                    break;
                }
                Err(e) if e.is_deadlock() => {
                    txn.abort().unwrap();
                }
                Err(e) => panic!("{e}"),
            }
        }
    });
    // Final state: every touched trajectory carries a final-round value.
    for w in 0..writers {
        let v = mgr
            .store()
            .get_at(
                "cells",
                &ObjectKey::from(format!("c{}", w % 4)),
                &[colock_core::TargetStep::elem("robots", format!("r{}", (w / 4) % 4))],
            )
            .unwrap();
        let traj = v.field("trajectory").unwrap();
        let Value::Str(s) = traj else { panic!() };
        assert!(s.ends_with(&format!("-{}", rounds - 1)), "{s}");
    }
    assert_eq!(mgr.lock_manager().table_size(), 0);
}

#[test]
fn writers_and_readers_never_observe_torn_objects() {
    let mgr = manager(2);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    run_threads(4, Duration::from_secs(60), move |tid| {
        if tid == 0 {
            for round in 0..60 {
                let txn = mgr.begin(TxnKind::Short);
                let t = InstanceTarget::object("cells", "c0")
                    .elem("robots", "r0")
                    .attr("trajectory");
                if txn.update(&t, Value::str(format!("v{round}"))).is_ok() {
                    txn.commit().unwrap();
                } else {
                    txn.abort().unwrap();
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        } else {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let txn = mgr.begin(TxnKind::Short);
                let t = InstanceTarget::object("cells", "c0").elem("robots", "r0");
                match txn.read(&t) {
                    Ok(v) => {
                        // A read under S must see a complete robot tuple.
                        assert!(v.field("robot_id").is_some());
                        assert!(v.field("trajectory").is_some());
                    }
                    Err(e) if e.is_deadlock() => {}
                    Err(e) => panic!("{e}"),
                }
                let _ = txn.commit();
            }
        }
    });
}

#[test]
fn checkout_of_attribute_subtree() {
    let mgr = manager(1);
    let txn = mgr.begin(TxnKind::Long);
    // Check out the trajectory BLU only.
    let target = InstanceTarget::object("cells", "c0").elem("robots", "r1").attr("trajectory");
    let copy = txn.checkout(&target, AccessMode::Update).unwrap();
    assert_eq!(copy, Value::str("t0"));
    txn.checkin(&target, Value::str("after")).unwrap();
    txn.commit().unwrap();
    let check = mgr.begin(TxnKind::Short);
    assert_eq!(check.read(&target).unwrap(), Value::str("after"));
    check.commit().unwrap();
}

#[test]
fn multi_object_undo_restores_every_touched_object() {
    let mgr = manager(3);
    let txn = mgr.begin(TxnKind::Short);
    for c in 0..3 {
        txn.update(
            &InstanceTarget::object("cells", format!("c{c}"))
                .elem("robots", "r0")
                .attr("trajectory"),
            Value::str("doomed"),
        )
        .unwrap();
    }
    txn.abort().unwrap();
    for c in 0..3 {
        let v = mgr
            .store()
            .get_at(
                "cells",
                &ObjectKey::from(format!("c{c}")),
                &[
                    colock_core::TargetStep::elem("robots", "r0"),
                    colock_core::TargetStep::attr("trajectory"),
                ],
            )
            .unwrap();
        assert_eq!(v, Value::str("t0"), "cell c{c} must be rolled back");
    }
}

#[test]
fn naive_relaxed_protocol_end_to_end() {
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    let mgr = TransactionManager::over_store(populated(1), authz, ProtocolKind::NaiveRelaxed);
    let txn = mgr.begin(TxnKind::Short);
    txn.update(
        &InstanceTarget::object("cells", "c0").elem("robots", "r0").attr("trajectory"),
        Value::str("x"),
    )
    .unwrap();
    txn.commit().unwrap();
    // No entry-point locks were ever taken (that is the defect).
    let e0 = mgr
        .engine()
        .resource_for(&InstanceTarget::object("effectors", "e0"))
        .unwrap();
    assert!(mgr.lock_manager().holders(&e0).is_empty());
}

#[test]
fn long_and_short_transactions_interleave() {
    let mgr = manager(2);
    let long = mgr.begin(TxnKind::Long);
    long.checkout(
        &InstanceTarget::object("cells", "c0").elem("robots", "r0"),
        AccessMode::Update,
    )
    .unwrap();
    // Short transactions on the other cell proceed freely meanwhile.
    for _ in 0..5 {
        let short = mgr.begin(TxnKind::Short);
        short
            .update(
                &InstanceTarget::object("cells", "c1").elem("robots", "r0").attr("trajectory"),
                Value::str("short"),
            )
            .unwrap();
        short.commit().unwrap();
    }
    long.commit().unwrap();
    assert_eq!(mgr.lock_manager().table_size(), 0);
}
