//! Property-based tests of the lock table: under arbitrary sequences of
//! try-acquires and releases, the granted groups stay pairwise compatible
//! and the bookkeeping stays consistent.

use colock_lockmgr::{AcquireOutcome, LockError, LockManager, LockMode, LockRequestOptions, TxnId};
use colock_testkit::prop::{pick_weighted, vec_of};
use colock_testkit::{ensure, ensure_eq, forall, no_shrink, Rng};

#[derive(Debug, Clone)]
enum Cmd {
    Acquire { txn: u64, resource: u8, mode: LockMode },
    Release { txn: u64, resource: u8 },
    ReleaseAll { txn: u64 },
}

no_shrink!(Cmd);

const MODES: [LockMode; 5] =
    [LockMode::IS, LockMode::IX, LockMode::S, LockMode::SIX, LockMode::X];

fn cmd(rng: &mut Rng) -> Cmd {
    match pick_weighted(rng, &[4, 2, 1]) {
        0 => Cmd::Acquire {
            txn: rng.gen_range(1u64..5),
            resource: rng.gen_range(0u8..4),
            mode: *rng.choose(&MODES).unwrap(),
        },
        1 => Cmd::Release { txn: rng.gen_range(1u64..5), resource: rng.gen_range(0u8..4) },
        _ => Cmd::ReleaseAll { txn: rng.gen_range(1u64..5) },
    }
}

#[test]
fn granted_groups_stay_compatible() {
    forall!(cases: 256, |rng| vec_of(rng, 1..60, cmd), |cmds: &Vec<Cmd>| {
        let lm: LockManager<u8> = LockManager::new();
        for c in cmds {
            match *c {
                Cmd::Acquire { txn, resource, mode } => {
                    match lm.acquire(TxnId(txn), resource, mode, LockRequestOptions::try_lock()) {
                        Ok(AcquireOutcome::Granted { .. }) | Ok(AcquireOutcome::AlreadyHeld) => {}
                        Err(LockError::WouldBlock { .. }) => {}
                        Err(e) => ensure!(false, "unexpected error {e}"),
                    }
                }
                Cmd::Release { txn, resource } => {
                    lm.release(TxnId(txn), &resource);
                }
                Cmd::ReleaseAll { txn } => {
                    lm.release_all(TxnId(txn));
                }
            }
            // Invariant 1: every pair of holders on a resource is compatible.
            for r in 0u8..4 {
                let holders = lm.holders(&r);
                for (i, &(ta, ma)) in holders.iter().enumerate() {
                    for &(tb, mb) in holders.iter().skip(i + 1) {
                        ensure!(ta != tb, "duplicate grant entries for {ta}");
                        ensure!(ma.compatible(mb), "incompatible co-grants {ma}/{mb} on {r}");
                    }
                }
            }
            // Invariant 2: held_mode agrees with the holders list.
            for r in 0u8..4 {
                for &(t, m) in &lm.holders(&r) {
                    ensure_eq!(lm.held_mode(t, &r), m);
                }
            }
        }
        // Invariant 3: releasing everything empties the table.
        for t in 1u64..5 {
            lm.release_all(TxnId(t));
        }
        ensure_eq!(lm.table_size(), 0);
        ensure_eq!(lm.grant_count(), 0);
        Ok(())
    });
}

#[test]
fn held_mode_only_grows_within_txn() {
    forall!(
        cases: 256,
        |rng| vec_of(rng, 1..10, |rng| rng.gen_range(0..MODES.len())),
        |idxs: &Vec<usize>| {
            // A single transaction repeatedly locking one resource: its held
            // mode is the running join of all requested modes.
            let lm: LockManager<u8> = LockManager::new();
            let t = TxnId(1);
            let mut expected = LockMode::NL;
            for &i in idxs {
                let m = MODES[i];
                lm.acquire(t, 0, m, LockRequestOptions::default())
                    .map_err(|e| format!("acquire failed: {e}"))?;
                expected = expected.join(m);
                ensure_eq!(lm.held_mode(t, &0), expected);
            }
            Ok(())
        }
    );
}

#[test]
fn stats_requests_match_command_count() {
    forall!(cases: 64, |rng| rng.gen_range(1usize..30), |&n| {
        let lm: LockManager<u8> = LockManager::new();
        for i in 0..n {
            let _ = lm.acquire(
                TxnId(1),
                (i % 4) as u8,
                LockMode::IS,
                LockRequestOptions::try_lock(),
            );
        }
        ensure_eq!(lm.stats().snapshot().requests, n as u64);
        Ok(())
    });
}
