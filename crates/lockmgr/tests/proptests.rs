//! Property-based tests of the lock table: under arbitrary sequences of
//! try-acquires and releases, the granted groups stay pairwise compatible
//! and the bookkeeping stays consistent.

use colock_lockmgr::{AcquireOutcome, LockError, LockManager, LockMode, LockRequestOptions, TxnId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Cmd {
    Acquire { txn: u64, resource: u8, mode: LockMode },
    Release { txn: u64, resource: u8 },
    ReleaseAll { txn: u64 },
}

fn cmd() -> impl Strategy<Value = Cmd> {
    let mode = prop_oneof![
        Just(LockMode::IS),
        Just(LockMode::IX),
        Just(LockMode::S),
        Just(LockMode::SIX),
        Just(LockMode::X),
    ];
    prop_oneof![
        4 => (1u64..5, 0u8..4, mode).prop_map(|(txn, resource, mode)| Cmd::Acquire { txn, resource, mode }),
        2 => (1u64..5, 0u8..4).prop_map(|(txn, resource)| Cmd::Release { txn, resource }),
        1 => (1u64..5).prop_map(|txn| Cmd::ReleaseAll { txn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn granted_groups_stay_compatible(cmds in proptest::collection::vec(cmd(), 1..60)) {
        let lm: LockManager<u8> = LockManager::new();
        for c in &cmds {
            match *c {
                Cmd::Acquire { txn, resource, mode } => {
                    match lm.acquire(TxnId(txn), resource, mode, LockRequestOptions::try_lock()) {
                        Ok(AcquireOutcome::Granted { .. }) | Ok(AcquireOutcome::AlreadyHeld) => {}
                        Err(LockError::WouldBlock { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Cmd::Release { txn, resource } => {
                    lm.release(TxnId(txn), &resource);
                }
                Cmd::ReleaseAll { txn } => {
                    lm.release_all(TxnId(txn));
                }
            }
            // Invariant 1: every pair of holders on a resource is compatible.
            for r in 0u8..4 {
                let holders = lm.holders(&r);
                for (i, &(ta, ma)) in holders.iter().enumerate() {
                    for &(tb, mb) in holders.iter().skip(i + 1) {
                        prop_assert!(ta != tb, "duplicate grant entries for {ta}");
                        prop_assert!(
                            ma.compatible(mb),
                            "incompatible co-grants {ma}/{mb} on {r}"
                        );
                    }
                }
            }
            // Invariant 2: held_mode agrees with the holders list.
            for r in 0u8..4 {
                let holders = lm.holders(&r);
                for &(t, m) in &holders {
                    prop_assert_eq!(lm.held_mode(t, &r), m);
                }
            }
        }
        // Invariant 3: releasing everything empties the table.
        for t in 1u64..5 {
            lm.release_all(TxnId(t));
        }
        prop_assert_eq!(lm.table_size(), 0);
        prop_assert_eq!(lm.grant_count(), 0);
    }

    #[test]
    fn held_mode_only_grows_within_txn(modes in proptest::collection::vec(
        prop_oneof![Just(LockMode::IS), Just(LockMode::IX), Just(LockMode::S), Just(LockMode::SIX), Just(LockMode::X)],
        1..10,
    )) {
        // A single transaction repeatedly locking one resource: its held
        // mode is the running join of all requested modes.
        let lm: LockManager<u8> = LockManager::new();
        let t = TxnId(1);
        let mut expected = LockMode::NL;
        for m in modes {
            lm.acquire(t, 0, m, LockRequestOptions::default()).unwrap();
            expected = expected.join(m);
            prop_assert_eq!(lm.held_mode(t, &0), expected);
        }
    }

    #[test]
    fn stats_requests_match_command_count(n in 1usize..30) {
        let lm: LockManager<u8> = LockManager::new();
        for i in 0..n {
            let _ = lm.acquire(
                TxnId(1),
                (i % 4) as u8,
                LockMode::IS,
                LockRequestOptions::try_lock(),
            );
        }
        prop_assert_eq!(lm.stats().snapshot().requests, n as u64);
    }
}
