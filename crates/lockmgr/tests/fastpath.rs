//! Deterministic coverage for the optimistic intent fast path.
//!
//! The summary-word CAS has no scheduler to lean on, so these tests force
//! the interesting interleavings directly: the manager's test probe runs a
//! competing writer *between* an optimist's validate and its CAS (exactly
//! one retry; retry exhaustion), threads race optimistic intents against
//! exclusive acquire/release cycles, and conversions/escalations/releases
//! over outstanding optimistic grants are checked to drain into the shard
//! map and leave the summary words consistent (re-derived from the maps by
//! `check_summary_consistency`).
//!
//! No trace/lint assertions live here — the trace ring is process-global
//! and these tests run in parallel; `tracing.rs` and the check crate own
//! those.

use colock_lockmgr::table::MAX_FASTPATH_ATTEMPTS;
use colock_lockmgr::{
    AcquireOutcome, LockError, LockManager, LockMode, LockRequestOptions, TxnId,
};
use colock_testkit::run_threads;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

type Mgr = LockManager<&'static str>;

fn t(n: u64) -> TxnId {
    TxnId(n)
}

fn short() -> LockRequestOptions {
    LockRequestOptions::default()
}

/// A writer bumps the slot version between the optimist's validate and its
/// CAS: the publication must lose exactly once, revalidate, and then win.
#[test]
fn forced_cas_conflict_retries_once_then_succeeds() {
    let mgr = Arc::new(Mgr::new());
    let fired = Arc::new(AtomicBool::new(false));
    let inner = Arc::clone(&mgr);
    let flag = Arc::clone(&fired);
    // The probe acts as a transaction on another stripe (TxnId 2 vs the
    // optimist's TxnId 1) and only while the slot has zero optimistic
    // counts, as the probe contract requires.
    mgr.set_fastpath_probe(Some(Box::new(move || {
        if flag.swap(true, Ordering::SeqCst) {
            return;
        }
        inner.acquire(t(2), "res", LockMode::X, short()).unwrap();
        assert!(inner.release(t(2), &"res"));
    })));

    let out = mgr.acquire(t(1), "res", LockMode::IS, short()).unwrap();
    assert_eq!(out, AcquireOutcome::Granted { waited: false });
    mgr.set_fastpath_probe(None);
    assert!(fired.load(Ordering::SeqCst), "probe must have interfered");

    let s = mgr.stats().snapshot();
    assert_eq!(s.fastpath_retries, 1, "exactly one lost CAS");
    assert_eq!(s.fastpath_hits, 1, "second attempt must win");
    assert_eq!(s.fastpath_fallbacks, 0);
    assert_eq!(s.intent_acquires, 1);
    mgr.check_summary_consistency().unwrap();
    assert!(mgr.release(t(1), &"res"));
    mgr.check_summary_consistency().unwrap();
}

/// A writer interferes on *every* validate: the optimist exhausts its CAS
/// budget, falls back to the shard-mutex path, and still gets the lock.
#[test]
fn retry_exhaustion_falls_back_to_the_mutex_path() {
    let mgr = Arc::new(Mgr::new());
    let inner = Arc::clone(&mgr);
    mgr.set_fastpath_probe(Some(Box::new(move || {
        inner.acquire(t(2), "res", LockMode::X, short()).unwrap();
        assert!(inner.release(t(2), &"res"));
    })));

    let out = mgr.acquire(t(1), "res", LockMode::IS, short()).unwrap();
    assert_eq!(out, AcquireOutcome::Granted { waited: false });
    mgr.set_fastpath_probe(None);

    let s = mgr.stats().snapshot();
    assert_eq!(s.fastpath_retries, u64::from(MAX_FASTPATH_ATTEMPTS));
    assert_eq!(s.fastpath_fallbacks, 1);
    assert_eq!(s.fastpath_hits, 0);
    assert_eq!(s.intent_acquires, 1);
    assert_eq!(s.intent_acquires, s.fastpath_hits + s.fastpath_fallbacks);
    // The fallback grant is a real shard-map entry, not an optimistic one.
    assert_eq!(mgr.table_size(), 1);
    assert_eq!(mgr.holders(&"res"), vec![(t(1), LockMode::IS)]);
    mgr.check_summary_consistency().unwrap();
    assert_eq!(mgr.release_all(t(1)), 1);
    mgr.check_summary_consistency().unwrap();
}

/// Optimistic IS grants race concurrent X acquire/release cycles on one
/// resource. Every interleaving must preserve mutual exclusion bookkeeping:
/// afterwards the table is empty, the summary words re-derive cleanly, and
/// the gate identity `hits + fallbacks == intent_acquires` holds.
#[test]
fn optimistic_grants_race_concurrent_exclusive_traffic() {
    let mgr = Arc::new(Mgr::new());
    let rounds = 200;
    let m = Arc::clone(&mgr);
    run_threads(8, Duration::from_secs(60), move |tid| {
        let txn = t(tid as u64 + 1);
        for _ in 0..rounds {
            if tid % 2 == 0 {
                m.acquire(txn, "hot", LockMode::IS, short()).unwrap();
            } else {
                m.acquire(txn, "hot", LockMode::X, short()).unwrap();
            }
            assert!(m.release(txn, &"hot"));
        }
    });
    assert_eq!(mgr.table_size(), 0);
    assert_eq!(mgr.grant_count(), 0);
    let s = mgr.stats().snapshot();
    assert_eq!(
        s.fastpath_hits + s.fastpath_fallbacks,
        s.intent_acquires,
        "gate identity must hold under races: {s:?}"
    );
    assert!(s.intent_acquires >= 4 * rounds, "every IS request enters the gate");
    mgr.check_summary_consistency().unwrap();
}

/// Converting one's own optimistic grant (IS → IX) is refused by the gate
/// and handled pessimistically, absorbing the optimistic entry into a real
/// shard grant.
#[test]
fn conversion_of_an_optimistic_grant_takes_the_pessimistic_path() {
    let mgr = Mgr::new();
    mgr.acquire(t(1), "r", LockMode::IS, short()).unwrap();
    let s = mgr.stats().snapshot();
    assert_eq!((s.fastpath_hits, s.fastpath_fallbacks), (1, 0));
    assert_eq!(mgr.table_size(), 0, "optimistic grant has no shard entry");

    let out = mgr.acquire(t(1), "r", LockMode::IX, short()).unwrap();
    assert_eq!(out, AcquireOutcome::Granted { waited: false });
    let s = mgr.stats().snapshot();
    assert_eq!(s.fastpath_fallbacks, 1, "conversion is a gate fallback");
    assert_eq!(s.conversions, 1);
    assert_eq!(s.intent_acquires, s.fastpath_hits + s.fastpath_fallbacks);
    assert_eq!(mgr.held_mode(t(1), &"r"), LockMode::IX);
    assert_eq!(mgr.table_size(), 1, "converted grant is real");
    mgr.check_summary_consistency().unwrap();
    assert_eq!(mgr.release_all(t(1)), 1);
    mgr.check_summary_consistency().unwrap();
}

/// A pessimistic S decision over a slot with outstanding optimistic intent
/// grants drains them into the shard map first, so its compatibility check
/// sees the whole granted group; a later X conversion attempt then conflicts
/// with the drained grant like any real one.
#[test]
fn share_decision_drains_outstanding_optimistic_grants() {
    let mgr = Mgr::new();
    mgr.acquire(t(1), "r", LockMode::IS, short()).unwrap();
    mgr.acquire(t(2), "r", LockMode::IS, short()).unwrap();
    assert_eq!(mgr.stats().snapshot().fastpath_hits, 2);
    assert_eq!(mgr.table_size(), 0);

    // t2 escalates its own IS to S: seals, drains both optimists, converts.
    mgr.acquire(t(2), "r", LockMode::S, short()).unwrap();
    let s = mgr.stats().snapshot();
    assert_eq!(s.fastpath_drains, 1);
    assert_eq!(s.conversions, 1);
    let mut holders = mgr.holders(&"r");
    holders.sort();
    assert_eq!(holders, vec![(t(1), LockMode::IS), (t(2), LockMode::S)]);
    assert_eq!(mgr.table_size(), 1);
    mgr.check_summary_consistency().unwrap();

    // The drained IS grant of t1 now conflicts like a real one.
    let err = mgr.acquire(t(1), "r", LockMode::X, LockRequestOptions::try_lock()).unwrap_err();
    match err {
        LockError::WouldBlock { holders } => assert_eq!(holders, vec![t(2)]),
        other => panic!("expected WouldBlock, got {other:?}"),
    }
    mgr.check_summary_consistency().unwrap();
    assert_eq!(mgr.release_all(t(1)) + mgr.release_all(t(2)), 2);
    assert_eq!(mgr.table_size(), 0);
    mgr.check_summary_consistency().unwrap();
}

/// Escalating one's own optimistic IX straight to X: the exclusive decision
/// seals and drains its *own* optimistic grant before deciding, so the
/// conversion is granted and the summary word records one exclusive holder.
#[test]
fn own_escalation_from_optimistic_intent_to_exclusive() {
    let mgr = Mgr::new();
    mgr.acquire(t(1), "r", LockMode::IX, short()).unwrap();
    let out = mgr.acquire(t(1), "r", LockMode::X, short()).unwrap();
    assert_eq!(out, AcquireOutcome::Granted { waited: false });
    let s = mgr.stats().snapshot();
    assert_eq!(s.fastpath_drains, 1, "exclusive decision must drain own grant");
    assert_eq!(s.conversions, 1);
    assert_eq!(mgr.held_mode(t(1), &"r"), LockMode::X);
    mgr.check_summary_consistency().unwrap();
    assert_eq!(mgr.release_all(t(1)), 1);
    mgr.check_summary_consistency().unwrap();
}

/// Releasing an optimistic grant early (before any drain) retracts it from
/// the summary word without ever touching the shard map.
#[test]
fn release_early_of_an_optimistic_grant_clears_the_summary() {
    let mgr = Mgr::new();
    mgr.acquire(t(1), "a", LockMode::IS, short()).unwrap();
    mgr.acquire(t(1), "b", LockMode::IX, short()).unwrap();
    assert_eq!(mgr.grant_count(), 2);
    assert_eq!(mgr.table_size(), 0);

    assert!(mgr.release(t(1), &"a"));
    assert_eq!(mgr.grant_count(), 1);
    assert_eq!(mgr.table_size(), 0, "optimistic release never creates shard entries");
    mgr.check_summary_consistency().unwrap();

    assert_eq!(mgr.release_all(t(1)), 1);
    assert_eq!(mgr.grant_count(), 0);
    assert_eq!(mgr.stats().snapshot().releases, 2);
    mgr.check_summary_consistency().unwrap();
}

/// `release_short` drops optimistic grants alongside real short ones and
/// keeps long locks (which never ride the fast path).
#[test]
fn release_short_drops_optimistic_grants_and_keeps_long_locks() {
    let mgr = Mgr::new();
    mgr.acquire(t(1), "a", LockMode::IX, LockRequestOptions::long()).unwrap();
    mgr.acquire(t(1), "b", LockMode::IS, short()).unwrap();
    mgr.acquire(t(1), "c", LockMode::S, short()).unwrap();
    let s = mgr.stats().snapshot();
    assert_eq!((s.fastpath_hits, s.intent_acquires), (1, 1), "long IX skips the gate");

    assert_eq!(mgr.release_short(t(1)), 2);
    assert_eq!(mgr.locks_of(t(1)), vec![("a", LockMode::IX, true)]);
    mgr.check_summary_consistency().unwrap();
    assert_eq!(mgr.release_all(t(1)), 1);
    mgr.check_summary_consistency().unwrap();
}

/// A covered re-request is answered from the inventory without entering the
/// fast-path accounting: `intent_acquires` counts decisions, not lookups.
#[test]
fn covered_re_request_skips_the_gate_counters() {
    let mgr = Mgr::new();
    mgr.acquire(t(1), "r", LockMode::IS, short()).unwrap();
    let out = mgr.acquire(t(1), "r", LockMode::IS, short()).unwrap();
    assert_eq!(out, AcquireOutcome::AlreadyHeld);
    let s = mgr.stats().snapshot();
    assert_eq!(s.requests, 2);
    assert_eq!(s.intent_acquires, 1);
    assert_eq!((s.fastpath_hits, s.fastpath_fallbacks), (1, 0));
    mgr.check_summary_consistency().unwrap();
}

/// Disabling the fast path at runtime sends intents down the classic path:
/// the gate is never entered and grants are real shard entries.
#[test]
fn runtime_toggle_disables_the_gate() {
    let mgr = Mgr::new();
    assert!(mgr.fastpath_enabled());
    mgr.set_fastpath(false);
    assert!(!mgr.fastpath_enabled());
    mgr.acquire(t(1), "r", LockMode::IS, short()).unwrap();
    let s = mgr.stats().snapshot();
    assert_eq!(s.intent_acquires, 0, "disabled gate counts nothing");
    assert_eq!(mgr.table_size(), 1);
    mgr.check_summary_consistency().unwrap();
    assert_eq!(mgr.release_all(t(1)), 1);

    mgr.set_fastpath(true);
    mgr.acquire(t(1), "r", LockMode::IS, short()).unwrap();
    assert_eq!(mgr.stats().snapshot().fastpath_hits, 1);
    assert_eq!(mgr.table_size(), 0);
    mgr.check_summary_consistency().unwrap();
    assert_eq!(mgr.release_all(t(1)), 1);
}

/// The batched chain call answers every compatible link optimistically,
/// repeats as AlreadyHeld, and its grants behave like per-call acquires.
#[test]
fn chain_batches_compatible_links() {
    let mgr = Mgr::new();
    let chain = ["db", "seg", "rel"];
    let out = mgr.acquire_intent_chain(t(1), &chain, LockMode::IX, short()).unwrap();
    assert_eq!(out, vec![AcquireOutcome::Granted { waited: false }; 3]);
    let s = mgr.stats().snapshot();
    assert_eq!((s.intent_acquires, s.fastpath_hits), (3, 3));
    assert_eq!(mgr.table_size(), 0, "whole chain published optimistically");

    let again = mgr.acquire_intent_chain(t(1), &chain, LockMode::IX, short()).unwrap();
    assert_eq!(again, vec![AcquireOutcome::AlreadyHeld; 3]);
    let s = mgr.stats().snapshot();
    assert_eq!(s.intent_acquires, 3, "covered links skip the gate counters");
    assert_eq!(s.requests, 6);
    mgr.check_summary_consistency().unwrap();
    assert_eq!(mgr.release_all(t(1)), 3);
    mgr.check_summary_consistency().unwrap();
}

/// A mid-chain conflict under `try_lock` errors out but keeps the grants of
/// earlier links — exactly like the equivalent sequence of single acquires.
#[test]
fn chain_conflict_keeps_earlier_links() {
    let mgr = Mgr::new();
    mgr.acquire(t(2), "seg", LockMode::S, short()).unwrap();
    let err = mgr
        .acquire_intent_chain(t(3), &["db", "seg", "rel"], LockMode::IX, LockRequestOptions::try_lock())
        .unwrap_err();
    assert!(matches!(err, LockError::WouldBlock { .. }), "got {err:?}");
    assert_eq!(mgr.held_mode(t(3), &"db"), LockMode::IX);
    assert_eq!(mgr.held_mode(t(3), &"seg"), LockMode::NL);
    assert_eq!(mgr.held_mode(t(3), &"rel"), LockMode::NL);
    let s = mgr.stats().snapshot();
    assert_eq!(s.intent_acquires, s.fastpath_hits + s.fastpath_fallbacks);
    assert_eq!(s.fastpath_fallbacks, 1, "the conflicting link fell back");
    mgr.check_summary_consistency().unwrap();
    assert_eq!(mgr.release_all(t(3)) + mgr.release_all(t(2)), 2);
    mgr.check_summary_consistency().unwrap();
}

/// Long chains never ride the fast path: every link becomes a real,
/// journaled-eligible shard grant.
#[test]
fn long_chains_take_the_pessimistic_loop() {
    let mgr = Mgr::new();
    let out = mgr
        .acquire_intent_chain(t(1), &["db", "seg", "rel"], LockMode::IX, LockRequestOptions::long())
        .unwrap();
    assert_eq!(out, vec![AcquireOutcome::Granted { waited: false }; 3]);
    let s = mgr.stats().snapshot();
    assert_eq!(s.intent_acquires, 0);
    assert_eq!(mgr.table_size(), 3);
    for r in ["db", "seg", "rel"] {
        assert_eq!(mgr.locks_of(t(1)).iter().filter(|(k, _, long)| *k == r && *long).count(), 1);
    }
    mgr.check_summary_consistency().unwrap();
    assert_eq!(mgr.release_all(t(1)), 3);
    mgr.check_summary_consistency().unwrap();
}

/// Concurrent chains over a shared ancestor prefix: all optimistic, no
/// shard entries, and the summary stays consistent after interleaved
/// releases.
#[test]
fn concurrent_chains_share_ancestors_optimistically() {
    let mgr = Arc::new(Mgr::new());
    let m = Arc::clone(&mgr);
    run_threads(6, Duration::from_secs(60), move |tid| {
        let txn = t(tid as u64 + 1);
        let leaf: &'static str = ["l0", "l1", "l2", "l3", "l4", "l5"][tid];
        for _ in 0..100 {
            m.acquire_intent_chain(txn, &["db", "seg", leaf], LockMode::IS, short()).unwrap();
            assert_eq!(m.release_all(txn), 3);
        }
    });
    let s = mgr.stats().snapshot();
    assert_eq!(s.intent_acquires, s.fastpath_hits + s.fastpath_fallbacks);
    assert_eq!(mgr.grant_count(), 0);
    mgr.check_summary_consistency().unwrap();
}

/// The retry counter is monotone evidence of real contention: two optimists
/// racing the same slot version can lose a CAS but must never lose a grant.
#[test]
fn racing_optimists_never_lose_grants() {
    let mgr = Arc::new(Mgr::new());
    let granted = Arc::new(AtomicU64::new(0));
    let m = Arc::clone(&mgr);
    let g = Arc::clone(&granted);
    run_threads(8, Duration::from_secs(60), move |tid| {
        let txn = t(tid as u64 + 1);
        for _ in 0..250 {
            match m.acquire(txn, "slot", LockMode::IS, short()).unwrap() {
                AcquireOutcome::Granted { .. } => {
                    g.fetch_add(1, Ordering::Relaxed);
                }
                AcquireOutcome::AlreadyHeld => panic!("fresh acquire cannot be held"),
            }
            assert!(m.release(txn, &"slot"));
        }
    });
    assert_eq!(granted.load(Ordering::Relaxed), 8 * 250);
    let s = mgr.stats().snapshot();
    assert_eq!(s.intent_acquires, 8 * 250);
    assert_eq!(s.intent_acquires, s.fastpath_hits + s.fastpath_fallbacks);
    mgr.check_summary_consistency().unwrap();
}
