//! Edge cases of the lock table: SIX semantics, multi-party deadlocks,
//! queue hygiene after timeouts, recovery interplay.

use colock_lockmgr::{
    AcquireOutcome, LockError, LockManager, LockMode, LockRequestOptions, LongLockImage, TxnId,
    WaitPolicy,
};
use colock_testkit::wait_until;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(5);

type Mgr = LockManager<&'static str>;

fn t(n: u64) -> TxnId {
    TxnId(n)
}

#[test]
fn six_coexists_with_is_only() {
    let m = Mgr::new();
    m.acquire(t(1), "r", LockMode::SIX, LockRequestOptions::default()).unwrap();
    // IS is compatible with SIX.
    assert!(m.acquire(t(2), "r", LockMode::IS, LockRequestOptions::try_lock()).is_ok());
    // IX, S, SIX, X are not.
    for mode in [LockMode::IX, LockMode::S, LockMode::SIX, LockMode::X] {
        let r = m.acquire(t(3), "r", mode, LockRequestOptions::try_lock());
        assert!(r.is_err(), "{mode} must conflict with SIX");
    }
}

#[test]
fn s_plus_ix_conversion_yields_six() {
    let m = Mgr::new();
    m.acquire(t(1), "r", LockMode::S, LockRequestOptions::default()).unwrap();
    m.acquire(t(1), "r", LockMode::IX, LockRequestOptions::default()).unwrap();
    assert_eq!(m.held_mode(t(1), &"r"), LockMode::SIX);
    // And SIX → X is a further upgrade.
    m.acquire(t(1), "r", LockMode::X, LockRequestOptions::default()).unwrap();
    assert_eq!(m.held_mode(t(1), &"r"), LockMode::X);
}

#[test]
fn three_party_deadlock_detected() {
    let m = Arc::new(Mgr::new());
    m.acquire(t(1), "a", LockMode::X, LockRequestOptions::default()).unwrap();
    m.acquire(t(2), "b", LockMode::X, LockRequestOptions::default()).unwrap();
    m.acquire(t(3), "c", LockMode::X, LockRequestOptions::default()).unwrap();
    // 1 -> b, 2 -> c block; 3 -> a closes the 3-cycle.
    let m1 = Arc::clone(&m);
    let h1 = thread::spawn(move || m1.acquire(t(1), "b", LockMode::X, LockRequestOptions::default()));
    let m2 = Arc::clone(&m);
    let h2 = thread::spawn(move || m2.acquire(t(2), "c", LockMode::X, LockRequestOptions::default()));
    // Deterministic: wait for both edges 1→b and 2→c to be in the queues
    // before closing the cycle (no timing assumptions).
    wait_until(WAIT, || m.waiter_count(&"b") == 1 && m.waiter_count(&"c") == 1);
    let r3 = m.acquire(t(3), "a", LockMode::X, LockRequestOptions::default());
    match r3 {
        Err(LockError::Deadlock { victim, cycle }) => {
            assert_eq!(victim, t(3), "youngest in the cycle");
            assert!(cycle.len() >= 2, "{cycle:?}");
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
    m.release_all(t(3));
    // The other two finish once the chain unwinds.
    m.release_all(t(1)); // releases "a"; h1 still waits on "b"
    let r2 = h2.join().unwrap();
    // t2 obtains "c"? It already held c; it waited for... (t2 -> c is its own
    // next resource) — after t3 aborted, c is free of t3; t2's request was
    // for "c" which t3 held.
    assert!(r2.is_ok());
    m.release_all(t(2));
    assert!(h1.join().unwrap().is_ok());
    m.release_all(t(1));
    assert_eq!(m.table_size(), 0);
}

#[test]
fn timeout_leaves_queue_functional() {
    let m = Mgr::new();
    m.acquire(t(1), "r", LockMode::X, LockRequestOptions::default()).unwrap();
    let opts = LockRequestOptions {
        policy: WaitPolicy::BlockTimeout(Duration::from_millis(30)),
        long: false,
    };
    assert_eq!(m.acquire(t(2), "r", LockMode::S, opts), Err(LockError::Timeout));
    // After the holder releases, a fresh request succeeds immediately.
    m.release(t(1), &"r");
    assert_eq!(
        m.acquire(t(2), "r", LockMode::S, LockRequestOptions::default()).unwrap(),
        AcquireOutcome::Granted { waited: false }
    );
}

#[test]
fn release_of_unheld_resource_is_false() {
    let m = Mgr::new();
    assert!(!m.release(t(1), &"never"));
    m.acquire(t(1), "r", LockMode::S, LockRequestOptions::default()).unwrap();
    assert!(!m.release(t(2), &"r"), "other txn's release must not drop the lock");
    assert_eq!(m.held_mode(t(1), &"r"), LockMode::S);
}

#[test]
fn release_all_of_unknown_txn_is_zero() {
    let m = Mgr::new();
    assert_eq!(m.release_all(t(77)), 0);
}

#[test]
fn locks_of_reports_modes_and_long_flags() {
    let m = Mgr::new();
    m.acquire(t(1), "a", LockMode::S, LockRequestOptions::long()).unwrap();
    m.acquire(t(1), "b", LockMode::IX, LockRequestOptions::default()).unwrap();
    let mut locks = m.locks_of(t(1));
    locks.sort_by_key(|(r, _, _)| *r);
    assert_eq!(locks, vec![("a", LockMode::S, true), ("b", LockMode::IX, false)]);
}

#[test]
fn waiters_are_woken_in_fifo_order() {
    let m = Arc::new(Mgr::new());
    m.acquire(t(1), "r", LockMode::X, LockRequestOptions::default()).unwrap();
    let order = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for i in 2..=4u64 {
        let m2 = Arc::clone(&m);
        let order = Arc::clone(&order);
        handles.push(thread::spawn(move || {
            m2.acquire(t(i), "r", LockMode::X, LockRequestOptions::default()).unwrap();
            order.lock().unwrap().push(i);
            m2.release(t(i), &"r");
        }));
        // Queue position is arrival order: wait until this waiter is enqueued
        // before spawning the next one (deterministic, no sleeps).
        wait_until(WAIT, || m.waiter_count(&"r") == (i - 1) as usize);
    }
    m.release(t(1), &"r");
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*order.lock().unwrap(), vec![2, 3, 4]);
}

#[test]
fn recovered_long_locks_participate_in_new_conflicts() {
    let m = Mgr::new();
    m.acquire(t(1), "cell", LockMode::X, LockRequestOptions::long()).unwrap();
    m.acquire(t(1), "tmp", LockMode::S, LockRequestOptions::default()).unwrap();
    let image = LongLockImage::capture(&m);

    let fresh = Mgr::new();
    image.restore(&fresh);
    // The restored lock conflicts; the non-long one is gone.
    assert!(fresh.acquire(t(2), "cell", LockMode::S, LockRequestOptions::try_lock()).is_err());
    assert!(fresh.acquire(t(2), "tmp", LockMode::X, LockRequestOptions::try_lock()).is_ok());
    // The owner can continue where it left off (upgrade is a no-op).
    assert_eq!(
        fresh.acquire(t(1), "cell", LockMode::X, LockRequestOptions::default()).unwrap(),
        AcquireOutcome::AlreadyHeld
    );
}

#[test]
fn image_roundtrips_through_codec_and_survives_crash() {
    let m: LockManager<String> = LockManager::new();
    m.acquire(t(1), "a".to_string(), LockMode::X, LockRequestOptions::long()).unwrap();
    m.acquire(t(2), "b".to_string(), LockMode::S, LockRequestOptions::long()).unwrap();
    m.acquire(t(2), "scratch".to_string(), LockMode::X, LockRequestOptions::default()).unwrap();
    let image = LongLockImage::capture(&m);
    assert_eq!(image.len(), 2, "short lock must not be captured");

    // The on-medium representation of §3.1's survival: text out, text in.
    let text = image.to_lines();
    let decoded = LongLockImage::from_lines(&text).unwrap();
    assert_eq!(decoded, image);

    // "Crash": restore into a brand-new manager and check the long locks are
    // live again (install_recovered under the hood) while short ones are gone.
    let fresh: LockManager<String> = LockManager::new();
    decoded.restore(&fresh);
    assert_eq!(fresh.held_mode(t(1), &"a".to_string()), LockMode::X);
    assert_eq!(fresh.held_mode(t(2), &"b".to_string()), LockMode::S);
    assert_eq!(fresh.held_mode(t(2), &"scratch".to_string()), LockMode::NL);
    assert!(fresh
        .acquire(t(3), "a".to_string(), LockMode::S, LockRequestOptions::try_lock())
        .is_err());
}

#[test]
fn stats_wait_counter_increments() {
    let m = Arc::new(Mgr::new());
    m.acquire(t(1), "r", LockMode::X, LockRequestOptions::default()).unwrap();
    let m2 = Arc::clone(&m);
    let h = thread::spawn(move || {
        m2.acquire(t(2), "r", LockMode::S, LockRequestOptions::default()).unwrap()
    });
    wait_until(WAIT, || m.waiter_count(&"r") == 1);
    m.release(t(1), &"r");
    h.join().unwrap();
    let s = m.stats().snapshot();
    assert_eq!(s.waits, 1);
    assert!(s.immediate_grants >= 1);
}

#[test]
fn intent_locks_never_conflict_with_each_other() {
    let m = Mgr::new();
    for (i, mode) in [LockMode::IS, LockMode::IX, LockMode::IS, LockMode::IX]
        .into_iter()
        .enumerate()
    {
        m.acquire(t(i as u64 + 1), "db", mode, LockRequestOptions::try_lock()).unwrap();
    }
    assert_eq!(m.holders(&"db").len(), 4);
}

#[test]
fn queue_drain_reaches_waiters_behind_compatible_grants() {
    // Regression: two compatible waiters queued behind an X holder. On
    // release, the first is granted; the scan must re-run so the second —
    // compatible with the first — is granted in the same drain, not lost.
    let m = Arc::new(Mgr::new());
    m.acquire(t(1), "r", LockMode::X, LockRequestOptions::default()).unwrap();
    let m2 = Arc::clone(&m);
    let h2 = thread::spawn(move || m2.acquire(t(2), "r", LockMode::IS, LockRequestOptions::default()));
    wait_until(WAIT, || m.waiter_count(&"r") == 1);
    let m3 = Arc::clone(&m);
    let h3 = thread::spawn(move || m3.acquire(t(3), "r", LockMode::IS, LockRequestOptions::default()));
    wait_until(WAIT, || m.waiter_count(&"r") == 2);
    m.release(t(1), &"r");
    // Both IS waiters must be granted promptly (well under the 50ms
    // re-detection epoch — the drain itself must deliver them).
    assert!(h2.join().unwrap().is_ok());
    assert!(h3.join().unwrap().is_ok());
    assert_eq!(m.held_mode(t(2), &"r"), LockMode::IS);
    assert_eq!(m.held_mode(t(3), &"r"), LockMode::IS);
}

#[test]
fn queue_drain_stops_at_incompatible_waiter() {
    // The fixpoint must still respect FIFO: [S, X, S] behind an X holder
    // drains only the first S; the X (and the S behind it) keep waiting.
    let m = Arc::new(Mgr::new());
    m.acquire(t(1), "r", LockMode::X, LockRequestOptions::default()).unwrap();
    let spawn_wait = |id: u64, mode: LockMode, m: &Arc<Mgr>| {
        let m = Arc::clone(m);
        thread::spawn(move || m.acquire(t(id), "r", mode, LockRequestOptions::default()))
    };
    let h2 = spawn_wait(2, LockMode::S, &m);
    wait_until(WAIT, || m.waiter_count(&"r") == 1);
    let h3 = spawn_wait(3, LockMode::X, &m);
    wait_until(WAIT, || m.waiter_count(&"r") == 2);
    let h4 = spawn_wait(4, LockMode::S, &m);
    wait_until(WAIT, || m.waiter_count(&"r") == 3);
    m.release(t(1), &"r");
    assert!(h2.join().unwrap().is_ok());
    // t3 and t4 are still queued — the drain must have stopped at the X.
    wait_until(WAIT, || m.waiter_count(&"r") == 2);
    assert_eq!(m.held_mode(t(3), &"r"), LockMode::NL, "X must still wait behind t2's S");
    assert_eq!(m.held_mode(t(4), &"r"), LockMode::NL, "trailing S must not overtake the X");
    m.release(t(2), &"r");
    assert!(h3.join().unwrap().is_ok());
    m.release(t(3), &"r");
    assert!(h4.join().unwrap().is_ok());
    m.release_all(t(4));
}

#[test]
fn compatible_waiter_passes_blocked_compatible_predecessor() {
    // Regression for the second stall: queue [S (blocked by IX holder), IS].
    // IS is compatible with both the IX grant and the S predecessor; it must
    // be granted rather than parked positionally forever (it contributes no
    // waits-for edges, so leaving it parked deadlocks invisibly).
    let m = Arc::new(Mgr::new());
    m.acquire(t(1), "r", LockMode::IX, LockRequestOptions::default()).unwrap();
    // t2 queues S behind an X-ish conflict (S vs IX incompatible).
    let m2 = Arc::clone(&m);
    let h2 = thread::spawn(move || m2.acquire(t(2), "r", LockMode::S, LockRequestOptions::default()));
    wait_until(WAIT, || m.waiter_count(&"r") == 1);
    // t3's IS is compatible with IX and with the waiting S: immediate grant.
    let r3 = m.acquire(t(3), "r", LockMode::IS, LockRequestOptions::try_lock());
    assert!(r3.is_ok(), "IS must not be blocked positionally: {r3:?}");
    m.release(t(3), &"r");
    m.release(t(1), &"r");
    assert!(h2.join().unwrap().is_ok());
    m.release_all(t(2));
}

#[test]
fn queued_compatible_waiter_is_granted_on_queue_evolution() {
    // Same situation arising through queue evolution: [X, S, IS] behind an S
    // holder; the X leaves (timeout) — the S and IS must BOTH be granted even
    // though S is first and IS sits behind it.
    let m = Arc::new(Mgr::new());
    m.acquire(t(1), "r", LockMode::S, LockRequestOptions::default()).unwrap();
    let m2 = Arc::clone(&m);
    let h2 = thread::spawn(move || {
        m2.acquire(
            t(2),
            "r",
            LockMode::X,
            LockRequestOptions { policy: WaitPolicy::BlockTimeout(Duration::from_millis(80)), long: false },
        )
    });
    wait_until(WAIT, || m.waiter_count(&"r") == 1);
    let m3 = Arc::clone(&m);
    let h3 = thread::spawn(move || m3.acquire(t(3), "r", LockMode::S, LockRequestOptions::default()));
    wait_until(WAIT, || m.waiter_count(&"r") == 2);
    let m4 = Arc::clone(&m);
    let h4 = thread::spawn(move || m4.acquire(t(4), "r", LockMode::IS, LockRequestOptions::default()));
    // t2's X times out; t3 (S) and t4 (IS) must both be granted.
    assert_eq!(h2.join().unwrap(), Err(LockError::Timeout));
    assert!(h3.join().unwrap().is_ok());
    assert!(h4.join().unwrap().is_ok());
    assert_eq!(m.held_mode(t(3), &"r"), LockMode::S);
    assert_eq!(m.held_mode(t(4), &"r"), LockMode::IS);
}

#[test]
fn seeded_deadlock_storm_picks_youngest_victim_and_makes_progress() {
    // Barrier-stepped storm: four threads repeatedly close a four-party
    // waits-for ring over a seeded permutation of four resources. Each cycle
    // round has exactly one deadlock, and the victim must be the youngest
    // transaction in the ring (rule: youngest-victim selection). Progress is
    // enforced by the runner's watchdog plus the per-round grant cascade:
    // after the victim aborts, every survivor's blocked request is granted.
    use colock_testkit::{lockstep, Rng};

    const THREADS: usize = 4;
    const CYCLES: usize = 12;
    const RES: [&str; 4] = ["a", "b", "c", "d"];
    let seed = colock_testkit::prop::seed_from_env().unwrap_or(0xC0_10C6);

    let m = Arc::new(Mgr::new());
    let deadlocks = Arc::new(Mutex::new(Vec::new()));
    let m2 = Arc::clone(&m);
    let dl = Arc::clone(&deadlocks);
    lockstep(THREADS, CYCLES * 2, Duration::from_secs(60), move |tid, step| {
        let k = step / 2;
        // Seeded ring layout for cycle k — every thread derives the same
        // permutation, so the shape is deterministic for a given seed.
        let mut perm = [0usize, 1, 2, 3];
        Rng::seed_from_u64(seed ^ k as u64).shuffle(&mut perm);
        // Rotate which thread is youngest so every position gets a turn.
        let rank = (tid + k) % THREADS;
        let txn = TxnId(1 + (k * THREADS + rank) as u64);
        if step % 2 == 0 {
            // Phase A: everyone takes X on its own ring slot — no conflicts.
            m2.acquire(txn, RES[perm[tid]], LockMode::X, LockRequestOptions::default())
                .unwrap();
        } else {
            // Phase B: everyone requests its successor's slot, closing the
            // ring. Exactly the youngest transaction must be chosen as
            // victim; the survivors are granted as the abort cascades.
            let next = RES[perm[(tid + 1) % THREADS]];
            match m2.acquire(txn, next, LockMode::X, LockRequestOptions::default()) {
                Ok(_) => {
                    assert_ne!(
                        rank,
                        THREADS - 1,
                        "the youngest txn {txn} must have been picked as victim"
                    );
                }
                Err(LockError::Deadlock { victim, cycle }) => {
                    assert_eq!(victim, txn, "the victim is always the txn receiving the error");
                    assert_eq!(
                        rank,
                        THREADS - 1,
                        "an older txn {txn} was aborted instead of the youngest"
                    );
                    assert_eq!(cycle.len(), THREADS, "the full ring must be reported");
                    assert_eq!(
                        victim,
                        *cycle.iter().max().unwrap(),
                        "victim must be the youngest member of {cycle:?}"
                    );
                    dl.lock().unwrap().push((k, victim));
                }
                Err(e) => panic!("unexpected lock error: {e}"),
            }
            m2.release_all(txn);
        }
    });
    // Every cycle round produced exactly one deadlock, in order.
    let events = deadlocks.lock().unwrap();
    assert_eq!(events.len(), CYCLES, "one deadlock per ring round: {events:?}");
    assert_eq!(m.table_size(), 0, "storm must drain the lock table completely");
}

#[test]
fn cross_shard_deadlock_storm_picks_youngest_victim() {
    // The storm above may land all four resources on one shard by accident of
    // hashing; this variant *constructs* four resources with pairwise
    // distinct shard indices, so every edge of the waits-for ring crosses a
    // shard boundary and only the snapshot detector (which locks all shards)
    // can see the cycle. Semantics must be identical: exactly one deadlock
    // per ring round, youngest member as victim, full drain.
    use colock_testkit::{lockstep, Rng};
    use std::collections::HashSet;

    const THREADS: usize = 4;
    const CYCLES: usize = 8;
    let seed = colock_testkit::prop::seed_from_env().unwrap_or(0x5AAD_C0DE);

    let m: Arc<LockManager<String>> = Arc::new(LockManager::new());
    assert!(m.shard_count() >= THREADS, "need one shard per ring slot");
    let mut res: Vec<String> = Vec::new();
    let mut used: HashSet<usize> = HashSet::new();
    let mut i = 0u64;
    while res.len() < THREADS {
        let cand = format!("res{i}");
        if used.insert(m.shard_index(&cand)) {
            res.push(cand);
        }
        i += 1;
    }
    let res: Arc<Vec<String>> = Arc::new(res);

    let deadlocks = Arc::new(Mutex::new(Vec::new()));
    let m2 = Arc::clone(&m);
    let dl = Arc::clone(&deadlocks);
    let res2 = Arc::clone(&res);
    lockstep(THREADS, CYCLES * 2, Duration::from_secs(60), move |tid, step| {
        let k = step / 2;
        let mut perm = [0usize, 1, 2, 3];
        Rng::seed_from_u64(seed ^ k as u64).shuffle(&mut perm);
        let rank = (tid + k) % THREADS;
        let txn = TxnId(1 + (k * THREADS + rank) as u64);
        if step % 2 == 0 {
            m2.acquire(txn, res2[perm[tid]].clone(), LockMode::X, LockRequestOptions::default())
                .unwrap();
        } else {
            let next = res2[perm[(tid + 1) % THREADS]].clone();
            match m2.acquire(txn, next, LockMode::X, LockRequestOptions::default()) {
                Ok(_) => {
                    assert_ne!(rank, THREADS - 1, "the youngest txn {txn} must be the victim");
                }
                Err(LockError::Deadlock { victim, cycle }) => {
                    assert_eq!(victim, txn);
                    assert_eq!(rank, THREADS - 1, "an older txn {txn} was aborted");
                    assert_eq!(cycle.len(), THREADS, "the full cross-shard ring: {cycle:?}");
                    assert_eq!(victim, *cycle.iter().max().unwrap());
                    dl.lock().unwrap().push((k, victim));
                }
                Err(e) => panic!("unexpected lock error: {e}"),
            }
            m2.release_all(txn);
        }
    });
    let events = deadlocks.lock().unwrap();
    assert_eq!(events.len(), CYCLES, "one deadlock per ring round: {events:?}");
    assert_eq!(m.table_size(), 0);
    assert!(m.stats().snapshot().detector_runs >= CYCLES as u64);
}

#[test]
fn counters_stay_consistent_across_shards() {
    // grant_count / waiter_count / table_size are assembled shard by shard;
    // they must agree with what was actually installed when the resources
    // span many shards.
    use std::collections::HashSet;

    let m: Arc<LockManager<String>> = Arc::new(LockManager::new());
    const TXNS: u64 = 8;
    const RES_PER_TXN: u64 = 6;
    for txn in 1..=TXNS {
        for j in 0..RES_PER_TXN {
            m.acquire(TxnId(txn), format!("t{txn}-r{j}"), LockMode::X, LockRequestOptions::default())
                .unwrap();
        }
        m.acquire(TxnId(txn), "shared".to_string(), LockMode::S, LockRequestOptions::default())
            .unwrap();
    }
    // The disjoint resources must actually exercise several shards.
    let spread: HashSet<usize> = (1..=TXNS)
        .flat_map(|t| (0..RES_PER_TXN).map(move |j| format!("t{t}-r{j}")))
        .map(|r| m.shard_index(&r))
        .collect();
    assert!(spread.len() > 1, "test resources all hashed to one shard");

    assert_eq!(m.grant_count() as u64, TXNS * (RES_PER_TXN + 1));
    assert_eq!(m.table_size() as u64, TXNS * RES_PER_TXN + 1);
    for txn in 1..=TXNS {
        for j in 0..RES_PER_TXN {
            assert_eq!(m.waiter_count(&format!("t{txn}-r{j}")), 0);
        }
    }

    // A blocked X on the shared resource is visible as exactly one waiter
    // and must not disturb the grant count.
    let m2 = Arc::clone(&m);
    let h = thread::spawn(move || {
        m2.acquire(TxnId(99), "shared".to_string(), LockMode::X, LockRequestOptions::default())
    });
    wait_until(WAIT, || m.waiter_count(&"shared".to_string()) == 1);
    assert_eq!(m.grant_count() as u64, TXNS * (RES_PER_TXN + 1));

    for txn in 1..=TXNS {
        assert_eq!(m.release_all(TxnId(txn)) as u64, RES_PER_TXN + 1);
    }
    assert!(h.join().unwrap().is_ok());
    assert_eq!(m.grant_count(), 1, "only the late X remains");
    m.release_all(TxnId(99));
    assert_eq!(m.table_size(), 0);
    assert_eq!(m.grant_count(), 0);
}
