//! Integration test for the observability layer: a forced two-transaction
//! deadlock must leave exactly one `DeadlockDetected` + `VictimChosen` pair
//! in the trace and export a waits-for DOT graph naming both transactions.
//!
//! Lives in its own integration-test binary so the global trace switch is
//! not shared with unrelated parallel tests.

use colock_lockmgr::{LockError, LockManager, LockMode, LockRequestOptions, TxnId};
use colock_testkit::wait_until;
use colock_trace::EventKind;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(5);

#[test]
fn forced_deadlock_traces_one_detection_and_valid_dot() {
    colock_trace::enable();
    let mark = colock_trace::current_seq();

    let m = Arc::new(LockManager::<&'static str>::new());
    let x = LockMode::X;
    m.acquire(TxnId(1), "a", x, LockRequestOptions::default()).unwrap();
    m.acquire(TxnId(2), "b", x, LockRequestOptions::default()).unwrap();

    // T1 waits for b, then T2's request for a closes the cycle {T1, T2};
    // the detector must kill the youngest (T2, the requester here).
    let m1 = Arc::clone(&m);
    let h1 = thread::spawn(move || m1.acquire(TxnId(1), "b", x, LockRequestOptions::default()));
    wait_until(WAIT, || m.waiter_count(&"b") == 1);
    let err = m.acquire(TxnId(2), "a", x, LockRequestOptions::default()).unwrap_err();
    let LockError::Deadlock { victim, .. } = err else {
        panic!("expected deadlock, got {err:?}");
    };
    assert_eq!(victim, TxnId(2));
    m.release_all(TxnId(2));
    h1.join().unwrap().unwrap();
    m.release_all(TxnId(1));

    let events = colock_trace::events_since(mark);
    let detections: Vec<_> =
        events.iter().filter(|e| e.kind == EventKind::DeadlockDetected).collect();
    let victims: Vec<_> = events.iter().filter(|e| e.kind == EventKind::VictimChosen).collect();
    assert_eq!(detections.len(), 1, "exactly one detection: {events:#?}");
    assert_eq!(victims.len(), 1, "exactly one victim: {events:#?}");
    assert!(detections[0].detail.contains("T1") && detections[0].detail.contains("T2"));
    assert_eq!(victims[0].txn, 2);
    assert_eq!(victims[0].resource, "\"a\"");

    // The waiting, wakeup and grant-after-wait events of T1 are all there.
    assert!(events
        .iter()
        .any(|e| e.kind == EventKind::Wait && e.txn == 1 && e.resource == "\"b\""));
    assert!(events.iter().any(|e| e.kind == EventKind::Wakeup && e.txn == 1));
    assert!(events
        .iter()
        .any(|e| e.kind == EventKind::Grant && e.txn == 1 && e.detail == "after-wait"));

    // The exported DOT names both transactions and marks the victim.
    let dots = colock_trace::deadlock_dots();
    assert_eq!(dots.len(), 1, "one cycle → one DOT export");
    let dot = &dots[0];
    assert!(dot.starts_with("digraph waits_for {"), "{dot}");
    assert!(dot.contains("\"T1\"") && dot.contains("\"T2\""), "{dot}");
    assert!(dot.contains("(victim)"), "{dot}");
    assert!(dot.trim_end().ends_with('}'), "{dot}");
}
