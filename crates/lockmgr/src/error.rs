//! Lock manager errors.

use crate::txnid::TxnId;
use std::fmt;

/// Errors returned by lock acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Non-blocking request could not be granted immediately; the conflicting
    /// holders are reported.
    WouldBlock {
        /// The transactions currently holding conflicting locks.
        holders: Vec<TxnId>,
    },
    /// The request closed a waits-for cycle and this transaction was chosen
    /// as the deadlock victim (youngest in the cycle). The caller must abort.
    Deadlock {
        /// The victim (always the transaction receiving this error).
        victim: TxnId,
        /// The waits-for cycle that was found.
        cycle: Vec<TxnId>,
    },
    /// Blocking request exceeded its timeout.
    Timeout,
    /// The transaction was already marked as a deadlock victim by another
    /// request and must abort before issuing new requests.
    VictimPending(TxnId),
    /// Attempt to operate on behalf of a transaction unknown to the manager
    /// (e.g. release after full release).
    UnknownTxn(TxnId),
    /// The durable long-lock journal crashed (fault injection) before the
    /// grant was acknowledged: the lock may or may not be on the medium, and
    /// the caller must treat the whole system as down (§3.1 recovery decides
    /// the lock's fate at restart).
    Crashed,
    /// The manager is draining for shutdown: parked waiters are woken and
    /// refused so in-flight transactions can abort promptly instead of
    /// sleeping through the drain window. Already-granted locks are
    /// unaffected.
    Draining,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::WouldBlock { holders } => {
                write!(f, "lock request would block on {} holder(s)", holders.len())
            }
            LockError::Deadlock { victim, cycle } => {
                let c: Vec<String> = cycle.iter().map(|t| t.to_string()).collect();
                write!(f, "deadlock: victim {victim}, cycle {}", c.join(" -> "))
            }
            LockError::Timeout => f.write_str("lock request timed out"),
            LockError::VictimPending(t) => write!(f, "{t} was chosen as deadlock victim"),
            LockError::UnknownTxn(t) => write!(f, "unknown transaction {t}"),
            LockError::Crashed => f.write_str("long-lock journal crashed; request unacknowledged"),
            LockError::Draining => f.write_str("lock manager is draining for shutdown"),
        }
    }
}

impl std::error::Error for LockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cycle() {
        let e = LockError::Deadlock {
            victim: TxnId(2),
            cycle: vec![TxnId(1), TxnId(2), TxnId(1)],
        };
        assert!(e.to_string().contains("T1 -> T2 -> T1"));
    }
}
