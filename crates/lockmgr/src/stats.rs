//! Lock manager statistics.
//!
//! These counters quantify exactly the overheads the paper's evaluation
//! argues about qualitatively (§3.2.1, §4.6): number of locks requested and
//! held (administration overhead), number of compatibility tests (conflict
//! test overhead), waits (lost concurrency) and deadlocks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe statistics counters.
#[derive(Debug, Default)]
pub struct LockStats {
    /// Lock requests issued (including re-requests/conversions).
    pub requests: AtomicU64,
    /// Requests granted without waiting.
    pub immediate_grants: AtomicU64,
    /// Requests that had to wait at least once.
    pub waits: AtomicU64,
    /// Lock conversions (mode upgrades on an already-held resource).
    pub conversions: AtomicU64,
    /// Individual mode-compatibility tests performed.
    pub conflict_tests: AtomicU64,
    /// Deadlocks detected.
    pub deadlocks: AtomicU64,
    /// Releases (per resource).
    pub releases: AtomicU64,
    /// Snapshot deadlock-detector runs (one per new wait edge).
    pub detector_runs: AtomicU64,
    /// Targeted condvar notifications (per-resource wakeups on grant or
    /// victim verdict). Under the old global-condvar design every release
    /// woke every waiter; this counts how many wakeups the sharded table
    /// actually issues.
    pub wakeups: AtomicU64,
    /// High-water mark of resources present in the lock table.
    pub max_table_entries: AtomicU64,
    /// High-water mark of locks held by a single transaction.
    pub max_locks_per_txn: AtomicU64,
    /// Short IS/IX requests that entered the optimistic fast-path gate
    /// (every such request ends as exactly one fast-path hit or fallback,
    /// so `fastpath_hits + fastpath_fallbacks == intent_acquires`).
    pub intent_acquires: AtomicU64,
    /// Intent requests published by summary-word CAS (no shard mutex).
    pub fastpath_hits: AtomicU64,
    /// Summary-word CAS attempts that lost the race and re-validated.
    pub fastpath_retries: AtomicU64,
    /// Gate entries that fell back to the shard-mutex path (summary
    /// conflict, seal, waiters, saturation, conversion or retry exhaustion).
    pub fastpath_fallbacks: AtomicU64,
    /// Slot drains: a pessimistic S/SIX/X decision migrated outstanding
    /// optimistic intent grants into real table grants first.
    pub fastpath_drains: AtomicU64,
    /// Reads served by the multiversion overlay with no lock acquired at
    /// all: snapshot transactions never enter the table, so these reads
    /// appear in no other counter here. Bumped by `colock-txn`.
    pub reads_elided: AtomicU64,
    /// Sticky-saturated summary-slot count fields repaired after the slot's
    /// activity drained (the fast path works on the slot again).
    pub desaturations: AtomicU64,
    /// Blocking requests refused because the wait queue had already reached
    /// the adaptive wait-depth limit.
    pub wait_depth_refusals: AtomicU64,
}

impl LockStats {
    /// Bumps a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps a counter by `n`.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises a high-water mark to at least `value`.
    pub fn raise(counter: &AtomicU64, value: u64) {
        counter.fetch_max(value, Ordering::Relaxed);
    }

    /// Copies all counters into a plain snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            immediate_grants: self.immediate_grants.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            conversions: self.conversions.load(Ordering::Relaxed),
            conflict_tests: self.conflict_tests.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            detector_runs: self.detector_runs.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            max_table_entries: self.max_table_entries.load(Ordering::Relaxed),
            max_locks_per_txn: self.max_locks_per_txn.load(Ordering::Relaxed),
            intent_acquires: self.intent_acquires.load(Ordering::Relaxed),
            fastpath_hits: self.fastpath_hits.load(Ordering::Relaxed),
            fastpath_retries: self.fastpath_retries.load(Ordering::Relaxed),
            fastpath_fallbacks: self.fastpath_fallbacks.load(Ordering::Relaxed),
            fastpath_drains: self.fastpath_drains.load(Ordering::Relaxed),
            reads_elided: self.reads_elided.load(Ordering::Relaxed),
            desaturations: self.desaturations.load(Ordering::Relaxed),
            wait_depth_refusals: self.wait_depth_refusals.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.immediate_grants.store(0, Ordering::Relaxed);
        self.waits.store(0, Ordering::Relaxed);
        self.conversions.store(0, Ordering::Relaxed);
        self.conflict_tests.store(0, Ordering::Relaxed);
        self.deadlocks.store(0, Ordering::Relaxed);
        self.releases.store(0, Ordering::Relaxed);
        self.detector_runs.store(0, Ordering::Relaxed);
        self.wakeups.store(0, Ordering::Relaxed);
        self.max_table_entries.store(0, Ordering::Relaxed);
        self.max_locks_per_txn.store(0, Ordering::Relaxed);
        self.intent_acquires.store(0, Ordering::Relaxed);
        self.fastpath_hits.store(0, Ordering::Relaxed);
        self.fastpath_retries.store(0, Ordering::Relaxed);
        self.fastpath_fallbacks.store(0, Ordering::Relaxed);
        self.fastpath_drains.store(0, Ordering::Relaxed);
        self.reads_elided.store(0, Ordering::Relaxed);
        self.desaturations.store(0, Ordering::Relaxed);
        self.wait_depth_refusals.store(0, Ordering::Relaxed);
    }
}

/// Plain-data copy of [`LockStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Lock requests issued.
    pub requests: u64,
    /// Requests granted without waiting.
    pub immediate_grants: u64,
    /// Requests that waited.
    pub waits: u64,
    /// Lock conversions.
    pub conversions: u64,
    /// Mode-compatibility tests.
    pub conflict_tests: u64,
    /// Deadlocks detected.
    pub deadlocks: u64,
    /// Releases.
    pub releases: u64,
    /// Deadlock-detector runs.
    pub detector_runs: u64,
    /// Targeted per-resource wakeups issued.
    pub wakeups: u64,
    /// Max resources in the table.
    pub max_table_entries: u64,
    /// Max locks held by one transaction.
    pub max_locks_per_txn: u64,
    /// Short intent requests that entered the fast-path gate.
    pub intent_acquires: u64,
    /// Intent grants published by summary-word CAS.
    pub fastpath_hits: u64,
    /// Lost-CAS revalidations on the fast path.
    pub fastpath_retries: u64,
    /// Gate entries that fell back to the shard-mutex path.
    pub fastpath_fallbacks: u64,
    /// Optimistic-grant drains by pessimistic S/SIX/X decisions.
    pub fastpath_drains: u64,
    /// Reads served lock-free by the multiversion overlay.
    pub reads_elided: u64,
    /// Saturated summary fields repaired after draining.
    pub desaturations: u64,
    /// Blocking requests refused by the adaptive wait-depth limit.
    pub wait_depth_refusals: u64,
}

impl StatsSnapshot {
    /// Difference `self - earlier`, counter-wise (high-water marks keep the
    /// later value).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests - earlier.requests,
            immediate_grants: self.immediate_grants - earlier.immediate_grants,
            waits: self.waits - earlier.waits,
            conversions: self.conversions - earlier.conversions,
            conflict_tests: self.conflict_tests - earlier.conflict_tests,
            deadlocks: self.deadlocks - earlier.deadlocks,
            releases: self.releases - earlier.releases,
            detector_runs: self.detector_runs - earlier.detector_runs,
            wakeups: self.wakeups - earlier.wakeups,
            max_table_entries: self.max_table_entries,
            max_locks_per_txn: self.max_locks_per_txn,
            intent_acquires: self.intent_acquires - earlier.intent_acquires,
            fastpath_hits: self.fastpath_hits - earlier.fastpath_hits,
            fastpath_retries: self.fastpath_retries - earlier.fastpath_retries,
            fastpath_fallbacks: self.fastpath_fallbacks - earlier.fastpath_fallbacks,
            fastpath_drains: self.fastpath_drains - earlier.fastpath_drains,
            reads_elided: self.reads_elided - earlier.reads_elided,
            desaturations: self.desaturations - earlier.desaturations,
            wait_depth_refusals: self.wait_depth_refusals - earlier.wait_depth_refusals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = LockStats::default();
        LockStats::bump(&s.requests);
        LockStats::add(&s.conflict_tests, 5);
        LockStats::raise(&s.max_table_entries, 7);
        LockStats::raise(&s.max_table_entries, 3); // lower value must not win
        let snap = s.snapshot();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.conflict_tests, 5);
        assert_eq!(snap.max_table_entries, 7);
    }

    #[test]
    fn since_subtracts_counters() {
        let s = LockStats::default();
        LockStats::bump(&s.requests);
        let first = s.snapshot();
        LockStats::bump(&s.requests);
        LockStats::bump(&s.requests);
        let second = s.snapshot();
        assert_eq!(second.since(&first).requests, 2);
    }

    #[test]
    fn reset_clears_everything() {
        let s = LockStats::default();
        LockStats::bump(&s.waits);
        LockStats::bump(&s.fastpath_hits);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn fastpath_counters_roundtrip() {
        let s = LockStats::default();
        LockStats::add(&s.intent_acquires, 3);
        LockStats::bump(&s.fastpath_hits);
        LockStats::bump(&s.fastpath_retries);
        LockStats::add(&s.fastpath_fallbacks, 2);
        LockStats::bump(&s.fastpath_drains);
        let first = s.snapshot();
        assert_eq!(first.intent_acquires, first.fastpath_hits + first.fastpath_fallbacks);
        LockStats::bump(&s.fastpath_drains);
        assert_eq!(s.snapshot().since(&first).fastpath_drains, 1);
    }
}
