//! Lock modes and the multi-granularity compatibility/supremum matrices.
//!
//! The paper uses the System R modes (§3.1): **IS** and **IX** grant the right
//! to lock a descendant in S/X; **S** and **X** lock a subtree for shared or
//! exclusive use. We additionally provide **SIX** (= S + IX), the standard
//! supremum of S and IX from \[GLPT76\], so that lock conversions have a least
//! upper bound, and **NL** as the neutral element.
//!
//! # Semantic commutativity modes (DESIGN.md §13)
//!
//! On set- and list-valued HoLUs the classical lattice over-serializes:
//! two transactions inserting *distinct* elements into the same set commute,
//! yet whole-container X locks force them into a queue. Following the
//! operation-commutativity derivation of *Semantic Lock* we refine the intent
//! modes for containers:
//!
//! * **Member** — membership probe / single-element read intent. Conflict row
//!   identical to IS (container-level conflicts only with X).
//! * **Insert** — single-element insert intent. Conflict row identical to IX:
//!   compatible with every intent (two Inserts commute at container level)
//!   but not with whole-container S/SIX/X readers, which keeps phantom
//!   protection intact.
//! * **Delete** — single-element delete intent; same row as Insert.
//!
//! Element-key conflicts (Insert vs Member of the *same* element) are not
//! encoded in the container mode — they materialize as classical S/X locks on
//! the element sub-resource underneath, exactly like rule 1–4 descend.
//! Because the semantic rows equal the IS/IX rows, the summary-word classes
//! and the optimistic fast path generalize: Member rides the IS lane,
//! Insert/Delete the IX lane (see [`LockMode::fastpath_lane`]).

use std::fmt;

/// Multi-granularity lock modes ordered by increasing strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    /// No lock (neutral element; never stored in the table).
    NL,
    /// Intention share: intends S/IS locks further down.
    IS,
    /// Semantic membership intent on a set/list HoLU: intends an S lock on
    /// one element. Conflict row = IS.
    Member,
    /// Semantic insert intent on a set/list HoLU: intends an X lock on one
    /// *new* element. Conflict row = IX; two Inserts commute.
    Insert,
    /// Semantic delete intent on a set/list HoLU: intends an X lock on one
    /// existing element. Conflict row = IX.
    Delete,
    /// Intention exclusive: intends any lock further down.
    IX,
    /// Share: the subtree may be read; implicitly S-locks all descendants.
    S,
    /// Share + intention exclusive.
    SIX,
    /// Exclusive: the subtree may be read and written.
    X,
}

impl LockMode {
    /// All real modes (excluding NL), weakest first.
    pub const ALL: [LockMode; 8] = [
        LockMode::IS,
        LockMode::Member,
        LockMode::Insert,
        LockMode::Delete,
        LockMode::IX,
        LockMode::S,
        LockMode::SIX,
        LockMode::X,
    ];

    /// Compatibility matrix: \[GLPT76\] extended by the semantic rows.
    /// Symmetric. `MB`/`IN`/`DL` share the IS/IX/IX rows respectively.
    ///
    /// ```text
    ///        IS   MB   IN   DL   IX   S    SIX  X
    ///   IS   +    +    +    +    +    +    +    -
    ///   MB   +    +    +    +    +    +    +    -
    ///   IN   +    +    +    +    +    -    -    -
    ///   DL   +    +    +    +    +    -    -    -
    ///   IX   +    +    +    +    +    -    -    -
    ///   S    +    +    -    -    -    +    -    -
    ///   SIX  +    +    -    -    -    -    -    -
    ///   X    -    -    -    -    -    -    -    -
    /// ```
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (NL, _) | (_, NL) => true,
            // The read-intent row (IS and Member): everything but X.
            (IS | Member, X) | (X, IS | Member) => false,
            (IS | Member, _) | (_, IS | Member) => true,
            // The write-intent row (IX, Insert, Delete): intents only.
            (IX | Insert | Delete, IX | Insert | Delete) => true,
            (IX | Insert | Delete, _) | (_, IX | Insert | Delete) => false,
            (S, S) => true,
            (S, _) | (_, S) => false,
            _ => false, // SIX/X vs SIX/X
        }
    }

    /// Least upper bound in the mode lattice (used for lock conversion).
    ///
    /// Hasse diagram of the enlarged lattice:
    ///
    /// ```text
    ///                X
    ///                |
    ///               SIX
    ///              /   \
    ///             S     IX
    ///              \   / | \
    ///              Member Insert Delete
    ///                 \   |   /
    ///                    IS
    ///                    |
    ///                    NL
    /// ```
    ///
    /// (Member sits below both S and IX; Insert and Delete below IX only —
    /// mixing any two distinct write intents, or Member with a write intent,
    /// joins to IX; `join(IX, S) = SIX` as in \[GLPT76\].)
    pub fn join(self, other: LockMode) -> LockMode {
        use LockMode::*;
        match (self, other) {
            (NL, m) | (m, NL) => m,
            (IS, m) | (m, IS) => m,
            (X, _) | (_, X) => X,
            (SIX, _) | (_, SIX) => SIX,
            // S absorbs Member, joins any write intent to SIX.
            (S, S) | (S, Member) | (Member, S) => S,
            (S, _) | (_, S) => SIX,
            // IX absorbs every semantic intent.
            (IX, _) | (_, IX) => IX,
            (Member, Member) => Member,
            (Insert, Insert) => Insert,
            (Delete, Delete) => Delete,
            // Distinct semantic intents escalate to the classical IX.
            (Member | Insert | Delete, Member | Insert | Delete) => IX,
        }
    }

    /// `true` iff `self` grants at least the rights of `needed`
    /// (lattice order; e.g. X covers S, SIX covers IX, every mode covers NL).
    pub fn covers(self, needed: LockMode) -> bool {
        self.join(needed) == self
    }

    /// Whether this is a pure intention mode (locks nothing itself). The
    /// semantic container modes are refined intents: they grant element
    /// rights below, never access to the container value itself.
    pub fn is_intent(self) -> bool {
        matches!(
            self,
            LockMode::IS | LockMode::IX | LockMode::Member | LockMode::Insert | LockMode::Delete
        )
    }

    /// Whether this is one of the semantic commutativity modes.
    pub fn is_semantic(self) -> bool {
        matches!(self, LockMode::Member | LockMode::Insert | LockMode::Delete)
    }

    /// Whether this mode allows reading the locked subtree itself.
    pub fn allows_read(self) -> bool {
        matches!(self, LockMode::S | LockMode::SIX | LockMode::X)
    }

    /// Whether this mode allows writing the locked subtree itself.
    pub fn allows_write(self) -> bool {
        matches!(self, LockMode::X)
    }

    /// The intention mode required on ancestors before requesting `self`
    /// (protocol rules 1–4: S/IS need IS on parents, X/IX need IX; the
    /// semantic modes inherit the requirement of the classical row they
    /// refine — Member needs IS above, Insert/Delete need IX).
    pub fn required_parent_intent(self) -> LockMode {
        match self {
            LockMode::NL => LockMode::NL,
            LockMode::IS | LockMode::S | LockMode::Member => LockMode::IS,
            LockMode::IX
            | LockMode::SIX
            | LockMode::X
            | LockMode::Insert
            | LockMode::Delete => LockMode::IX,
        }
    }

    /// Whether holding `self` on an ancestor satisfies a protocol requirement
    /// for `required` intent there, *without a conversion*. This is coverage
    /// plus the semantic refinement: Insert/Delete conflict exactly like IX,
    /// so a descendant element-X under a container held in Insert needs no
    /// upgrade of the container to IX (which would serialize the inserters
    /// the semantic mode exists to keep parallel). Member covers IS outright.
    pub fn satisfies_parent_intent(self, required: LockMode) -> bool {
        self.covers(required)
            || (required == LockMode::IX
                && matches!(self, LockMode::Insert | LockMode::Delete))
    }

    /// Whether grants in this mode are counted in the *share class* of the
    /// lock table's mode-summary words: S and SIX — the modes whose presence
    /// excludes optimistic IX publication but still admits IS.
    pub fn is_share_class(self) -> bool {
        matches!(self, LockMode::S | LockMode::SIX)
    }

    /// Whether grants in this mode are counted in the *exclusive class* of
    /// the summary words: X alone — its presence excludes every optimistic
    /// intent. Intent modes belong to neither class (two intents never
    /// conflict), which is what makes the optimistic fast path sound.
    pub fn is_exclusive_class(self) -> bool {
        matches!(self, LockMode::X)
    }

    /// The classical intent whose optimistic fast-path lane this mode
    /// publishes on: Member rides the IS (read-intent) lane, Insert/Delete
    /// the IX (write-intent) lane — sound because each lane's modes are
    /// mutually compatible and share one conflict row. `None` for
    /// non-intent modes (they never take the fast path).
    pub fn fastpath_lane(self) -> Option<LockMode> {
        match self {
            LockMode::IS | LockMode::Member => Some(LockMode::IS),
            LockMode::IX | LockMode::Insert | LockMode::Delete => Some(LockMode::IX),
            _ => None,
        }
    }

    /// The mode a descendant is *implicitly* locked in when an ancestor holds
    /// `self` on the same path: S and SIX imply S below; X implies X below.
    /// Intents (classical and semantic) imply nothing.
    pub fn implicit_descendant(self) -> LockMode {
        match self {
            LockMode::S | LockMode::SIX => LockMode::S,
            LockMode::X => LockMode::X,
            _ => LockMode::NL,
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockMode::NL => "NL",
            LockMode::IS => "IS",
            LockMode::IX => "IX",
            LockMode::S => "S",
            LockMode::SIX => "SIX",
            LockMode::X => "X",
            LockMode::Member => "MB",
            LockMode::Insert => "IN",
            LockMode::Delete => "DL",
        };
        f.write_str(s)
    }
}

impl colock_testkit::codec::FieldCodec for LockMode {
    fn to_field(&self) -> String {
        self.to_string()
    }

    fn from_field(field: &str) -> Result<Self, colock_testkit::codec::CodecError> {
        match field {
            "NL" => Ok(LockMode::NL),
            "IS" => Ok(LockMode::IS),
            "IX" => Ok(LockMode::IX),
            "S" => Ok(LockMode::S),
            "SIX" => Ok(LockMode::SIX),
            "X" => Ok(LockMode::X),
            "MB" => Ok(LockMode::Member),
            "IN" => Ok(LockMode::Insert),
            "DL" => Ok(LockMode::Delete),
            _ => Err(colock_testkit::codec::CodecError::BadField {
                field: field.to_string(),
                expected: "LockMode",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::LockMode::*;
    use super::*;

    const MATRIX: [(LockMode, LockMode, bool); 36] = [
        (IS, IS, true),
        (IS, Member, true),
        (IS, Insert, true),
        (IS, Delete, true),
        (IS, IX, true),
        (IS, S, true),
        (IS, SIX, true),
        (IS, X, false),
        (Member, Member, true),
        (Member, Insert, true),
        (Member, Delete, true),
        (Member, IX, true),
        (Member, S, true),
        (Member, SIX, true),
        (Member, X, false),
        (Insert, Insert, true),
        (Insert, Delete, true),
        (Insert, IX, true),
        (Insert, S, false),
        (Insert, SIX, false),
        (Insert, X, false),
        (Delete, Delete, true),
        (Delete, IX, true),
        (Delete, S, false),
        (Delete, SIX, false),
        (Delete, X, false),
        (IX, IX, true),
        (IX, S, false),
        (IX, SIX, false),
        (IX, X, false),
        (S, S, true),
        (S, SIX, false),
        (S, X, false),
        (SIX, SIX, false),
        (SIX, X, false),
        (X, X, false),
    ];

    #[test]
    fn compatibility_matches_glpt76_plus_semantic_rows() {
        for &(a, b, want) in &MATRIX {
            assert_eq!(a.compatible(b), want, "{a} vs {b}");
            assert_eq!(b.compatible(a), want, "symmetry {b} vs {a}");
        }
        // The test table is exhaustive over the upper triangle.
        assert_eq!(MATRIX.len(), LockMode::ALL.len() * (LockMode::ALL.len() + 1) / 2);
    }

    #[test]
    fn semantic_rows_equal_their_classical_rows() {
        // The soundness argument for the fast-path lanes and the summary
        // classes rests on exactly this: Member conflicts like IS,
        // Insert/Delete conflict like IX.
        for m in LockMode::ALL {
            assert_eq!(Member.compatible(m), IS.compatible(m), "MB vs {m}");
            assert_eq!(Insert.compatible(m), IX.compatible(m), "IN vs {m}");
            assert_eq!(Delete.compatible(m), IX.compatible(m), "DL vs {m}");
        }
    }

    #[test]
    fn nl_is_compatible_with_everything() {
        for m in LockMode::ALL {
            assert!(NL.compatible(m));
            assert!(m.compatible(NL));
        }
    }

    fn all_with_nl() -> Vec<LockMode> {
        let mut v = vec![NL];
        v.extend(LockMode::ALL);
        v
    }

    #[test]
    fn join_is_commutative_idempotent_with_nl_identity() {
        let all = all_with_nl();
        for &a in &all {
            assert_eq!(a.join(NL), a);
            assert_eq!(a.join(a), a);
            for &b in &all {
                assert_eq!(a.join(b), b.join(a), "{a} join {b}");
            }
        }
    }

    #[test]
    fn join_is_associative() {
        let all = all_with_nl();
        for &a in &all {
            for &b in &all {
                for &c in &all {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)), "({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn join_of_s_and_ix_is_six() {
        assert_eq!(S.join(IX), SIX);
        assert_eq!(IX.join(S), SIX);
    }

    #[test]
    fn semantic_joins_follow_the_hasse_diagram() {
        assert_eq!(Member.join(Insert), IX);
        assert_eq!(Insert.join(Delete), IX);
        assert_eq!(Member.join(Delete), IX);
        assert_eq!(Member.join(S), S);
        assert_eq!(Member.join(IX), IX);
        assert_eq!(Insert.join(IX), IX);
        assert_eq!(Insert.join(S), SIX);
        assert_eq!(Delete.join(S), SIX);
        assert_eq!(Insert.join(IS), Insert);
        assert_eq!(Member.join(IS), Member);
        assert_eq!(Delete.join(SIX), SIX);
        assert_eq!(Member.join(X), X);
    }

    #[test]
    fn covers_is_lattice_order() {
        assert!(X.covers(S) && X.covers(IX) && X.covers(SIX) && X.covers(IS));
        assert!(SIX.covers(S) && SIX.covers(IX) && SIX.covers(IS));
        assert!(!S.covers(IX) && !IX.covers(S));
        assert!(S.covers(IS) && IX.covers(IS));
        // Semantic modes sit between IS and S/IX.
        assert!(Member.covers(IS) && Insert.covers(IS) && Delete.covers(IS));
        assert!(S.covers(Member) && IX.covers(Member));
        assert!(IX.covers(Insert) && IX.covers(Delete));
        assert!(!Insert.covers(Member) && !Member.covers(Insert));
        assert!(!Insert.covers(Delete) && !Delete.covers(Insert));
        assert!(!S.covers(Insert) && !Member.covers(S));
        for m in LockMode::ALL {
            assert!(m.covers(NL) && m.covers(m));
        }
    }

    #[test]
    fn stronger_mode_conflicts_with_superset_of_weaker() {
        // monotonicity: for all c: b covers a and b compatible c => a
        // compatible c (strength only removes compatibility).
        for a in LockMode::ALL {
            for b in LockMode::ALL {
                if b.covers(a) {
                    for c in LockMode::ALL {
                        if b.compatible(c) {
                            assert!(a.compatible(c), "{a} <= {b} but {a} !~ {c}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn parent_intents_follow_protocol_rules() {
        assert_eq!(S.required_parent_intent(), IS);
        assert_eq!(IS.required_parent_intent(), IS);
        assert_eq!(Member.required_parent_intent(), IS);
        assert_eq!(X.required_parent_intent(), IX);
        assert_eq!(IX.required_parent_intent(), IX);
        assert_eq!(SIX.required_parent_intent(), IX);
        assert_eq!(Insert.required_parent_intent(), IX);
        assert_eq!(Delete.required_parent_intent(), IX);
    }

    #[test]
    fn parent_intent_is_monotone() {
        for a in LockMode::ALL {
            for b in LockMode::ALL {
                if b.covers(a) {
                    assert!(
                        b.required_parent_intent().covers(a.required_parent_intent()),
                        "{a} <= {b} but intents not ordered"
                    );
                }
            }
        }
    }

    #[test]
    fn satisfies_parent_intent_refines_covers() {
        // Coverage always satisfies…
        for a in LockMode::ALL {
            for b in LockMode::ALL {
                if a.covers(b) {
                    assert!(a.satisfies_parent_intent(b), "{a} covers {b}");
                }
            }
        }
        // …and the only extra admissions are the write intents standing in
        // for IX (their conflict row is IX's row, so no third transaction
        // can distinguish them from a real IX holder).
        assert!(Insert.satisfies_parent_intent(IX));
        assert!(Delete.satisfies_parent_intent(IX));
        assert!(Member.satisfies_parent_intent(IS));
        assert!(!Member.satisfies_parent_intent(IX));
        assert!(!Insert.satisfies_parent_intent(S));
        assert!(!IS.satisfies_parent_intent(IX));
        for a in LockMode::ALL {
            for b in LockMode::ALL {
                if a.satisfies_parent_intent(b) && !a.covers(b) {
                    assert!(matches!(a, Insert | Delete) && b == IX, "{a} for {b}");
                }
            }
        }
    }

    #[test]
    fn implicit_descendant_modes() {
        assert_eq!(S.implicit_descendant(), S);
        assert_eq!(SIX.implicit_descendant(), S);
        assert_eq!(X.implicit_descendant(), X);
        assert_eq!(IX.implicit_descendant(), NL);
        assert_eq!(IS.implicit_descendant(), NL);
        assert_eq!(Member.implicit_descendant(), NL);
        assert_eq!(Insert.implicit_descendant(), NL);
        assert_eq!(Delete.implicit_descendant(), NL);
    }

    #[test]
    fn summary_classes_agree_with_the_matrix() {
        // The summary word admits an optimistic intent iff the compatibility
        // matrix does: the IS lane conflicts exactly with the exclusive
        // class, the IX lane with both classes. Derived, so a matrix change
        // cannot silently break the fast path's admission test.
        for m in LockMode::ALL {
            assert_eq!(IS.compatible(m), !m.is_exclusive_class(), "IS vs {m}");
            assert_eq!(
                IX.compatible(m),
                !m.is_exclusive_class() && !m.is_share_class(),
                "IX vs {m}"
            );
        }
        // Every lane member conflicts exactly like its lane's classical row.
        for m in LockMode::ALL {
            if let Some(lane) = m.fastpath_lane() {
                for o in LockMode::ALL {
                    assert_eq!(m.compatible(o), lane.compatible(o), "{m} lane {lane} vs {o}");
                }
            }
        }
        // The two classes partition the non-intent modes.
        for m in LockMode::ALL {
            assert_eq!(m.is_share_class() || m.is_exclusive_class(), !m.is_intent());
            assert!(!(m.is_share_class() && m.is_exclusive_class()));
        }
    }

    #[test]
    fn fastpath_lanes_cover_exactly_the_intents() {
        for m in LockMode::ALL {
            assert_eq!(m.fastpath_lane().is_some(), m.is_intent(), "{m}");
        }
        assert_eq!(Member.fastpath_lane(), Some(IS));
        assert_eq!(Insert.fastpath_lane(), Some(IX));
        assert_eq!(Delete.fastpath_lane(), Some(IX));
        assert_eq!(IS.fastpath_lane(), Some(IS));
        assert_eq!(IX.fastpath_lane(), Some(IX));
    }

    #[test]
    fn read_write_predicates() {
        assert!(S.allows_read() && !S.allows_write());
        assert!(X.allows_read() && X.allows_write());
        assert!(SIX.allows_read() && !SIX.allows_write());
        assert!(!IS.allows_read() && !IX.allows_read());
        assert!(IS.is_intent() && IX.is_intent() && !S.is_intent() && !SIX.is_intent());
        // Semantic modes are intents: no access to the container itself.
        for m in [Member, Insert, Delete] {
            assert!(m.is_intent() && m.is_semantic());
            assert!(!m.allows_read() && !m.allows_write());
        }
        assert!(!IS.is_semantic() && !IX.is_semantic() && !X.is_semantic());
    }

    #[test]
    fn codec_roundtrips_all_modes() {
        use colock_testkit::codec::FieldCodec;
        let mut all = vec![NL];
        all.extend(LockMode::ALL);
        for m in all {
            assert_eq!(LockMode::from_field(&m.to_field()).unwrap(), m);
        }
        assert!(LockMode::from_field("QQ").is_err());
    }
}
