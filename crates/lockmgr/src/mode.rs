//! Lock modes and the multi-granularity compatibility/supremum matrices.
//!
//! The paper uses the System R modes (§3.1): **IS** and **IX** grant the right
//! to lock a descendant in S/X; **S** and **X** lock a subtree for shared or
//! exclusive use. We additionally provide **SIX** (= S + IX), the standard
//! supremum of S and IX from \[GLPT76\], so that lock conversions have a least
//! upper bound, and **NL** as the neutral element.

use std::fmt;

/// Multi-granularity lock modes ordered by increasing strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    /// No lock (neutral element; never stored in the table).
    NL,
    /// Intention share: intends S/IS locks further down.
    IS,
    /// Intention exclusive: intends any lock further down.
    IX,
    /// Share: the subtree may be read; implicitly S-locks all descendants.
    S,
    /// Share + intention exclusive.
    SIX,
    /// Exclusive: the subtree may be read and written.
    X,
}

impl LockMode {
    /// All real modes (excluding NL), weakest first.
    pub const ALL: [LockMode; 5] =
        [LockMode::IS, LockMode::IX, LockMode::S, LockMode::SIX, LockMode::X];

    /// Compatibility matrix of \[GLPT76\]. Symmetric.
    ///
    /// ```text
    ///        IS   IX   S    SIX  X
    ///   IS   +    +    +    +    -
    ///   IX   +    +    -    -    -
    ///   S    +    -    +    -    -
    ///   SIX  +    -    -    -    -
    ///   X    -    -    -    -    -
    /// ```
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (NL, _) | (_, NL) => true,
            (IS, X) | (X, IS) => false,
            (IS, _) | (_, IS) => true,
            (IX, IX) => true,
            (IX, _) | (_, IX) => false,
            (S, S) => true,
            (S, _) | (_, S) => false,
            _ => false, // SIX/X vs SIX/X
        }
    }

    /// Least upper bound in the mode lattice (used for lock conversion):
    /// `NL < IS < {IX, S} < SIX < X`, `join(IX, S) = SIX`.
    pub fn join(self, other: LockMode) -> LockMode {
        use LockMode::*;
        match (self, other) {
            (NL, m) | (m, NL) => m,
            (IS, m) | (m, IS) => m,
            (IX, IX) => IX,
            (IX, S) | (S, IX) => SIX,
            (S, S) => S,
            (X, _) | (_, X) => X,
            (SIX, _) | (_, SIX) => SIX,
        }
    }

    /// `true` iff `self` grants at least the rights of `needed`
    /// (lattice order; e.g. X covers S, SIX covers IX, every mode covers NL).
    pub fn covers(self, needed: LockMode) -> bool {
        self.join(needed) == self
    }

    /// Whether this is a pure intention mode (locks nothing itself).
    pub fn is_intent(self) -> bool {
        matches!(self, LockMode::IS | LockMode::IX)
    }

    /// Whether this mode allows reading the locked subtree itself.
    pub fn allows_read(self) -> bool {
        matches!(self, LockMode::S | LockMode::SIX | LockMode::X)
    }

    /// Whether this mode allows writing the locked subtree itself.
    pub fn allows_write(self) -> bool {
        matches!(self, LockMode::X)
    }

    /// The intention mode required on ancestors before requesting `self`
    /// (protocol rules 1–4: S/IS need IS on parents, X/IX need IX).
    pub fn required_parent_intent(self) -> LockMode {
        match self {
            LockMode::NL => LockMode::NL,
            LockMode::IS | LockMode::S => LockMode::IS,
            LockMode::IX | LockMode::SIX | LockMode::X => LockMode::IX,
        }
    }

    /// Whether grants in this mode are counted in the *share class* of the
    /// lock table's mode-summary words: S and SIX — the modes whose presence
    /// excludes optimistic IX publication but still admits IS.
    pub fn is_share_class(self) -> bool {
        matches!(self, LockMode::S | LockMode::SIX)
    }

    /// Whether grants in this mode are counted in the *exclusive class* of
    /// the summary words: X alone — its presence excludes every optimistic
    /// intent. Intent modes belong to neither class (two intents never
    /// conflict), which is what makes the optimistic fast path sound.
    pub fn is_exclusive_class(self) -> bool {
        matches!(self, LockMode::X)
    }

    /// The mode a descendant is *implicitly* locked in when an ancestor holds
    /// `self` on the same path: S and SIX imply S below; X implies X below.
    pub fn implicit_descendant(self) -> LockMode {
        match self {
            LockMode::S | LockMode::SIX => LockMode::S,
            LockMode::X => LockMode::X,
            _ => LockMode::NL,
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockMode::NL => "NL",
            LockMode::IS => "IS",
            LockMode::IX => "IX",
            LockMode::S => "S",
            LockMode::SIX => "SIX",
            LockMode::X => "X",
        };
        f.write_str(s)
    }
}

impl colock_testkit::codec::FieldCodec for LockMode {
    fn to_field(&self) -> String {
        self.to_string()
    }

    fn from_field(field: &str) -> Result<Self, colock_testkit::codec::CodecError> {
        match field {
            "NL" => Ok(LockMode::NL),
            "IS" => Ok(LockMode::IS),
            "IX" => Ok(LockMode::IX),
            "S" => Ok(LockMode::S),
            "SIX" => Ok(LockMode::SIX),
            "X" => Ok(LockMode::X),
            _ => Err(colock_testkit::codec::CodecError::BadField {
                field: field.to_string(),
                expected: "LockMode",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::LockMode::*;
    use super::*;

    const MATRIX: [(LockMode, LockMode, bool); 15] = [
        (IS, IS, true),
        (IS, IX, true),
        (IS, S, true),
        (IS, SIX, true),
        (IS, X, false),
        (IX, IX, true),
        (IX, S, false),
        (IX, SIX, false),
        (IX, X, false),
        (S, S, true),
        (S, SIX, false),
        (S, X, false),
        (SIX, SIX, false),
        (SIX, X, false),
        (X, X, false),
    ];

    #[test]
    fn compatibility_matches_glpt76() {
        for &(a, b, want) in &MATRIX {
            assert_eq!(a.compatible(b), want, "{a} vs {b}");
            assert_eq!(b.compatible(a), want, "symmetry {b} vs {a}");
        }
    }

    #[test]
    fn nl_is_compatible_with_everything() {
        for m in LockMode::ALL {
            assert!(NL.compatible(m));
            assert!(m.compatible(NL));
        }
    }

    #[test]
    fn join_is_commutative_idempotent_with_nl_identity() {
        let all = [NL, IS, IX, S, SIX, X];
        for &a in &all {
            assert_eq!(a.join(NL), a);
            assert_eq!(a.join(a), a);
            for &b in &all {
                assert_eq!(a.join(b), b.join(a), "{a} join {b}");
            }
        }
    }

    #[test]
    fn join_is_associative() {
        let all = [NL, IS, IX, S, SIX, X];
        for &a in &all {
            for &b in &all {
                for &c in &all {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)), "({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn join_of_s_and_ix_is_six() {
        assert_eq!(S.join(IX), SIX);
        assert_eq!(IX.join(S), SIX);
    }

    #[test]
    fn covers_is_lattice_order() {
        assert!(X.covers(S) && X.covers(IX) && X.covers(SIX) && X.covers(IS));
        assert!(SIX.covers(S) && SIX.covers(IX) && SIX.covers(IS));
        assert!(!S.covers(IX) && !IX.covers(S));
        assert!(S.covers(IS) && IX.covers(IS));
        for m in LockMode::ALL {
            assert!(m.covers(NL) && m.covers(m));
        }
    }

    #[test]
    fn stronger_mode_conflicts_with_superset_of_weaker() {
        // monotonicity: if a is covered by b, anything incompatible with a
        // that b doesn't cover… simpler: for all c: b compatible c => a
        // compatible c (strength only removes compatibility).
        let all = [IS, IX, S, SIX, X];
        for &a in &all {
            for &b in &all {
                if b.covers(a) {
                    for &c in &all {
                        if b.compatible(c) {
                            assert!(a.compatible(c), "{a} <= {b} but {a} !~ {c}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn parent_intents_follow_protocol_rules() {
        assert_eq!(S.required_parent_intent(), IS);
        assert_eq!(IS.required_parent_intent(), IS);
        assert_eq!(X.required_parent_intent(), IX);
        assert_eq!(IX.required_parent_intent(), IX);
        assert_eq!(SIX.required_parent_intent(), IX);
    }

    #[test]
    fn implicit_descendant_modes() {
        assert_eq!(S.implicit_descendant(), S);
        assert_eq!(SIX.implicit_descendant(), S);
        assert_eq!(X.implicit_descendant(), X);
        assert_eq!(IX.implicit_descendant(), NL);
        assert_eq!(IS.implicit_descendant(), NL);
    }

    #[test]
    fn summary_classes_agree_with_the_matrix() {
        // The summary word admits an optimistic intent iff the compatibility
        // matrix does: IS conflicts exactly with the exclusive class, IX with
        // both classes. Derived, so a matrix change cannot silently break the
        // fast path's admission test.
        for m in LockMode::ALL {
            assert_eq!(IS.compatible(m), !m.is_exclusive_class(), "IS vs {m}");
            assert_eq!(
                IX.compatible(m),
                !m.is_exclusive_class() && !m.is_share_class(),
                "IX vs {m}"
            );
        }
        // The two classes partition the non-intent modes.
        for m in LockMode::ALL {
            assert_eq!(m.is_share_class() || m.is_exclusive_class(), !m.is_intent());
            assert!(!(m.is_share_class() && m.is_exclusive_class()));
        }
    }

    #[test]
    fn read_write_predicates() {
        assert!(S.allows_read() && !S.allows_write());
        assert!(X.allows_read() && X.allows_write());
        assert!(SIX.allows_read() && !SIX.allows_write());
        assert!(!IS.allows_read() && !IX.allows_read());
        assert!(IS.is_intent() && IX.is_intent() && !S.is_intent() && !SIX.is_intent());
    }
}
