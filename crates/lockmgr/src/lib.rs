#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # `colock-lockmgr` — a transaction-oriented multi-granularity lock manager
//!
//! This crate implements the lock-manager substrate underneath the paper's
//! protocol: the classic Gray/Lorie/Putzolu/Traiger multi-granularity lock
//! modes **IS, IX, S, SIX, X** (\[GLP75\], \[GLPT76\]) with
//!
//! * a lock table keyed by arbitrary resource identifiers (the protocol layer
//!   uses hierarchical instance paths),
//! * FIFO wait queues with conversion (upgrade) priority,
//! * waits-for-graph deadlock detection with youngest-victim selection,
//! * *long locks* (§3.1/\[KSUW85\]): locks flagged long survive a simulated
//!   system shutdown/crash via the [`persistent`] append-only journal
//!   (crash-safe, checksummed) or whole-image snapshots (planned shutdowns),
//! * detailed statistics (lock-table entries, conflict tests, waits,
//!   deadlocks) — the quantities the paper's qualitative evaluation (§4.6)
//!   argues about; the experiment harness measures them.
//!
//! Locks here are *transaction-oriented* (§1): they are held until explicitly
//! released, normally at end-of-transaction; action-oriented (latch-style)
//! locks are out of scope, exactly as in the paper.

pub mod adaptive;
pub mod error;
pub mod mode;
pub mod persistent;
pub mod stats;
pub mod table;
pub mod txnid;

pub use adaptive::AdaptivePolicy;
pub use error::LockError;
pub use mode::LockMode;
pub use persistent::{
    Journal, JournalCrash, JournalError, JournalOp, JournalSink, LongLockImage, Recovered,
};
pub use stats::{LockStats, StatsSnapshot};
pub use table::{AcquireOutcome, LockManager, LockRequestOptions, WaitPolicy};
pub use txnid::{TxnId, TxnIdGen};

/// Result alias for lock operations.
pub type Result<T> = std::result::Result<T, LockError>;
