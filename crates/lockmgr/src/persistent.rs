//! Persistence of *long locks* across simulated shutdowns and crashes.
//!
//! §3.1: "Complex objects which are checked-out by a user on a workstation
//! get a long lock. In contrast to traditional short locks, long locks must
//! survive system shutdowns and system crashes." Two mechanisms live here:
//!
//! * [`LongLockImage`] — the original whole-image snapshot/restore pair,
//!   kept for planned shutdowns and for tests: a manual capture of every
//!   grant flagged `long`, restorable into a fresh [`LockManager`]. A
//!   snapshot only protects locks that existed *at capture time* — a crash
//!   between check-out and capture loses the lock.
//! * [`Journal`] — the crash-safe replacement: an **append-only, checksummed,
//!   versioned log** with one record per grant/conversion/release of a long
//!   lock, written *before* the operation is acknowledged. Replaying the
//!   journal after a crash yields exactly the set of long locks that were
//!   durably granted ([`Recovered`]); a torn final record (the crash struck
//!   mid-write) is truncated and reported via [`Recovered::dropped_tail`],
//!   never silently re-adopted.
//!
//! Short locks — by design — do not survive either mechanism.
//!
//! # Journal format
//!
//! Line-oriented ([`colock_testkit::codec`]): a `colock-journal v1` header,
//! then one record per line:
//!
//! ```text
//! op \t resource \t owner \t mode \t crc
//! ```
//!
//! `op` is `grant`, `convert` or `release`; `crc` is the CRC-32 (IEEE) of
//! the escaped record text up to (excluding) the crc's own tab, in lowercase
//! hex. Replay rules:
//!
//! * a record whose line is complete and whose CRC verifies is applied
//!   (`grant`/`convert` join the mode into the owner's lock, `release`
//!   removes it),
//! * empty lines are skipped,
//! * a trailing run of damaged records (torn line without a newline, CRC
//!   mismatch, unparseable fields) is truncated and counted in
//!   [`Recovered::dropped_tail`] — those operations were never acknowledged,
//! * damage *followed by* valid records is not a torn tail but medium
//!   corruption: replay refuses with a [`JournalError`] rather than guess.

use crate::mode::LockMode;
use crate::table::{LockManager, Resource};
use crate::txnid::TxnId;
use colock_testkit::codec::{self, CodecError, FieldCodec};
use colock_testkit::fault::{CrashPoint, FaultPlan};
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Header line of the persisted image format.
const HEADER: &str = "colock-long-locks v1";

/// Header line of the append-only journal format.
const JOURNAL_HEADER: &str = "colock-journal v1";

/// Serializable snapshot of all long locks in a lock manager.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LongLockImage<R> {
    /// `(resource, owner, mode)` triples.
    pub entries: Vec<(R, TxnId, LockMode)>,
}

impl<R: Resource> LongLockImage<R> {
    /// Captures all long locks currently granted in `mgr`.
    pub fn capture(mgr: &LockManager<R>) -> Self {
        let mut entries = Vec::new();
        mgr.for_each_grant(|r, txn, mode, long| {
            if long {
                entries.push((r.clone(), txn, mode));
            }
        });
        // Deterministic order for comparisons and round-trips. The resource
        // must participate: one txn holding several long locks in the same
        // mode would otherwise sort to a shard-iteration-dependent order.
        entries.sort_by_cached_key(|a| (a.1, a.2, format!("{:?}", a.0)));
        LongLockImage { entries }
    }

    /// Re-installs the captured long locks into a (fresh) lock manager.
    pub fn restore(&self, mgr: &LockManager<R>) {
        for (r, txn, mode) in &self.entries {
            mgr.install_recovered(*txn, r.clone(), *mode);
        }
    }

    /// Number of persisted locks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<R: Resource + FieldCodec> LongLockImage<R> {
    /// Encodes the image into its persisted text form (§3.1's "long locks
    /// must survive system shutdowns and system crashes" — this is the
    /// representation that survives).
    pub fn to_lines(&self) -> String {
        let mut out = String::with_capacity(32 + self.entries.len() * 24);
        out.push_str(HEADER);
        out.push('\n');
        for (resource, txn, mode) in &self.entries {
            out.push_str(&codec::encode_record(&[
                resource.to_field(),
                txn.to_field(),
                mode.to_field(),
            ]));
            out.push('\n');
        }
        out
    }

    /// Decodes an image previously produced by [`Self::to_lines`].
    pub fn from_lines(text: &str) -> Result<Self, CodecError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(HEADER) => {}
            other => return Err(CodecError::BadHeader(other.unwrap_or("").to_string())),
        }
        let mut entries = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let fields = codec::decode_record(line)?;
            codec::expect_arity(&fields, 3)?;
            entries.push((
                R::from_field(&fields[0])?,
                TxnId::from_field(&fields[1])?,
                LockMode::from_field(&fields[2])?,
            ));
        }
        Ok(LongLockImage { entries })
    }
}

// ----- journal --------------------------------------------------------------

/// One journaled long-lock operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalOp {
    /// A new long grant (owner did not hold the resource).
    Grant,
    /// A conversion of an existing long lock; the recorded mode is the
    /// conversion *target* (already the join of held and requested).
    Convert,
    /// The long lock was released.
    Release,
}

impl JournalOp {
    fn as_str(self) -> &'static str {
        match self {
            JournalOp::Grant => "grant",
            JournalOp::Convert => "convert",
            JournalOp::Release => "release",
        }
    }

    fn parse(s: &str) -> Option<JournalOp> {
        match s {
            "grant" => Some(JournalOp::Grant),
            "convert" => Some(JournalOp::Convert),
            "release" => Some(JournalOp::Release),
            _ => None,
        }
    }
}

impl fmt::Display for JournalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The journal's simulated medium crashed during an append (fault
/// injection): the operation was not acknowledged and the whole system must
/// be treated as down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalCrash {
    /// Where in the append the crash struck.
    pub point: CrashPoint,
}

/// Where the lock manager writes long-lock records. Implemented by
/// [`Journal`]; a trait so the manager stays decoupled from the medium and
/// tests can substitute their own sink.
pub trait JournalSink<R>: Send + Sync {
    /// Appends one record. `Err` means the medium crashed mid-append and the
    /// operation must not be acknowledged to the caller.
    fn record(
        &self,
        op: JournalOp,
        txn: TxnId,
        resource: &R,
        mode: LockMode,
    ) -> Result<(), JournalCrash>;
}

/// Replay failure: the journal text is damaged in a way a single torn-tail
/// crash cannot explain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// Missing or unrecognized header (wrong version, not a journal).
    BadHeader(String),
    /// A non-tail record failed its CRC check.
    BadCrc {
        /// 1-based line number of the damaged record.
        line: usize,
    },
    /// A non-tail record failed to decode.
    Codec {
        /// 1-based line number of the damaged record.
        line: usize,
        /// The underlying decode failure.
        err: CodecError,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::BadHeader(h) => write!(f, "bad journal header: {h:?}"),
            JournalError::BadCrc { line } => {
                write!(f, "journal line {line}: CRC mismatch (not at tail)")
            }
            JournalError::Codec { line, err } => write!(f, "journal line {line}: {err}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// Outcome of a journal replay: the long locks that were durably granted at
/// crash time, plus what had to be dropped from the torn tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered<R> {
    /// Surviving `(resource, owner, mode)` long locks, in the same
    /// deterministic order as [`LongLockImage::capture`].
    pub entries: Vec<(R, TxnId, LockMode)>,
    /// Complete, checksummed records that were applied.
    pub records: usize,
    /// Damaged records truncated from the tail (torn line, bad CRC) — these
    /// operations were in flight at the crash and were never acknowledged.
    pub dropped_tail: usize,
}

impl<R> Recovered<R> {
    /// Distinct owners among the surviving locks, ascending.
    pub fn owners(&self) -> Vec<TxnId> {
        let mut owners: Vec<TxnId> = self.entries.iter().map(|e| e.1).collect();
        owners.sort_unstable();
        owners.dedup();
        owners
    }
}

/// Append-only, checksummed long-lock journal over a simulated durable
/// medium (an `Arc<Mutex<String>>` that outlives the lock manager, the way a
/// disk outlives a process).
///
/// Writes are acknowledged only after the record is fully on the medium; a
/// [`FaultPlan`] can crash the medium before/after/mid-way through any
/// append, after which the journal is frozen ([`Journal::crashed`]) and all
/// further appends fail. [`Journal::replay`] turns the surviving text back
/// into the set of durably-granted long locks.
pub struct Journal<R> {
    medium: Arc<Mutex<String>>,
    plan: Mutex<Option<FaultPlan>>,
    crashed: AtomicBool,
    crash_point: Mutex<Option<CrashPoint>>,
    appends: AtomicU64,
    _resource: PhantomData<fn(R) -> R>,
}

impl<R> fmt::Debug for Journal<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("appends", &self.appends.load(Ordering::Relaxed))
            .field("crashed", &self.crashed())
            .finish()
    }
}

impl<R> Default for Journal<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R> Journal<R> {
    /// A journal over a fresh empty medium.
    pub fn new() -> Self {
        Self::over_medium(Arc::new(Mutex::new(String::new())))
    }

    /// A journal over an existing medium (writes the header if the medium is
    /// empty; otherwise appends after whatever is already there).
    pub fn over_medium(medium: Arc<Mutex<String>>) -> Self {
        {
            let mut m = medium.lock().unwrap_or_else(PoisonError::into_inner);
            if m.is_empty() {
                m.push_str(JOURNAL_HEADER);
                m.push('\n');
            }
        }
        Journal {
            medium,
            plan: Mutex::new(None),
            crashed: AtomicBool::new(false),
            crash_point: Mutex::new(None),
            appends: AtomicU64::new(0),
            _resource: PhantomData,
        }
    }

    /// The shared medium (survives the crash of the journal's owner).
    pub fn medium(&self) -> Arc<Mutex<String>> {
        Arc::clone(&self.medium)
    }

    /// A copy of the medium's current text.
    pub fn contents(&self) -> String {
        self.medium.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Arms a one-shot crash plan. Replaces any previous plan.
    pub fn arm(&self, plan: FaultPlan) {
        *self.plan.lock().unwrap_or_else(PoisonError::into_inner) = Some(plan);
    }

    /// Whether an armed crash has fired; once true, the journal is frozen.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// The crash point of the fired plan, if any.
    pub fn crash_point(&self) -> Option<CrashPoint> {
        *self.crash_point.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Append attempts so far (including the crashing one) — a fault-free
    /// dry run uses this to size an exhaustive crash sweep.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }
}

impl<R: Resource + FieldCodec> Journal<R> {
    fn append(
        &self,
        op: JournalOp,
        txn: TxnId,
        resource: &R,
        mode: LockMode,
    ) -> Result<(), JournalCrash> {
        if self.crashed() {
            let point = self.crash_point().unwrap_or(CrashPoint::BeforeAppend);
            return Err(JournalCrash { point });
        }
        self.appends.fetch_add(1, Ordering::Relaxed);
        let fired = {
            let plan = self.plan.lock().unwrap_or_else(PoisonError::into_inner);
            plan.as_ref().and_then(FaultPlan::on_append)
        };
        let payload = codec::encode_record(&[
            op.as_str().to_string(),
            resource.to_field(),
            txn.to_field(),
            mode.to_field(),
        ]);
        let crc = codec::crc32(payload.as_bytes());
        let line = format!("{payload}\t{crc:08x}");
        let mut medium = self.medium.lock().unwrap_or_else(PoisonError::into_inner);
        match fired {
            None => {
                medium.push_str(&line);
                medium.push('\n');
                Ok(())
            }
            Some(point) => {
                match point {
                    CrashPoint::BeforeAppend => {}
                    CrashPoint::AfterAppend => {
                        medium.push_str(&line);
                        medium.push('\n');
                    }
                    CrashPoint::MidRecord => {
                        // Torn write: a prefix of the record, no newline.
                        let cut = line.len() * 2 / 3;
                        let cut = (0..=cut).rev().find(|&i| line.is_char_boundary(i)).unwrap_or(0);
                        medium.push_str(&line[..cut]);
                    }
                }
                drop(medium);
                *self.crash_point.lock().unwrap_or_else(PoisonError::into_inner) = Some(point);
                self.crashed.store(true, Ordering::Release);
                Err(JournalCrash { point })
            }
        }
    }

    /// Replays journal text into the set of durably-granted long locks.
    ///
    /// See the module docs for the truncate-vs-refuse rules. The only damage
    /// a single crash can produce — a trailing run of torn/unchecksummed
    /// records — is dropped and counted; anything else is an error.
    pub fn replay(text: &str) -> Result<Recovered<R>, JournalError> {
        let Some(body) = text.strip_prefix(concat_header()) else {
            let first = text.lines().next().unwrap_or("");
            return Err(JournalError::BadHeader(first.to_string()));
        };

        // Split the body into line units, remembering whether each is
        // newline-terminated (only the last can fail to be).
        let terminated = body.is_empty() || body.ends_with('\n');
        let segs: Vec<&str> = body.split('\n').collect();
        let mut units: Vec<(usize, &str, bool)> = segs
            .iter()
            .enumerate()
            .map(|(i, &seg)| (i + 2, seg, terminated || i + 1 < segs.len()))
            .collect();
        if terminated {
            units.pop(); // the empty sentinel after the final newline
        }

        // Decode every unit; damaged units are only tolerated as a
        // contiguous run at the tail.
        let mut decoded: Vec<Unit<R>> = Vec::with_capacity(units.len());
        for &(lineno, seg, complete) in &units {
            if seg.is_empty() {
                decoded.push(Unit::Skip);
                continue;
            }
            if !complete {
                // Torn write: no newline ever made it to the medium.
                decoded.push(Unit::Bad(JournalError::Codec {
                    line: lineno,
                    err: CodecError::BadHeader("unterminated record".to_string()),
                }));
                continue;
            }
            decoded.push(decode_journal_line(lineno, seg));
        }
        let last_ok = decoded
            .iter()
            .rposition(|u| matches!(u, Unit::Ok(..)))
            .map(|i| i + 1)
            .unwrap_or(0);
        let mut dropped_tail = 0usize;
        for u in &decoded[last_ok..] {
            if let Unit::Bad(_) = u {
                dropped_tail += 1;
            }
        }
        // Any damage *before* the last valid record is not a torn tail.
        for u in &decoded[..last_ok] {
            if let Unit::Bad(e) = u {
                return Err(e.clone());
            }
        }

        let mut live: HashMap<(R, TxnId), LockMode> = HashMap::new();
        let mut records = 0usize;
        for u in &decoded[..last_ok] {
            let Unit::Ok(op, r, txn, mode) = u else {
                continue;
            };
            records += 1;
            match op {
                JournalOp::Grant | JournalOp::Convert => {
                    let e = live.entry((r.clone(), *txn)).or_insert(LockMode::NL);
                    *e = e.join(*mode);
                }
                JournalOp::Release => {
                    live.remove(&(r.clone(), *txn));
                }
            }
        }
        let mut entries: Vec<(R, TxnId, LockMode)> =
            live.into_iter().map(|((r, t), m)| (r, t, m)).collect();
        entries.sort_by_cached_key(|a| (a.1, a.2, format!("{:?}", a.0)));
        Ok(Recovered { entries, records, dropped_tail })
    }
}

/// The journal header plus its newline (what a healthy medium starts with).
fn concat_header() -> &'static str {
    concat!("colock-journal v1", "\n")
}

enum Unit<R> {
    Skip,
    Ok(JournalOp, R, TxnId, LockMode),
    Bad(JournalError),
}

fn decode_journal_line<R: FieldCodec>(lineno: usize, seg: &str) -> Unit<R> {
    let Some((payload, crc_text)) = seg.rsplit_once('\t') else {
        return Unit::Bad(JournalError::Codec {
            line: lineno,
            err: CodecError::BadArity { got: 1, want: 5 },
        });
    };
    let Ok(crc) = u32::from_str_radix(crc_text, 16) else {
        return Unit::Bad(JournalError::BadCrc { line: lineno });
    };
    if codec::crc32(payload.as_bytes()) != crc {
        return Unit::Bad(JournalError::BadCrc { line: lineno });
    }
    let fields = match codec::decode_record(payload) {
        Ok(f) => f,
        Err(err) => return Unit::Bad(JournalError::Codec { line: lineno, err }),
    };
    if let Err(err) = codec::expect_arity(&fields, 4) {
        return Unit::Bad(JournalError::Codec { line: lineno, err });
    }
    let Some(op) = JournalOp::parse(&fields[0]) else {
        return Unit::Bad(JournalError::Codec {
            line: lineno,
            err: CodecError::BadField { field: fields[0].clone(), expected: "journal op" },
        });
    };
    let r = match R::from_field(&fields[1]) {
        Ok(r) => r,
        Err(err) => return Unit::Bad(JournalError::Codec { line: lineno, err }),
    };
    let txn = match TxnId::from_field(&fields[2]) {
        Ok(t) => t,
        Err(err) => return Unit::Bad(JournalError::Codec { line: lineno, err }),
    };
    let mode = match LockMode::from_field(&fields[3]) {
        Ok(m) => m,
        Err(err) => return Unit::Bad(JournalError::Codec { line: lineno, err }),
    };
    Unit::Ok(op, r, txn, mode)
}

impl<R: Resource + FieldCodec> JournalSink<R> for Journal<R> {
    fn record(
        &self,
        op: JournalOp,
        txn: TxnId,
        resource: &R,
        mode: LockMode,
    ) -> Result<(), JournalCrash> {
        self.append(op, txn, resource, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::LockRequestOptions;
    use crate::LockError;
    use LockMode::*;

    #[test]
    fn long_locks_survive_crash_short_locks_do_not() {
        let mgr: LockManager<&'static str> = LockManager::new();
        let t1 = TxnId(1);
        mgr.acquire(t1, "cell_c1", X, LockRequestOptions::long()).unwrap();
        mgr.acquire(t1, "scratch", S, LockRequestOptions::default()).unwrap();

        let image = LongLockImage::capture(&mgr);
        assert_eq!(image.len(), 1);

        // "Crash": a brand-new lock manager.
        let recovered: LockManager<&'static str> = LockManager::new();
        image.restore(&recovered);
        assert_eq!(recovered.held_mode(t1, &"cell_c1"), X);
        assert_eq!(recovered.held_mode(t1, &"scratch"), NL);

        // The restored lock still excludes others.
        let err = recovered
            .acquire(TxnId(2), "cell_c1", S, LockRequestOptions::try_lock())
            .unwrap_err();
        assert!(matches!(err, LockError::WouldBlock { .. }));
    }

    #[test]
    fn empty_image_for_short_only_table() {
        let mgr: LockManager<&'static str> = LockManager::new();
        mgr.acquire(TxnId(1), "a", S, LockRequestOptions::default()).unwrap();
        assert!(LongLockImage::capture(&mgr).is_empty());
    }

    #[test]
    fn lines_roundtrip_exactly() {
        let mgr: LockManager<String> = LockManager::new();
        mgr.acquire(TxnId(3), "cells/c1".into(), X, LockRequestOptions::long()).unwrap();
        mgr.acquire(TxnId(9), "lib/e\t2".into(), S, LockRequestOptions::long()).unwrap();
        let image = LongLockImage::capture(&mgr);
        let text = image.to_lines();
        assert!(text.starts_with("colock-long-locks v1\n"), "{text}");
        let back = LongLockImage::from_lines(&text).unwrap();
        assert_eq!(back, image);
    }

    #[test]
    fn from_lines_rejects_garbage() {
        assert!(LongLockImage::<String>::from_lines("").is_err());
        assert!(LongLockImage::<String>::from_lines("not-the-header\n").is_err());
        let bad_mode = "colock-long-locks v1\nr\t1\tZZ\n";
        assert!(LongLockImage::<String>::from_lines(bad_mode).is_err());
        let bad_arity = "colock-long-locks v1\nr\t1\n";
        assert!(LongLockImage::<String>::from_lines(bad_arity).is_err());
    }

    #[test]
    fn conversion_of_long_lock_stays_long() {
        let mgr: LockManager<&'static str> = LockManager::new();
        let t1 = TxnId(1);
        mgr.acquire(t1, "a", S, LockRequestOptions::long()).unwrap();
        mgr.acquire(t1, "a", X, LockRequestOptions::default()).unwrap();
        let image = LongLockImage::capture(&mgr);
        assert_eq!(image.entries, vec![("a", t1, X)]);
    }

    #[test]
    fn capture_order_is_deterministic_for_same_mode_locks() {
        // Regression: the sort key used to be (owner, mode) only, so two
        // same-mode locks of one txn came out in shard-iteration order and
        // image equality across managers could flake.
        let t1 = TxnId(1);
        let resources = ["cells/c1", "cells/c2", "lib/e9", "zz/last", "aa/first"];
        let image_a = {
            let mgr: LockManager<&'static str> = LockManager::new();
            for r in resources {
                mgr.acquire(t1, r, X, LockRequestOptions::long()).unwrap();
            }
            LongLockImage::capture(&mgr)
        };
        let image_b = {
            // Different table (different insertion order → different shard
            // iteration) must still capture an identical image.
            let mgr: LockManager<&'static str> = LockManager::with_shards(4);
            for r in resources.iter().rev() {
                mgr.acquire(t1, *r, X, LockRequestOptions::long()).unwrap();
            }
            LongLockImage::capture(&mgr)
        };
        assert_eq!(image_a, image_b);
        let mut sorted = image_a.entries.clone();
        sorted.sort_by_cached_key(|a| (a.1, a.2, format!("{:?}", a.0)));
        assert_eq!(image_a.entries, sorted, "entries must come out fully sorted");
    }

    // ----- journal ---------------------------------------------------------

    use colock_testkit::fault::{CrashPoint, FaultPlan};
    use std::sync::Arc;

    type J = Journal<String>;

    fn grant(j: &J, t: u64, r: &str, m: LockMode) -> Result<(), JournalCrash> {
        j.record(JournalOp::Grant, TxnId(t), &r.to_string(), m)
    }

    #[test]
    fn journal_replay_roundtrips_grants_conversions_releases() {
        let j = J::new();
        grant(&j, 1, "cells/c1", X).unwrap();
        grant(&j, 1, "db", IX).unwrap();
        grant(&j, 2, "cells/c2", S).unwrap();
        j.record(JournalOp::Convert, TxnId(2), &"cells/c2".to_string(), X).unwrap();
        j.record(JournalOp::Release, TxnId(1), &"db".to_string(), IX).unwrap();
        let rec = J::replay(&j.contents()).unwrap();
        assert_eq!(rec.records, 5);
        assert_eq!(rec.dropped_tail, 0);
        assert_eq!(
            rec.entries,
            vec![
                ("cells/c1".to_string(), TxnId(1), X),
                ("cells/c2".to_string(), TxnId(2), X),
            ]
        );
        assert_eq!(rec.owners(), vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn journal_grant_then_release_nets_to_empty() {
        let j = J::new();
        grant(&j, 7, "a", X).unwrap();
        j.record(JournalOp::Release, TxnId(7), &"a".to_string(), X).unwrap();
        let rec = J::replay(&j.contents()).unwrap();
        assert!(rec.entries.is_empty());
        assert_eq!(rec.records, 2);
    }

    #[test]
    fn journal_empty_medium_replays_to_nothing() {
        let j = J::new();
        let rec = J::replay(&j.contents()).unwrap();
        assert!(rec.entries.is_empty());
        assert_eq!(rec.records, 0);
        assert_eq!(rec.dropped_tail, 0);
    }

    #[test]
    fn journal_rejects_wrong_header_version() {
        for text in ["", "colock-journal v2\n", "colock-long-locks v1\n", "garbage"] {
            let err = J::replay(text).unwrap_err();
            assert!(matches!(err, JournalError::BadHeader(_)), "{text:?} -> {err:?}");
        }
    }

    #[test]
    fn journal_skips_interleaved_empty_lines() {
        let j = J::new();
        grant(&j, 1, "a", S).unwrap();
        j.medium().lock().unwrap().push('\n');
        grant(&j, 2, "b", X).unwrap();
        let text = j.contents();
        let rec = J::replay(&text).unwrap();
        assert_eq!(rec.records, 2);
        assert_eq!(rec.entries.len(), 2);
    }

    #[test]
    fn journal_truncated_final_record_is_dropped_and_reported() {
        let j = J::new();
        grant(&j, 1, "a", X).unwrap();
        grant(&j, 2, "b", S).unwrap();
        let mut text = j.contents();
        // Tear the final record: lose the newline and half the bytes.
        let torn = text.trim_end_matches('\n').len() - 7;
        text.truncate(torn);
        let rec = J::replay(&text).unwrap();
        assert_eq!(rec.records, 1);
        assert_eq!(rec.dropped_tail, 1);
        assert_eq!(rec.entries, vec![("a".to_string(), TxnId(1), X)]);
    }

    #[test]
    fn journal_bad_crc_at_tail_truncates_but_mid_file_refuses() {
        let j = J::new();
        grant(&j, 1, "a", X).unwrap();
        grant(&j, 2, "b", S).unwrap();
        let good = j.contents();

        // Flip a payload byte of the *last* record: torn tail, truncated.
        let mut tail_damaged = good.clone();
        let flip_at = tail_damaged.rfind("\tS\t").expect("mode field of last record") + 1;
        tail_damaged.replace_range(flip_at..flip_at + 1, "X");
        let rec = J::replay(&tail_damaged).unwrap();
        assert_eq!(rec.dropped_tail, 1);
        assert_eq!(rec.entries, vec![("a".to_string(), TxnId(1), X)]);

        // Same damage on the *first* record (valid record after it): refuse.
        let mut mid_damaged = good.clone();
        let flip_at = mid_damaged.find("\tX\t").expect("mode field of first record") + 1;
        mid_damaged.replace_range(flip_at..flip_at + 1, "S");
        let err = J::replay(&mid_damaged).unwrap_err();
        assert_eq!(err, JournalError::BadCrc { line: 2 });
    }

    #[test]
    fn journal_unparseable_mid_file_record_refuses() {
        let j = J::new();
        grant(&j, 1, "a", X).unwrap();
        let mut text = j.contents();
        text.push_str("not\ta\tvalid\trecord\tdeadbeef\n");
        grant(&j, 2, "b", S).unwrap();
        text.push_str(j.contents().lines().last().unwrap());
        text.push('\n');
        let err = J::replay(&text).unwrap_err();
        assert!(matches!(err, JournalError::BadCrc { line: 3 } | JournalError::Codec { line: 3, .. }),
            "{err:?}");
    }

    #[test]
    fn journal_crash_points_freeze_the_medium() {
        for point in CrashPoint::ALL {
            let j = J::new();
            grant(&j, 1, "a", X).unwrap();
            j.arm(FaultPlan::crash_at(point, 1));
            let err = grant(&j, 2, "b", S).unwrap_err();
            assert_eq!(err.point, point);
            assert!(j.crashed());
            assert_eq!(j.crash_point(), Some(point));
            // Frozen: later appends fail, the medium no longer changes.
            let before = j.contents();
            assert!(grant(&j, 3, "c", S).is_err());
            assert_eq!(j.contents(), before);

            // Replay of the surviving medium: first grant always survives;
            // the crashed append survives exactly when it hit AfterAppend.
            let rec = J::replay(&j.contents()).unwrap();
            match point {
                CrashPoint::BeforeAppend => {
                    assert_eq!(rec.entries.len(), 1);
                    assert_eq!(rec.dropped_tail, 0);
                }
                CrashPoint::AfterAppend => {
                    assert_eq!(rec.entries.len(), 2);
                    assert_eq!(rec.dropped_tail, 0);
                }
                CrashPoint::MidRecord => {
                    assert_eq!(rec.entries.len(), 1);
                    assert_eq!(rec.dropped_tail, 1, "torn record must be counted");
                }
            }
        }
    }

    #[test]
    fn manager_journal_tracks_long_locks_write_ahead() {
        let mgr: LockManager<String> = LockManager::new();
        let j = Arc::new(J::new());
        assert!(mgr.attach_journal(j.clone()));
        assert!(!mgr.attach_journal(j.clone()), "second attach must be refused");

        mgr.acquire(TxnId(1), "cells/c1".into(), X, LockRequestOptions::long()).unwrap();
        // Short locks never touch the journal.
        mgr.acquire(TxnId(1), "scratch".into(), S, LockRequestOptions::default()).unwrap();
        mgr.acquire(TxnId(2), "cells/c2".into(), S, LockRequestOptions::long()).unwrap();
        // A short-flagged conversion of an already-long lock is still
        // journaled: the surviving mode after a crash must be X, not S.
        mgr.acquire(TxnId(2), "cells/c2".into(), X, LockRequestOptions::default()).unwrap();
        mgr.release(TxnId(1), &"cells/c1".to_string());

        let rec = J::replay(&j.contents()).unwrap();
        assert_eq!(rec.entries, vec![("cells/c2".to_string(), TxnId(2), X)]);
        // The journal's view agrees with a live capture.
        assert_eq!(LongLockImage::capture(&mgr).entries, rec.entries);
        // release_all journals the long release too.
        mgr.release_all(TxnId(2));
        assert!(J::replay(&j.contents()).unwrap().entries.is_empty());
    }

    #[test]
    fn crashed_journal_fails_the_acquire_without_installing() {
        let mgr: LockManager<String> = LockManager::new();
        let j = Arc::new(J::new());
        mgr.attach_journal(j.clone());
        j.arm(FaultPlan::crash_at(CrashPoint::BeforeAppend, 1));
        let err = mgr
            .acquire(TxnId(1), "cells/c1".into(), X, LockRequestOptions::long())
            .unwrap_err();
        assert_eq!(err, LockError::Crashed);
        assert!(j.crashed());
        // The unacknowledged grant must not be installed in memory either.
        assert!(mgr.locks_of(TxnId(1)).is_empty());
        assert_eq!(mgr.grant_count(), 0);
    }

    #[test]
    fn journal_resource_with_tabs_and_newlines_roundtrips() {
        let j = J::new();
        let nasty = "cells\tc1\nweird\\name".to_string();
        j.record(JournalOp::Grant, TxnId(5), &nasty, SIX).unwrap();
        let rec = J::replay(&j.contents()).unwrap();
        assert_eq!(rec.entries, vec![(nasty, TxnId(5), SIX)]);
    }
}
