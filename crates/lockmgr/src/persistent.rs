//! Persistence of *long locks* across simulated shutdowns and crashes.
//!
//! §3.1: "Complex objects which are checked-out by a user on a workstation
//! get a long lock. In contrast to traditional short locks, long locks must
//! survive system shutdowns and system crashes." We model this with a
//! snapshot/restore pair: a [`LongLockImage`] captures every grant flagged
//! `long`; after a (simulated) crash a fresh [`LockManager`] is re-primed
//! from the image. Short locks — by design — do not survive.
//!
//! The on-medium representation is the line-oriented format of
//! [`colock_testkit::codec`]: a header line, then one
//! `resource \t owner \t mode` record per long lock. See
//! [`LongLockImage::to_lines`] / [`LongLockImage::from_lines`].

use crate::mode::LockMode;
use crate::table::{LockManager, Resource};
use crate::txnid::TxnId;
use colock_testkit::codec::{self, CodecError, FieldCodec};

/// Header line of the persisted image format.
const HEADER: &str = "colock-long-locks v1";

/// Serializable snapshot of all long locks in a lock manager.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LongLockImage<R> {
    /// `(resource, owner, mode)` triples.
    pub entries: Vec<(R, TxnId, LockMode)>,
}

impl<R: Resource> LongLockImage<R> {
    /// Captures all long locks currently granted in `mgr`.
    pub fn capture(mgr: &LockManager<R>) -> Self {
        let mut entries = Vec::new();
        mgr.for_each_grant(|r, txn, mode, long| {
            if long {
                entries.push((r.clone(), txn, mode));
            }
        });
        // Deterministic order for comparisons and round-trips.
        entries.sort_by_key(|a| (a.1, a.2));
        LongLockImage { entries }
    }

    /// Re-installs the captured long locks into a (fresh) lock manager.
    pub fn restore(&self, mgr: &LockManager<R>) {
        for (r, txn, mode) in &self.entries {
            mgr.install_recovered(*txn, r.clone(), *mode);
        }
    }

    /// Number of persisted locks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<R: Resource + FieldCodec> LongLockImage<R> {
    /// Encodes the image into its persisted text form (§3.1's "long locks
    /// must survive system shutdowns and system crashes" — this is the
    /// representation that survives).
    pub fn to_lines(&self) -> String {
        let mut out = String::with_capacity(32 + self.entries.len() * 24);
        out.push_str(HEADER);
        out.push('\n');
        for (resource, txn, mode) in &self.entries {
            out.push_str(&codec::encode_record(&[
                resource.to_field(),
                txn.to_field(),
                mode.to_field(),
            ]));
            out.push('\n');
        }
        out
    }

    /// Decodes an image previously produced by [`Self::to_lines`].
    pub fn from_lines(text: &str) -> Result<Self, CodecError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(HEADER) => {}
            other => return Err(CodecError::BadHeader(other.unwrap_or("").to_string())),
        }
        let mut entries = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let fields = codec::decode_record(line)?;
            codec::expect_arity(&fields, 3)?;
            entries.push((
                R::from_field(&fields[0])?,
                TxnId::from_field(&fields[1])?,
                LockMode::from_field(&fields[2])?,
            ));
        }
        Ok(LongLockImage { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::LockRequestOptions;
    use crate::LockError;
    use LockMode::*;

    #[test]
    fn long_locks_survive_crash_short_locks_do_not() {
        let mgr: LockManager<&'static str> = LockManager::new();
        let t1 = TxnId(1);
        mgr.acquire(t1, "cell_c1", X, LockRequestOptions::long()).unwrap();
        mgr.acquire(t1, "scratch", S, LockRequestOptions::default()).unwrap();

        let image = LongLockImage::capture(&mgr);
        assert_eq!(image.len(), 1);

        // "Crash": a brand-new lock manager.
        let recovered: LockManager<&'static str> = LockManager::new();
        image.restore(&recovered);
        assert_eq!(recovered.held_mode(t1, &"cell_c1"), X);
        assert_eq!(recovered.held_mode(t1, &"scratch"), NL);

        // The restored lock still excludes others.
        let err = recovered
            .acquire(TxnId(2), "cell_c1", S, LockRequestOptions::try_lock())
            .unwrap_err();
        assert!(matches!(err, LockError::WouldBlock { .. }));
    }

    #[test]
    fn empty_image_for_short_only_table() {
        let mgr: LockManager<&'static str> = LockManager::new();
        mgr.acquire(TxnId(1), "a", S, LockRequestOptions::default()).unwrap();
        assert!(LongLockImage::capture(&mgr).is_empty());
    }

    #[test]
    fn lines_roundtrip_exactly() {
        let mgr: LockManager<String> = LockManager::new();
        mgr.acquire(TxnId(3), "cells/c1".into(), X, LockRequestOptions::long()).unwrap();
        mgr.acquire(TxnId(9), "lib/e\t2".into(), S, LockRequestOptions::long()).unwrap();
        let image = LongLockImage::capture(&mgr);
        let text = image.to_lines();
        assert!(text.starts_with("colock-long-locks v1\n"), "{text}");
        let back = LongLockImage::from_lines(&text).unwrap();
        assert_eq!(back, image);
    }

    #[test]
    fn from_lines_rejects_garbage() {
        assert!(LongLockImage::<String>::from_lines("").is_err());
        assert!(LongLockImage::<String>::from_lines("not-the-header\n").is_err());
        let bad_mode = "colock-long-locks v1\nr\t1\tZZ\n";
        assert!(LongLockImage::<String>::from_lines(bad_mode).is_err());
        let bad_arity = "colock-long-locks v1\nr\t1\n";
        assert!(LongLockImage::<String>::from_lines(bad_arity).is_err());
    }

    #[test]
    fn conversion_of_long_lock_stays_long() {
        let mgr: LockManager<&'static str> = LockManager::new();
        let t1 = TxnId(1);
        mgr.acquire(t1, "a", S, LockRequestOptions::long()).unwrap();
        mgr.acquire(t1, "a", X, LockRequestOptions::default()).unwrap();
        let image = LongLockImage::capture(&mgr);
        assert_eq!(image.entries, vec![("a", t1, X)]);
    }
}
