//! Adaptive contention management (Thomasian-style wait-depth limiting and
//! hot-spot-aware victim selection).
//!
//! The static protocol always parks a blocked request and always kills the
//! youngest member of a deadlock cycle. Both choices are blind to *measured*
//! contention. This module carries the runtime-tunable policy knobs that let
//! the table react to the live wait signal instead:
//!
//! * **Wait-depth limiting**: a blocking request that would join a queue
//!   already `limit` deep is refused with `WouldBlock` instead of parked.
//!   Under hot-spot contention this caps the convoy length (Thomasian's
//!   WDL(d) family) and turns unbounded queueing into bounded retry work the
//!   caller can schedule with backoff.
//! * **Hot-spot victim selection**: the deadlock detector normally kills the
//!   youngest cycle member. With the hot-victim policy on, it kills the
//!   member waiting at the *hottest* summary slot (most accumulated waits)
//!   instead, freeing the resource with the deepest demand first. Any cycle
//!   member is a protocol-correct victim, so this is purely a throughput
//!   policy.
//!
//! Both knobs default to **off** so the classic behaviour is unchanged;
//! they are switched on per manager (or process-wide through the
//! environment) by the layers that watch the [PR 3] wait histograms.
//!
//! Environment:
//!
//! * `COLOCK_ADAPTIVE` — master switch: any non-empty value other than `0`
//!   enables hot-victim selection (and the default wait-depth limit below).
//! * `COLOCK_ADAPTIVE_WAIT_DEPTH` — wait-depth limit (`0` = unlimited);
//!   overrides the master default.
//! * `COLOCK_ADAPTIVE_VICTIM` — hot-victim selection on (`1`) or off (`0`);
//!   overrides the master switch.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Wait-depth limit implied by the `COLOCK_ADAPTIVE` master switch when no
/// explicit `COLOCK_ADAPTIVE_WAIT_DEPTH` is given. Deep enough to never
/// bite on benign queues, shallow enough to break hot-spot convoys.
pub const DEFAULT_WAIT_DEPTH: usize = 32;

fn env_flag(name: &str) -> Option<bool> {
    std::env::var(name).ok().map(|v| !v.is_empty() && v != "0")
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Runtime-tunable contention-management policy of one [`LockManager`].
///
/// All fields are atomics: the table reads them on its slow paths (enqueue,
/// deadlock resolution), and the adaptive controller layer may flip them at
/// any time without synchronization.
///
/// [`LockManager`]: crate::LockManager
#[derive(Debug)]
pub struct AdaptivePolicy {
    /// Max ungranted waiters a blocking request may join behind (0 = off).
    wait_depth: AtomicUsize,
    /// Whether the detector picks the hottest-slot waiter as victim.
    hot_victim: AtomicBool,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        Self::from_env()
    }
}

impl AdaptivePolicy {
    /// Policy with both knobs off (the classic static behaviour).
    pub fn off() -> Self {
        AdaptivePolicy { wait_depth: AtomicUsize::new(0), hot_victim: AtomicBool::new(false) }
    }

    /// Policy read from the `COLOCK_ADAPTIVE*` environment (see module docs).
    pub fn from_env() -> Self {
        let master = env_flag("COLOCK_ADAPTIVE").unwrap_or(false);
        let depth = env_usize("COLOCK_ADAPTIVE_WAIT_DEPTH")
            .unwrap_or(if master { DEFAULT_WAIT_DEPTH } else { 0 });
        let victim = env_flag("COLOCK_ADAPTIVE_VICTIM").unwrap_or(master);
        AdaptivePolicy {
            wait_depth: AtomicUsize::new(depth),
            hot_victim: AtomicBool::new(victim),
        }
    }

    /// Current wait-depth limit (0 = unlimited).
    pub fn wait_depth_limit(&self) -> usize {
        self.wait_depth.load(Ordering::Relaxed)
    }

    /// Sets the wait-depth limit (0 disables limiting).
    pub fn set_wait_depth_limit(&self, limit: usize) {
        self.wait_depth.store(limit, Ordering::Relaxed);
    }

    /// Whether hot-spot victim selection is on.
    pub fn hot_victim(&self) -> bool {
        self.hot_victim.load(Ordering::Relaxed)
    }

    /// Enables or disables hot-spot victim selection.
    pub fn set_hot_victim(&self, on: bool) {
        self.hot_victim.store(on, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_policy_disables_both_knobs() {
        let p = AdaptivePolicy::off();
        assert_eq!(p.wait_depth_limit(), 0);
        assert!(!p.hot_victim());
    }

    #[test]
    fn knobs_are_runtime_tunable() {
        let p = AdaptivePolicy::off();
        p.set_wait_depth_limit(4);
        p.set_hot_victim(true);
        assert_eq!(p.wait_depth_limit(), 4);
        assert!(p.hot_victim());
        p.set_wait_depth_limit(0);
        p.set_hot_victim(false);
        assert_eq!(p.wait_depth_limit(), 0);
        assert!(!p.hot_victim());
    }
}
