//! Transaction identifiers.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A transaction identifier. Ids are totally ordered; a smaller id means an
/// *older* transaction (used for youngest-victim deadlock resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl colock_testkit::codec::FieldCodec for TxnId {
    fn to_field(&self) -> String {
        self.0.to_string()
    }

    fn from_field(field: &str) -> Result<Self, colock_testkit::codec::CodecError> {
        u64::from_field(field).map(TxnId)
    }
}

/// Monotonic generator for transaction ids.
#[derive(Debug, Default)]
pub struct TxnIdGen {
    next: AtomicU64,
}

impl TxnIdGen {
    /// Creates a generator starting at 1.
    pub fn new() -> Self {
        TxnIdGen { next: AtomicU64::new(1) }
    }

    /// Allocates the next id.
    pub fn next(&self) -> TxnId {
        TxnId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Raises the generator so it never re-issues `id` or anything below it.
    /// Recovery calls this with the highest surviving journal owner: a fresh
    /// post-crash `begin()` must not collide with a re-adopted transaction.
    pub fn ensure_above(&self, id: TxnId) {
        self.next.fetch_max(id.0 + 1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic() {
        let g = TxnIdGen::new();
        let a = g.next();
        let b = g.next();
        assert!(a < b);
        assert_eq!(a.to_string(), "T1");
    }

    #[test]
    fn ensure_above_skips_recovered_ids() {
        let g = TxnIdGen::new();
        g.ensure_above(TxnId(41));
        assert_eq!(g.next(), TxnId(42));
        // Lowering is a no-op.
        g.ensure_above(TxnId(5));
        assert_eq!(g.next(), TxnId(43));
    }
}
