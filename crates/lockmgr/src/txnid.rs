//! Transaction identifiers.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A transaction identifier. Ids are totally ordered; a smaller id means an
/// *older* transaction (used for youngest-victim deadlock resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl colock_testkit::codec::FieldCodec for TxnId {
    fn to_field(&self) -> String {
        self.0.to_string()
    }

    fn from_field(field: &str) -> Result<Self, colock_testkit::codec::CodecError> {
        u64::from_field(field).map(TxnId)
    }
}

/// Monotonic generator for transaction ids.
#[derive(Debug, Default)]
pub struct TxnIdGen {
    next: AtomicU64,
}

impl TxnIdGen {
    /// Creates a generator starting at 1.
    pub fn new() -> Self {
        TxnIdGen { next: AtomicU64::new(1) }
    }

    /// Allocates the next id.
    pub fn next(&self) -> TxnId {
        TxnId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic() {
        let g = TxnIdGen::new();
        let a = g.next();
        let b = g.next();
        assert!(a < b);
        assert_eq!(a.to_string(), "T1");
    }
}
