//! The lock table: grant/wait queues, conversions, deadlock detection.
//!
//! The table is generic over the resource key `R`; the protocol layer of
//! `colock-core` instantiates it with hierarchical instance paths so that
//! "lock granules within the structure of complex objects" (§4.2) are plain
//! resources here. Scheduling policy:
//!
//! * requests compatible with the granted group **and** with every waiter in
//!   the queue are granted immediately (no overtaking of incompatible
//!   waiters → no starvation),
//! * conversions (upgrades by a transaction that already holds the resource)
//!   only need compatibility with the *other* granted holders and bypass the
//!   queue, as in System R,
//! * on every release the queue is re-processed front-to-back (conversions
//!   first),
//! * before a request starts waiting, a waits-for cycle check runs; if the
//!   request closes a cycle, the **youngest** transaction in the cycle is
//!   aborted as the victim.

use crate::error::LockError;
use crate::mode::LockMode;
use crate::stats::LockStats;
use crate::txnid::TxnId;
use crate::Result;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::fmt;
use std::hash::Hash;
use std::time::{Duration, Instant};

/// Marker trait for lock-table resource keys.
pub trait Resource: Eq + Hash + Clone + fmt::Debug {}
impl<T: Eq + Hash + Clone + fmt::Debug> Resource for T {}

/// How to behave when a request cannot be granted immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPolicy {
    /// Fail with [`LockError::WouldBlock`] instead of waiting.
    Try,
    /// Wait (with deadlock detection) until granted.
    Block,
    /// Wait, but at most this long.
    BlockTimeout(Duration),
}

/// Options for one acquire call.
#[derive(Debug, Clone, Copy)]
pub struct LockRequestOptions {
    /// Wait behaviour.
    pub policy: WaitPolicy,
    /// Whether the resulting lock is a *long lock* (survives simulated
    /// shutdowns via [`crate::persistent`]).
    pub long: bool,
}

impl Default for LockRequestOptions {
    fn default() -> Self {
        LockRequestOptions { policy: WaitPolicy::Block, long: false }
    }
}

impl LockRequestOptions {
    /// Non-blocking request.
    pub fn try_lock() -> Self {
        LockRequestOptions { policy: WaitPolicy::Try, long: false }
    }

    /// Long-lock request.
    pub fn long() -> Self {
        LockRequestOptions { policy: WaitPolicy::Block, long: true }
    }
}

/// Result of a successful acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// Lock granted now (possibly after waiting; `waited` reports which).
    Granted {
        /// Whether the request had to wait before being granted.
        waited: bool,
    },
    /// The transaction already held the resource in a covering mode.
    AlreadyHeld,
}

#[derive(Debug, Clone)]
struct Grant {
    txn: TxnId,
    mode: LockMode,
    long: bool,
}

#[derive(Debug)]
struct Waiter {
    txn: TxnId,
    /// The *target* mode (join of held and requested for conversions).
    mode: LockMode,
    conversion: bool,
    long: bool,
    granted: bool,
    victim: Option<Vec<TxnId>>,
}

#[derive(Debug, Default)]
struct ResourceState {
    granted: Vec<Grant>,
    waiting: VecDeque<Waiter>,
}

#[derive(Debug)]
struct TxnState<R> {
    held: HashMap<R, (LockMode, bool)>,
}

impl<R> Default for TxnState<R> {
    fn default() -> Self {
        TxnState { held: HashMap::new() }
    }
}

#[derive(Debug)]
struct Inner<R: Resource> {
    resources: HashMap<R, ResourceState>,
    txns: HashMap<TxnId, TxnState<R>>,
    /// `txn -> (resource, target mode)` for all currently waiting txns.
    waiting_on: HashMap<TxnId, R>,
}

impl<R: Resource> Default for Inner<R> {
    fn default() -> Self {
        Inner { resources: HashMap::new(), txns: HashMap::new(), waiting_on: HashMap::new() }
    }
}

/// The lock manager.
///
/// ```
/// use colock_lockmgr::{LockManager, LockMode, LockRequestOptions, TxnId};
///
/// let lm: LockManager<&str> = LockManager::new();
/// let (t1, t2) = (TxnId(1), TxnId(2));
/// // Multi-granularity: t1 IX on the relation, X on one tuple.
/// lm.acquire(t1, "cells", LockMode::IX, LockRequestOptions::default()).unwrap();
/// lm.acquire(t1, "cells/c1", LockMode::X, LockRequestOptions::default()).unwrap();
/// // t2 can still IS the relation, but not read t1's tuple.
/// assert!(lm.acquire(t2, "cells", LockMode::IS, LockRequestOptions::try_lock()).is_ok());
/// assert!(lm.acquire(t2, "cells/c1", LockMode::S, LockRequestOptions::try_lock()).is_err());
/// lm.release_all(t1);
/// assert!(lm.acquire(t2, "cells/c1", LockMode::S, LockRequestOptions::try_lock()).is_ok());
/// ```
pub struct LockManager<R: Resource> {
    inner: Mutex<Inner<R>>,
    cond: Condvar,
    stats: LockStats,
}

impl<R: Resource> Default for LockManager<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Resource> LockManager<R> {
    /// Creates an empty lock manager.
    pub fn new() -> Self {
        LockManager { inner: Mutex::new(Inner::default()), cond: Condvar::new(), stats: LockStats::default() }
    }

    /// Statistics counters.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Locks the table state, recovering from poisoning: a panicking test
    /// thread must not cascade into every later acquire.
    fn locked(&self) -> MutexGuard<'_, Inner<R>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The mode `txn` currently holds on `resource` (NL if none).
    pub fn held_mode(&self, txn: TxnId, resource: &R) -> LockMode {
        let inner = self.locked();
        inner
            .txns
            .get(&txn)
            .and_then(|t| t.held.get(resource))
            .map(|&(m, _)| m)
            .unwrap_or(LockMode::NL)
    }

    /// All `(resource, mode, long)` locks held by `txn`.
    pub fn locks_of(&self, txn: TxnId) -> Vec<(R, LockMode, bool)> {
        let inner = self.locked();
        inner
            .txns
            .get(&txn)
            .map(|t| t.held.iter().map(|(r, &(m, l))| (r.clone(), m, l)).collect())
            .unwrap_or_default()
    }

    /// All `(txn, mode)` grants on `resource`.
    pub fn holders(&self, resource: &R) -> Vec<(TxnId, LockMode)> {
        let inner = self.locked();
        inner
            .resources
            .get(resource)
            .map(|s| s.granted.iter().map(|g| (g.txn, g.mode)).collect())
            .unwrap_or_default()
    }

    /// Number of resources currently present in the table.
    pub fn table_size(&self) -> usize {
        self.locked().resources.len()
    }

    /// Total number of grant entries currently in the table.
    pub fn grant_count(&self) -> usize {
        self.locked().resources.values().map(|s| s.granted.len()).sum()
    }

    /// Number of *ungranted* waiters queued on `resource`. Lets tests (and
    /// stall diagnostics) observe "txn N is enqueued" directly instead of
    /// sleeping and hoping the scheduler got there.
    pub fn waiter_count(&self, resource: &R) -> usize {
        self.locked()
            .resources
            .get(resource)
            .map(|s| s.waiting.iter().filter(|w| !w.granted).count())
            .unwrap_or(0)
    }

    /// Renders the full lock-table state (holders, waiters, wait targets) —
    /// for diagnostics and stall post-mortems.
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let inner = self.locked();
        let mut out = String::new();
        for (r, state) in &inner.resources {
            let _ = writeln!(out, "resource {r:?}:");
            for g in &state.granted {
                let _ = writeln!(out, "  granted {} {} long={}", g.txn, g.mode, g.long);
            }
            for w in &state.waiting {
                let _ = writeln!(
                    out,
                    "  waiting {} {} conv={} granted={} victim={}",
                    w.txn,
                    w.mode,
                    w.conversion,
                    w.granted,
                    w.victim.is_some()
                );
            }
        }
        for (t, r) in &inner.waiting_on {
            let _ = writeln!(out, "waiting_on: {t} -> {r:?}");
        }
        out
    }

    /// Acquires (or converts to) `mode` on `resource` for `txn`.
    pub fn acquire(
        &self,
        txn: TxnId,
        resource: R,
        mode: LockMode,
        opts: LockRequestOptions,
    ) -> Result<AcquireOutcome> {
        debug_assert!(mode != LockMode::NL, "cannot acquire NL");
        let mut inner = self.locked();
        LockStats::bump(&self.stats.requests);

        let held = inner
            .txns
            .get(&txn)
            .and_then(|t| t.held.get(&resource))
            .map(|&(m, _)| m)
            .unwrap_or(LockMode::NL);
        if held.covers(mode) {
            return Ok(AcquireOutcome::AlreadyHeld);
        }
        let target = held.join(mode);
        let conversion = held != LockMode::NL;
        if conversion {
            LockStats::bump(&self.stats.conversions);
        }

        if self.can_grant(&inner, txn, &resource, target, conversion) {
            self.install_grant(&mut inner, txn, &resource, target, opts.long, conversion);
            LockStats::bump(&self.stats.immediate_grants);
            return Ok(AcquireOutcome::Granted { waited: false });
        }

        match opts.policy {
            WaitPolicy::Try => {
                let holders = self.conflicting_holders(&inner, txn, &resource, target);
                Err(LockError::WouldBlock { holders })
            }
            WaitPolicy::Block | WaitPolicy::BlockTimeout(_) => {
                let deadline = match opts.policy {
                    WaitPolicy::BlockTimeout(d) => Some(Instant::now() + d),
                    _ => None,
                };
                self.block_until_granted(inner, txn, resource, target, conversion, opts.long, deadline)
            }
        }
    }

    /// Releases `resource` for `txn`. Returns `true` if a lock was released.
    pub fn release(&self, txn: TxnId, resource: &R) -> bool {
        let mut inner = self.locked();
        let removed = self.remove_grant(&mut inner, txn, resource);
        if removed {
            LockStats::bump(&self.stats.releases);
            self.process_queue(&mut inner, resource);
            self.cond.notify_all();
        }
        removed
    }

    /// Releases all locks of `txn` (end of transaction). Returns the number
    /// released.
    pub fn release_all(&self, txn: TxnId) -> usize {
        let mut inner = self.locked();
        let resources: Vec<R> = inner
            .txns
            .get(&txn)
            .map(|t| t.held.keys().cloned().collect())
            .unwrap_or_default();
        for r in &resources {
            self.remove_grant(&mut inner, txn, r);
            LockStats::bump(&self.stats.releases);
            self.process_queue(&mut inner, r);
        }
        inner.txns.remove(&txn);
        if !resources.is_empty() {
            self.cond.notify_all();
        }
        resources.len()
    }

    /// Releases only the *short* locks of `txn`, keeping long locks — models
    /// the end of a workstation session whose check-outs persist ([KSUW85]).
    pub fn release_short(&self, txn: TxnId) -> usize {
        let mut inner = self.locked();
        let resources: Vec<R> = inner
            .txns
            .get(&txn)
            .map(|t| {
                t.held
                    .iter()
                    .filter(|(_, &(_, long))| !long)
                    .map(|(r, _)| r.clone())
                    .collect()
            })
            .unwrap_or_default();
        for r in &resources {
            self.remove_grant(&mut inner, txn, r);
            LockStats::bump(&self.stats.releases);
            self.process_queue(&mut inner, r);
        }
        if !resources.is_empty() {
            self.cond.notify_all();
        }
        resources.len()
    }

    /// Iterates over every grant in the table (for persistence snapshots).
    pub fn for_each_grant(&self, mut f: impl FnMut(&R, TxnId, LockMode, bool)) {
        let inner = self.locked();
        for (r, state) in &inner.resources {
            for g in &state.granted {
                f(r, g.txn, g.mode, g.long);
            }
        }
    }

    /// Installs a grant directly (used by crash-recovery of long locks).
    pub fn install_recovered(&self, txn: TxnId, resource: R, mode: LockMode) {
        let mut inner = self.locked();
        self.install_grant(&mut inner, txn, &resource, mode, true, false);
    }

    // ----- internals -------------------------------------------------------

    fn can_grant(
        &self,
        inner: &Inner<R>,
        txn: TxnId,
        resource: &R,
        target: LockMode,
        conversion: bool,
    ) -> bool {
        let Some(state) = inner.resources.get(resource) else {
            return true;
        };
        for g in &state.granted {
            if g.txn == txn {
                continue;
            }
            LockStats::bump(&self.stats.conflict_tests);
            if !target.compatible(g.mode) {
                return false;
            }
        }
        if !conversion {
            // FIFO fairness: do not overtake incompatible waiters.
            for w in &state.waiting {
                if w.txn == txn || w.granted {
                    continue;
                }
                LockStats::bump(&self.stats.conflict_tests);
                if !target.compatible(w.mode) {
                    return false;
                }
            }
        }
        true
    }

    fn conflicting_holders(
        &self,
        inner: &Inner<R>,
        txn: TxnId,
        resource: &R,
        target: LockMode,
    ) -> Vec<TxnId> {
        inner
            .resources
            .get(resource)
            .map(|s| {
                s.granted
                    .iter()
                    .filter(|g| g.txn != txn && !target.compatible(g.mode))
                    .map(|g| g.txn)
                    .collect()
            })
            .unwrap_or_default()
    }

    fn install_grant(
        &self,
        inner: &mut Inner<R>,
        txn: TxnId,
        resource: &R,
        mode: LockMode,
        long: bool,
        conversion: bool,
    ) {
        let state = inner.resources.entry(resource.clone()).or_default();
        if conversion {
            if let Some(g) = state.granted.iter_mut().find(|g| g.txn == txn) {
                g.mode = mode;
                g.long = g.long || long;
            } else {
                state.granted.push(Grant { txn, mode, long });
            }
        } else {
            state.granted.push(Grant { txn, mode, long });
        }
        let txn_state = inner.txns.entry(txn).or_default();
        let entry = txn_state.held.entry(resource.clone()).or_insert((LockMode::NL, false));
        entry.0 = entry.0.join(mode);
        entry.1 = entry.1 || long;
        LockStats::raise(&self.stats.max_locks_per_txn, txn_state.held.len() as u64);
        LockStats::raise(&self.stats.max_table_entries, inner.resources.len() as u64);
    }

    fn remove_grant(&self, inner: &mut Inner<R>, txn: TxnId, resource: &R) -> bool {
        let mut removed = false;
        if let Some(state) = inner.resources.get_mut(resource) {
            let before = state.granted.len();
            state.granted.retain(|g| g.txn != txn);
            removed = state.granted.len() != before;
            if state.granted.is_empty() && state.waiting.is_empty() {
                inner.resources.remove(resource);
            }
        }
        if let Some(t) = inner.txns.get_mut(&txn) {
            t.held.remove(resource);
        }
        removed
    }

    /// Grants queued waiters that have become compatible. Conversions are
    /// considered first (anywhere in the queue), then the queue is drained
    /// from the front until the first non-grantable waiter.
    ///
    /// The scan is conservative within one pass (a waiter approved in this
    /// pass is not yet visible as granted to the compatibility checks), so
    /// the pass repeats until a fixpoint: otherwise a waiter directly behind
    /// a freshly granted *compatible* one would be skipped with nothing left
    /// to re-trigger the queue — a lost grant that stalled whole workloads.
    fn process_queue(&self, inner: &mut Inner<R>, resource: &R) {
        loop {
            let Some(state) = inner.resources.get(resource) else {
                return;
            };
            // Conversion pass.
            let mut grant_idx: Vec<usize> = Vec::new();
            for (i, w) in state.waiting.iter().enumerate() {
                if w.granted || w.victim.is_some() || !w.conversion {
                    continue;
                }
                if self.queue_compatible(state, w, true) {
                    grant_idx.push(i);
                }
            }
            // FIFO pass: a waiter is granted when it is compatible with the
            // granted group and with every *ungranted incompatible* waiter
            // ahead of it. Compatible waiters may pass blocked compatible
            // predecessors — granting a compatible mode can never delay the
            // predecessor's own grant, so fairness is preserved while the
            // policy stays aligned with the waits-for edge model.
            for (i, w) in state.waiting.iter().enumerate() {
                if w.granted || w.victim.is_some() {
                    continue;
                }
                if w.conversion {
                    continue; // handled above
                }
                if self.queue_compatible(state, w, false)
                    && self.no_incompatible_ahead(state, i, w.mode)
                {
                    grant_idx.push(i);
                }
            }
            if grant_idx.is_empty() {
                return;
            }
            let to_grant: Vec<(TxnId, LockMode, bool, bool)> = {
                let state = inner.resources.get_mut(resource).unwrap();
                let mut out = Vec::with_capacity(grant_idx.len());
                for &i in &grant_idx {
                    let w = &mut state.waiting[i];
                    w.granted = true;
                    out.push((w.txn, w.mode, w.long, w.conversion));
                }
                out
            };
            for (txn, mode, long, conversion) in to_grant {
                self.install_grant(inner, txn, resource, mode, long, conversion);
            }
            // Loop: the new grants may make further waiters grantable.
        }
    }

    /// Compatibility of waiter `w` with the granted group (ignoring `w.txn`'s
    /// own grant when it is a conversion) and, transitively, with waiters we
    /// already decided to grant in this pass (approximated by re-checking the
    /// granted list, which `install_grant` updates between passes).
    fn queue_compatible(&self, state: &ResourceState, w: &Waiter, conversion: bool) -> bool {
        for g in &state.granted {
            if conversion && g.txn == w.txn {
                continue;
            }
            LockStats::bump(&self.stats.conflict_tests);
            if !w.mode.compatible(g.mode) {
                return false;
            }
        }
        true
    }

    /// No ungranted waiter ahead of `idx` whose requested mode conflicts
    /// with `mode` (granted and victim-marked entries do not block).
    fn no_incompatible_ahead(&self, state: &ResourceState, idx: usize, mode: LockMode) -> bool {
        state
            .waiting
            .iter()
            .take(idx)
            .all(|w| w.granted || w.victim.is_some() || mode.compatible(w.mode))
    }

    #[allow(clippy::too_many_arguments)]
    fn block_until_granted(
        &self,
        mut inner: MutexGuard<'_, Inner<R>>,
        txn: TxnId,
        resource: R,
        target: LockMode,
        conversion: bool,
        long: bool,
        deadline: Option<Instant>,
    ) -> Result<AcquireOutcome> {
        LockStats::bump(&self.stats.waits);
        {
            let state = inner.resources.entry(resource.clone()).or_default();
            state.waiting.push_back(Waiter {
                txn,
                mode: target,
                conversion,
                long,
                granted: false,
                victim: None,
            });
        }
        inner.waiting_on.insert(txn, resource.clone());

        if let Some(cycle) = self.find_cycle(&inner, txn) {
            LockStats::bump(&self.stats.deadlocks);
            if let Some(err) = self.resolve_deadlock(&mut inner, txn, &resource, cycle) {
                return Err(err);
            }
        }

        loop {
            // Check our waiter entry.
            let status = {
                let state = inner.resources.get(&resource).expect("resource with waiter");
                let w = state
                    .waiting
                    .iter()
                    .find(|w| w.txn == txn)
                    .expect("own waiter present");
                if let Some(cycle) = &w.victim {
                    Some(Err(LockError::Deadlock { victim: txn, cycle: cycle.clone() }))
                } else if w.granted {
                    Some(Ok(()))
                } else {
                    None
                }
            };
            match status {
                Some(Ok(())) => {
                    self.remove_waiter_entry_only(&mut inner, txn, &resource);
                    inner.waiting_on.remove(&txn);
                    return Ok(AcquireOutcome::Granted { waited: true });
                }
                Some(Err(e)) => {
                    self.remove_waiter(&mut inner, txn, &resource);
                    self.process_queue(&mut inner, &resource);
                    self.cond.notify_all();
                    return Err(e);
                }
                None => {}
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    let timed_out = now >= d || {
                        let (guard, wait) = self
                            .cond
                            .wait_timeout(inner, d - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        inner = guard;
                        wait.timed_out()
                    };
                    if timed_out {
                        // Re-check once: we may have been granted exactly at
                        // the deadline.
                        let granted_now = inner
                            .resources
                            .get(&resource)
                            .and_then(|s| s.waiting.iter().find(|w| w.txn == txn))
                            .map(|w| w.granted)
                            .unwrap_or(false);
                        if granted_now {
                            self.remove_waiter_entry_only(&mut inner, txn, &resource);
                            inner.waiting_on.remove(&txn);
                            return Ok(AcquireOutcome::Granted { waited: true });
                        }
                        self.remove_waiter(&mut inner, txn, &resource);
                        self.process_queue(&mut inner, &resource);
                        self.cond.notify_all();
                        return Err(LockError::Timeout);
                    }
                }
                None => {
                    // Wake periodically to re-run deadlock detection: a cycle
                    // can involve edges invisible at wait-start (e.g. formed
                    // while a stale candidate masked the first resolution).
                    let (guard, wait) = self
                        .cond
                        .wait_timeout(inner, Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner);
                    inner = guard;
                    if wait.timed_out() {
                        if let Some(cycle) = self.find_cycle(&inner, txn) {
                            LockStats::bump(&self.stats.deadlocks);
                            if let Some(err) =
                                self.resolve_deadlock(&mut inner, txn, &resource, cycle)
                            {
                                return Err(err);
                            }
                        }
                    }
                }
            }
        }
    }

    fn remove_waiter(&self, inner: &mut Inner<R>, txn: TxnId, resource: &R) {
        if let Some(state) = inner.resources.get_mut(resource) {
            state.waiting.retain(|w| w.txn != txn);
            if state.granted.is_empty() && state.waiting.is_empty() {
                inner.resources.remove(resource);
            }
        }
        inner.waiting_on.remove(&txn);
    }

    /// Removes only the waiter entry (grant already installed by
    /// `process_queue`).
    fn remove_waiter_entry_only(&self, inner: &mut Inner<R>, txn: TxnId, resource: &R) {
        if let Some(state) = inner.resources.get_mut(resource) {
            state.waiting.retain(|w| w.txn != txn);
        }
    }

    /// Picks and marks a deadlock victim for `cycle` (youngest first).
    ///
    /// Returns `Some(err)` when the requester itself is the victim (the
    /// caller must clean up its waiter and return the error). When the
    /// youngest member's waiter turned out to be already granted (runnable),
    /// the next-youngest markable member is chosen instead, so a real cycle
    /// is never left standing because of a stale candidate.
    fn resolve_deadlock(
        &self,
        inner: &mut Inner<R>,
        requester: TxnId,
        requester_resource: &R,
        cycle: Vec<TxnId>,
    ) -> Option<LockError> {
        let mut candidates: Vec<TxnId> = cycle.clone();
        candidates.sort_unstable();
        for &victim in candidates.iter().rev() {
            if victim == requester {
                self.remove_waiter(inner, requester, requester_resource);
                self.process_queue(inner, requester_resource);
                self.cond.notify_all();
                return Some(LockError::Deadlock { victim, cycle });
            }
            let Some(victim_res) = inner.waiting_on.get(&victim).cloned() else {
                continue;
            };
            let Some(state) = inner.resources.get_mut(&victim_res) else {
                continue;
            };
            if let Some(w) = state
                .waiting
                .iter_mut()
                .find(|w| w.txn == victim && !w.granted && w.victim.is_none())
            {
                w.victim = Some(cycle);
                self.cond.notify_all();
                return None;
            }
            // Victim already granted or already marked: try the next one.
        }
        None
    }

    /// DFS over the waits-for graph starting from `start`. Returns a cycle
    /// (as a list of txns, first == last omitted) if `start` can reach
    /// itself.
    fn find_cycle(&self, inner: &Inner<R>, start: TxnId) -> Option<Vec<TxnId>> {
        fn blockers<R: Resource>(inner: &Inner<R>, txn: TxnId) -> Vec<TxnId> {
            let Some(resource) = inner.waiting_on.get(&txn) else {
                return Vec::new();
            };
            let Some(state) = inner.resources.get(resource) else {
                return Vec::new();
            };
            let Some(pos) = state.waiting.iter().position(|w| w.txn == txn) else {
                return Vec::new();
            };
            let me = &state.waiting[pos];
            if me.granted {
                // Already granted, merely not woken yet: runnable, blocks on
                // nothing (stale edges here would fabricate false cycles).
                return Vec::new();
            }
            let mut out = Vec::new();
            for g in &state.granted {
                if g.txn != txn && !me.mode.compatible(g.mode) {
                    out.push(g.txn);
                }
            }
            // Under FIFO, earlier incompatible waiters also block us —
            // except for conversions, which bypass queue order entirely.
            if !me.conversion {
                for w in state.waiting.iter().take(pos) {
                    if !w.granted && w.txn != txn && !me.mode.compatible(w.mode) {
                        out.push(w.txn);
                    }
                }
            }
            out
        }

        let mut stack = vec![start];
        let mut path: Vec<TxnId> = Vec::new();
        let mut visited: HashMap<TxnId, bool> = HashMap::new(); // false=open, true=done
        // Iterative DFS with explicit path tracking.
        fn dfs<R: Resource>(
            inner: &Inner<R>,
            node: TxnId,
            start: TxnId,
            path: &mut Vec<TxnId>,
            visited: &mut HashMap<TxnId, bool>,
        ) -> Option<Vec<TxnId>> {
            path.push(node);
            visited.insert(node, false);
            for b in blockers(inner, node) {
                if b == start {
                    return Some(path.clone());
                }
                match visited.get(&b) {
                    Some(false) => continue, // already on path, cycle not via start
                    Some(true) => continue,
                    None => {
                        if let Some(c) = dfs(inner, b, start, path, visited) {
                            return Some(c);
                        }
                    }
                }
            }
            visited.insert(node, true);
            path.pop();
            None
        }
        let _ = &mut stack;
        dfs(inner, start, start, &mut path, &mut visited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::LockMode::*;
    use colock_testkit::{run_threads, wait_until};
    use std::sync::Arc;
    use std::thread;

    type Mgr = LockManager<&'static str>;

    /// Generous bound for "the other thread is enqueued" waits; the
    /// predicates normally flip within microseconds.
    const WAIT: Duration = Duration::from_secs(5);

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn grant_and_reentrant_acquire() {
        let m = Mgr::new();
        assert_eq!(
            m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap(),
            AcquireOutcome::Granted { waited: false }
        );
        assert_eq!(
            m.acquire(t(1), "a", IS, LockRequestOptions::default()).unwrap(),
            AcquireOutcome::AlreadyHeld
        );
        assert_eq!(m.held_mode(t(1), &"a"), S);
    }

    #[test]
    fn compatible_modes_share() {
        let m = Mgr::new();
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(3), "a", IS, LockRequestOptions::default()).unwrap();
        assert_eq!(m.holders(&"a").len(), 3);
    }

    #[test]
    fn incompatible_try_lock_reports_holders() {
        let m = Mgr::new();
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        let err = m.acquire(t(2), "a", S, LockRequestOptions::try_lock()).unwrap_err();
        assert_eq!(err, LockError::WouldBlock { holders: vec![t(1)] });
    }

    #[test]
    fn release_unblocks_waiter() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            m2.acquire(t(2), "a", X, LockRequestOptions::default()).unwrap()
        });
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        assert!(m.release(t(1), &"a"));
        assert_eq!(h.join().unwrap(), AcquireOutcome::Granted { waited: true });
        assert_eq!(m.held_mode(t(2), &"a"), X);
    }

    #[test]
    fn conversion_upgrades_mode() {
        let m = Mgr::new();
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(1), "a", IX, LockRequestOptions::default()).unwrap();
        assert_eq!(m.held_mode(t(1), &"a"), SIX);
        // Still a single grant entry.
        assert_eq!(m.holders(&"a").len(), 1);
    }

    #[test]
    fn conversion_waits_for_other_readers() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "a", S, LockRequestOptions::default()).unwrap();
        let err = m.acquire(t(1), "a", X, LockRequestOptions::try_lock()).unwrap_err();
        assert!(matches!(err, LockError::WouldBlock { .. }));
        // Blocking upgrade succeeds once the other reader leaves.
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            m2.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap()
        });
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        m.release(t(2), &"a");
        assert_eq!(h.join().unwrap(), AcquireOutcome::Granted { waited: true });
        assert_eq!(m.held_mode(t(1), &"a"), X);
    }

    #[test]
    fn fifo_no_overtaking_of_waiting_x() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        // t2 queues an X.
        let m2 = Arc::clone(&m);
        let h2 = thread::spawn(move || {
            m2.acquire(t(2), "a", X, LockRequestOptions::default()).unwrap()
        });
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        // t3's S would be compatible with the grant, but must not overtake.
        let err = m.acquire(t(3), "a", S, LockRequestOptions::try_lock()).unwrap_err();
        assert!(matches!(err, LockError::WouldBlock { .. }));
        m.release(t(1), &"a");
        h2.join().unwrap();
        m.release_all(t(2));
        m.acquire(t(3), "a", S, LockRequestOptions::default()).unwrap();
    }

    #[test]
    fn deadlock_detected_youngest_aborts() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "b", X, LockRequestOptions::default()).unwrap();
        // t1 waits for b.
        let m1 = Arc::clone(&m);
        let h1 = thread::spawn(move || m1.acquire(t(1), "b", X, LockRequestOptions::default()));
        wait_until(WAIT, || m.waiter_count(&"b") == 1);
        // t2 requests a -> cycle {1,2}; victim = youngest = t2 (the requester).
        let err = m.acquire(t(2), "a", X, LockRequestOptions::default()).unwrap_err();
        match err {
            LockError::Deadlock { victim, .. } => assert_eq!(victim, t(2)),
            e => panic!("expected deadlock, got {e:?}"),
        }
        // After t2 aborts, t1 proceeds.
        m.release_all(t(2));
        assert!(h1.join().unwrap().is_ok());
        assert_eq!(m.stats().snapshot().deadlocks, 1);
    }

    #[test]
    fn deadlock_victim_can_be_the_waiting_txn() {
        // t2 (younger) waits first; then t1's request closes the cycle and
        // t2 must be chosen and woken as victim.
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "b", X, LockRequestOptions::default()).unwrap();
        let m2 = Arc::clone(&m);
        let h2 = thread::spawn(move || m2.acquire(t(2), "a", X, LockRequestOptions::default()));
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        let m1 = Arc::clone(&m);
        let h1 = thread::spawn(move || m1.acquire(t(1), "b", X, LockRequestOptions::default()));
        let r2 = h2.join().unwrap();
        match r2 {
            Err(LockError::Deadlock { victim, .. }) => assert_eq!(victim, t(2)),
            other => panic!("expected t2 victim, got {other:?}"),
        }
        m.release_all(t(2));
        assert!(h1.join().unwrap().is_ok());
    }

    #[test]
    fn upgrade_deadlock_between_two_readers() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "a", S, LockRequestOptions::default()).unwrap();
        let m1 = Arc::clone(&m);
        let h1 = thread::spawn(move || m1.acquire(t(1), "a", X, LockRequestOptions::default()));
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        let r2 = m.acquire(t(2), "a", X, LockRequestOptions::default());
        // One of the two must die (the younger: t2).
        match r2 {
            Err(LockError::Deadlock { victim, .. }) => assert_eq!(victim, t(2)),
            other => panic!("expected deadlock, got {other:?}"),
        }
        m.release_all(t(2));
        assert!(h1.join().unwrap().is_ok());
    }

    #[test]
    fn timeout_fires() {
        let m = Mgr::new();
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        let err = m
            .acquire(
                t(2),
                "a",
                X,
                LockRequestOptions {
                    policy: WaitPolicy::BlockTimeout(Duration::from_millis(40)),
                    long: false,
                },
            )
            .unwrap_err();
        assert_eq!(err, LockError::Timeout);
        // The waiter must be fully cleaned up.
        assert_eq!(m.holders(&"a").len(), 1);
    }

    #[test]
    fn release_all_cleans_table() {
        let m = Mgr::new();
        m.acquire(t(1), "a", IS, LockRequestOptions::default()).unwrap();
        m.acquire(t(1), "b", S, LockRequestOptions::default()).unwrap();
        assert_eq!(m.release_all(t(1)), 2);
        assert_eq!(m.table_size(), 0);
        assert!(m.locks_of(t(1)).is_empty());
    }

    #[test]
    fn release_short_keeps_long_locks() {
        let m = Mgr::new();
        m.acquire(t(1), "a", S, LockRequestOptions::long()).unwrap();
        m.acquire(t(1), "b", IS, LockRequestOptions::default()).unwrap();
        assert_eq!(m.release_short(t(1)), 1);
        assert_eq!(m.held_mode(t(1), &"a"), S);
        assert_eq!(m.held_mode(t(1), &"b"), NL);
    }

    #[test]
    fn stats_count_requests_and_tables() {
        let m = Mgr::new();
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "b", S, LockRequestOptions::default()).unwrap();
        let s = m.stats().snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.immediate_grants, 2);
        assert_eq!(s.max_table_entries, 2);
    }

    #[test]
    fn many_threads_on_one_resource_make_progress() {
        let m = Arc::new(Mgr::new());
        let m2 = Arc::clone(&m);
        run_threads(16, Duration::from_secs(60), move |i| {
            let id = t(i as u64 + 1);
            for _ in 0..20 {
                match m2.acquire(id, "hot", X, LockRequestOptions::default()) {
                    Ok(_) => {
                        m2.release(id, &"hot");
                    }
                    Err(LockError::Deadlock { .. }) => {
                        m2.release_all(id);
                    }
                    Err(e) => panic!("{e}"),
                }
            }
        });
        assert_eq!(m.table_size(), 0);
    }
}
