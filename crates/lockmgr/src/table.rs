//! The lock table: grant/wait queues, conversions, deadlock detection.
//!
//! The table is generic over the resource key `R`; the protocol layer of
//! `colock-core` instantiates it with hierarchical instance paths so that
//! "lock granules within the structure of complex objects" (§4.2) are plain
//! resources here. Scheduling policy:
//!
//! * requests compatible with the granted group **and** with every waiter in
//!   the queue are granted immediately (no overtaking of incompatible
//!   waiters → no starvation),
//! * conversions (upgrades by a transaction that already holds the resource)
//!   only need compatibility with the *other* granted holders and bypass the
//!   queue, as in System R,
//! * on every release the releasing resource's queue is re-processed
//!   front-to-back (conversions first); queues of unrelated resources are
//!   never touched,
//! * when a request starts waiting, the snapshot deadlock detector runs over
//!   the cross-shard waits-for graph; if the new edge closes a cycle, the
//!   **youngest** transaction in the cycle is aborted as the victim.
//!
//! # Sharding and lock order
//!
//! The table is striped `N` ways (default 16): a resource hashes to one
//! shard, and each shard owns its own mutex, so requests on unrelated
//! resources never serialize on a common lock. Every per-resource state
//! additionally carries its own condvar — releases and victim verdicts wake
//! only the waiters of *that* resource, not the whole table (no
//! thundering-herd `notify_all`).
//!
//! Per-transaction lock inventories live in separate *txn stripes* keyed by
//! transaction id. The locking hierarchy is strict and acyclic:
//!
//! 1. shard mutexes, always in ascending shard-index order (single-resource
//!    operations lock exactly one; only the deadlock detector locks all),
//! 2. at most one txn-stripe mutex, only ever acquired *inside* a shard
//!    critical section (leaf level) or on its own.
//!
//! No path locks a shard while holding a stripe and no path locks two
//! stripes, so the manager's own locks cannot deadlock.
//!
//! # Deadlock detection
//!
//! Every waits-for edge is created by an enqueue, so detection triggered at
//! enqueue time is complete: after publishing its wait entry (and dropping
//! its shard lock) the enqueuing thread runs the detector, which locks all
//! shards in canonical order, builds a consistent snapshot of the waits-for
//! graph, and repeatedly extracts cycles. For each cycle the youngest
//! markable member is stamped as victim and woken through its resource's
//! condvar. There is no polling loop and no background thread.

use crate::error::LockError;
use crate::mode::LockMode;
use crate::persistent::{JournalOp, JournalSink};
use crate::stats::LockStats;
use crate::txnid::TxnId;
use crate::Result;
use colock_trace::{self as trace, Event, EventKind};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Marker trait for lock-table resource keys.
pub trait Resource: Eq + Hash + Clone + fmt::Debug {}
impl<T: Eq + Hash + Clone + fmt::Debug> Resource for T {}

/// How to behave when a request cannot be granted immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPolicy {
    /// Fail with [`LockError::WouldBlock`] instead of waiting.
    Try,
    /// Wait (with deadlock detection) until granted.
    Block,
    /// Wait, but at most this long.
    BlockTimeout(Duration),
}

/// Options for one acquire call.
#[derive(Debug, Clone, Copy)]
pub struct LockRequestOptions {
    /// Wait behaviour.
    pub policy: WaitPolicy,
    /// Whether the resulting lock is a *long lock* (survives simulated
    /// shutdowns via [`crate::persistent`]).
    pub long: bool,
}

impl Default for LockRequestOptions {
    fn default() -> Self {
        LockRequestOptions { policy: WaitPolicy::Block, long: false }
    }
}

impl LockRequestOptions {
    /// Non-blocking request.
    pub fn try_lock() -> Self {
        LockRequestOptions { policy: WaitPolicy::Try, long: false }
    }

    /// Long-lock request.
    pub fn long() -> Self {
        LockRequestOptions { policy: WaitPolicy::Block, long: true }
    }
}

/// Result of a successful acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// Lock granted now (possibly after waiting; `waited` reports which).
    Granted {
        /// Whether the request had to wait before being granted.
        waited: bool,
    },
    /// The transaction already held the resource in a covering mode.
    AlreadyHeld,
}

#[derive(Debug, Clone)]
struct Grant {
    txn: TxnId,
    mode: LockMode,
    long: bool,
}

#[derive(Debug)]
struct Waiter {
    txn: TxnId,
    /// The *target* mode (join of held and requested for conversions).
    mode: LockMode,
    conversion: bool,
    long: bool,
    granted: bool,
    victim: Option<Vec<TxnId>>,
}

#[derive(Debug, Default)]
struct ResourceState {
    granted: Vec<Grant>,
    waiting: VecDeque<Waiter>,
    /// Wakeups are targeted: only threads blocked on *this* resource wait
    /// here. Cloned out of the shard before sleeping. Lazily allocated by the
    /// first waiter — uncontended resources never pay for a condvar.
    cond: Option<Arc<Condvar>>,
}

#[derive(Debug)]
struct TxnState<R> {
    held: HashMap<R, (LockMode, bool)>,
}

impl<R> Default for TxnState<R> {
    fn default() -> Self {
        TxnState { held: HashMap::new() }
    }
}

#[derive(Debug)]
struct ShardInner<R: Resource> {
    resources: HashMap<R, ResourceState>,
}

impl<R: Resource> Default for ShardInner<R> {
    fn default() -> Self {
        ShardInner { resources: HashMap::new() }
    }
}

/// Number of txn-inventory stripes (fixed; inventories are small maps and
/// only contended across distinct transactions).
const TXN_STRIPES: usize = 16;

/// Default number of lock-table shards.
const DEFAULT_SHARDS: usize = 16;

/// One stripe of the per-transaction state map.
type TxnStripe<R> = Mutex<HashMap<TxnId, TxnState<R>>>;

/// The lock manager.
///
/// ```
/// use colock_lockmgr::{LockManager, LockMode, LockRequestOptions, TxnId};
///
/// let lm: LockManager<&str> = LockManager::new();
/// let (t1, t2) = (TxnId(1), TxnId(2));
/// // Multi-granularity: t1 IX on the relation, X on one tuple.
/// lm.acquire(t1, "cells", LockMode::IX, LockRequestOptions::default()).unwrap();
/// lm.acquire(t1, "cells/c1", LockMode::X, LockRequestOptions::default()).unwrap();
/// // t2 can still IS the relation, but not read t1's tuple.
/// assert!(lm.acquire(t2, "cells", LockMode::IS, LockRequestOptions::try_lock()).is_ok());
/// assert!(lm.acquire(t2, "cells/c1", LockMode::S, LockRequestOptions::try_lock()).is_err());
/// lm.release_all(t1);
/// assert!(lm.acquire(t2, "cells/c1", LockMode::S, LockRequestOptions::try_lock()).is_ok());
/// ```
pub struct LockManager<R: Resource> {
    shards: Box<[Mutex<ShardInner<R>>]>,
    shard_mask: usize,
    stripes: Box<[TxnStripe<R>]>,
    /// Resources currently present across all shards (kept as an atomic so
    /// the `max_table_entries` high-water mark needs no cross-shard lock).
    live_resources: AtomicU64,
    stats: LockStats,
    /// Durable long-lock journal (write-ahead with respect to the grant
    /// acknowledgement). `None` until attached; short-lock operations never
    /// consult it, so the hot path stays journal-free.
    journal: OnceLock<Arc<dyn JournalSink<R>>>,
}

impl<R: Resource> Default for LockManager<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Resource> LockManager<R> {
    /// Creates an empty lock manager with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty lock manager striped `n` ways (`n` is rounded up to
    /// a power of two, minimum 1). `with_shards(1)` degenerates to a single
    /// global table — useful as an ablation baseline in benchmarks.
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        LockManager {
            shards: (0..n).map(|_| Mutex::new(ShardInner::default())).collect(),
            shard_mask: n - 1,
            stripes: (0..TXN_STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            live_resources: AtomicU64::new(0),
            stats: LockStats::default(),
            journal: OnceLock::new(),
        }
    }

    /// Attaches the durable long-lock journal. Every later grant, conversion
    /// or release of a *long* lock is recorded before it is acknowledged. At
    /// most one journal per manager: returns `false` (and changes nothing)
    /// if one is already attached.
    pub fn attach_journal(&self, sink: Arc<dyn JournalSink<R>>) -> bool {
        self.journal.set(sink).is_ok()
    }

    /// Whether a journal is attached.
    pub fn has_journal(&self) -> bool {
        self.journal.get().is_some()
    }

    /// Statistics counters.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Number of shards the table is striped into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `resource` hashes to. Exposed so tests can construct
    /// resource sets that provably land on distinct (or identical) shards.
    pub fn shard_index(&self, resource: &R) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        resource.hash(&mut h);
        (h.finish() as usize) & self.shard_mask
    }

    /// Locks one shard, recovering from poisoning: a panicking test thread
    /// must not cascade into every later acquire.
    fn shard_locked(&self, idx: usize) -> MutexGuard<'_, ShardInner<R>> {
        self.shards[idx].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Locks the txn stripe owning `txn`'s inventory.
    fn stripe_locked(&self, txn: TxnId) -> MutexGuard<'_, HashMap<TxnId, TxnState<R>>> {
        self.stripes[(txn.0 as usize) & (TXN_STRIPES - 1)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The mode `txn` currently holds on `resource` (NL if none).
    pub fn held_mode(&self, txn: TxnId, resource: &R) -> LockMode {
        self.stripe_locked(txn)
            .get(&txn)
            .and_then(|t| t.held.get(resource))
            .map(|&(m, _)| m)
            .unwrap_or(LockMode::NL)
    }

    /// All `(resource, mode, long)` locks held by `txn`.
    pub fn locks_of(&self, txn: TxnId) -> Vec<(R, LockMode, bool)> {
        self.stripe_locked(txn)
            .get(&txn)
            .map(|t| t.held.iter().map(|(r, &(m, l))| (r.clone(), m, l)).collect())
            .unwrap_or_default()
    }

    /// All `(txn, mode)` grants on `resource`.
    pub fn holders(&self, resource: &R) -> Vec<(TxnId, LockMode)> {
        self.shard_locked(self.shard_index(resource))
            .resources
            .get(resource)
            .map(|s| s.granted.iter().map(|g| (g.txn, g.mode)).collect())
            .unwrap_or_default()
    }

    /// Number of resources currently present in the table.
    pub fn table_size(&self) -> usize {
        (0..self.shards.len()).map(|i| self.shard_locked(i).resources.len()).sum()
    }

    /// Total number of grant entries currently in the table.
    pub fn grant_count(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shard_locked(i).resources.values().map(|s| s.granted.len()).sum::<usize>())
            .sum()
    }

    /// Number of *ungranted* waiters queued on `resource`. Lets tests (and
    /// stall diagnostics) observe "txn N is enqueued" directly instead of
    /// sleeping and hoping the scheduler got there.
    pub fn waiter_count(&self, resource: &R) -> usize {
        self.shard_locked(self.shard_index(resource))
            .resources
            .get(resource)
            .map(|s| s.waiting.iter().filter(|w| !w.granted).count())
            .unwrap_or(0)
    }

    /// Renders the full lock-table state (holders, waiters, wait targets) —
    /// for diagnostics and stall post-mortems.
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for si in 0..self.shards.len() {
            let shard = self.shard_locked(si);
            for (r, state) in &shard.resources {
                let _ = writeln!(out, "resource {r:?} [shard {si}]:");
                for g in &state.granted {
                    let _ = writeln!(out, "  granted {} {} long={}", g.txn, g.mode, g.long);
                }
                for w in &state.waiting {
                    let _ = writeln!(
                        out,
                        "  waiting {} {} conv={} granted={} victim={}",
                        w.txn,
                        w.mode,
                        w.conversion,
                        w.granted,
                        w.victim.is_some()
                    );
                }
            }
        }
        out
    }

    /// Acquires (or converts to) `mode` on `resource` for `txn`.
    pub fn acquire(
        &self,
        txn: TxnId,
        resource: R,
        mode: LockMode,
        opts: LockRequestOptions,
    ) -> Result<AcquireOutcome> {
        debug_assert!(mode != LockMode::NL, "cannot acquire NL");
        LockStats::bump(&self.stats.requests);
        let si = self.shard_index(&resource);
        trace::emit(|| {
            Event::new(EventKind::Request, txn.0)
                .shard(si as u32)
                .mode(mode.to_string())
                .resource(format!("{resource:?}"))
        });
        let mut shard = self.shard_locked(si);

        // Held mode comes from our own grant entry in the shard (there is at
        // most one per txn/resource), keeping the hot path off the stripes.
        let grant = shard
            .resources
            .get(&resource)
            .and_then(|s| s.granted.iter().find(|g| g.txn == txn));
        let held = grant.map(|g| g.mode).unwrap_or(LockMode::NL);
        let held_long = grant.is_some_and(|g| g.long);
        if held.covers(mode) {
            trace::emit(|| {
                Event::new(EventKind::Grant, txn.0)
                    .shard(si as u32)
                    .mode(held.to_string())
                    .resource(format!("{resource:?}"))
                    .detail("already-held")
            });
            return Ok(AcquireOutcome::AlreadyHeld);
        }
        let target = held.join(mode);
        let conversion = held != LockMode::NL;
        if conversion {
            LockStats::bump(&self.stats.conversions);
            trace::emit(|| {
                Event::new(EventKind::Conversion, txn.0)
                    .shard(si as u32)
                    .mode(target.to_string())
                    .resource(format!("{resource:?}"))
                    .detail(format!("{held} -> {target}"))
            });
        }

        // A lock is journaled when the resulting grant is long: either the
        // request itself is long, or it converts a grant that already is
        // (the conversion target must survive a crash just like the
        // original mode did).
        let journal_long = opts.long || (conversion && held_long);

        if self.can_grant(&shard, txn, &resource, target, conversion) {
            if journal_long {
                // Write-ahead: the record must be durable before the grant
                // is acknowledged. A journal crash aborts the acquire — the
                // caller never learns whether the record made it, and replay
                // decides the lock's fate at restart.
                let op = if conversion { JournalOp::Convert } else { JournalOp::Grant };
                self.journal_record(op, txn, &resource, target)?;
            }
            self.install_grant(&mut shard, txn, &resource, target, opts.long);
            LockStats::bump(&self.stats.immediate_grants);
            trace::emit(|| {
                Event::new(EventKind::Grant, txn.0)
                    .shard(si as u32)
                    .mode(target.to_string())
                    .resource(format!("{resource:?}"))
                    .detail("immediate")
            });
            return Ok(AcquireOutcome::Granted { waited: false });
        }

        match opts.policy {
            WaitPolicy::Try => {
                let holders = self.conflicting_holders(&shard, txn, &resource, target);
                Err(LockError::WouldBlock { holders })
            }
            WaitPolicy::Block | WaitPolicy::BlockTimeout(_) => {
                let deadline = match opts.policy {
                    WaitPolicy::BlockTimeout(d) => Some(Instant::now() + d),
                    _ => None,
                };
                self.block_until_granted(
                    si,
                    shard,
                    txn,
                    resource,
                    target,
                    conversion,
                    opts.long,
                    journal_long,
                    deadline,
                )
            }
        }
    }

    /// Releases `resource` for `txn`. Returns `true` if a lock was released.
    pub fn release(&self, txn: TxnId, resource: &R) -> bool {
        let si = self.shard_index(resource);
        let mut shard = self.shard_locked(si);
        let removed = self.remove_grant(&mut shard, txn, resource, true);
        if let Some((mode, long)) = removed {
            LockStats::bump(&self.stats.releases);
            if long {
                // A journal crash here cannot fail the release (the caller's
                // memory state dies with the crash anyway); the frozen
                // journal simply stops acknowledging, and replay decides.
                let _ = self.journal_record(JournalOp::Release, txn, resource, mode);
            }
            trace::emit(|| {
                Event::new(EventKind::Release, txn.0)
                    .shard(si as u32)
                    .mode(mode.to_string())
                    .resource(format!("{resource:?}"))
            });
            if self.has_ungranted_waiters(&shard, resource) {
                self.process_queue(&mut shard, resource);
            }
        }
        removed.is_some()
    }

    /// Releases all locks of `txn` (end of transaction). Returns the number
    /// released.
    ///
    /// The per-txn inventory is *drained* (not cloned): ownership of the
    /// resource keys moves out of the stripe, and each affected shard is
    /// locked exactly once. Resources with no ungranted waiters skip queue
    /// processing entirely.
    pub fn release_all(&self, txn: TxnId) -> usize {
        let held: HashMap<R, (LockMode, bool)> = {
            let mut stripe = self.stripe_locked(txn);
            stripe.remove(&txn).map(|t| t.held).unwrap_or_default()
        };
        let n = held.len();
        self.release_batch(txn, held.into_keys());
        n
    }

    /// Releases only the *short* locks of `txn`, keeping long locks — models
    /// the end of a workstation session whose check-outs persist (\[KSUW85\]).
    pub fn release_short(&self, txn: TxnId) -> usize {
        let shorts: Vec<R> = {
            let mut stripe = self.stripe_locked(txn);
            let Some(t) = stripe.get_mut(&txn) else {
                return 0;
            };
            let held = std::mem::take(&mut t.held);
            let (long, short): (HashMap<_, _>, HashMap<_, _>) =
                held.into_iter().partition(|&(_, (_, l))| l);
            t.held = long;
            if t.held.is_empty() {
                stripe.remove(&txn);
            }
            short.into_keys().collect()
        };
        let n = shorts.len();
        self.release_batch(txn, shorts.into_iter());
        n
    }

    /// Removes `txn`'s grants on the given resources (inventory already
    /// drained by the caller), grouped so each shard is locked once.
    fn release_batch(&self, txn: TxnId, resources: impl Iterator<Item = R>) {
        // Group by shard with a single sort (ascending, matching the
        // detector's canonical order) so each shard is locked exactly once.
        let mut keyed: Vec<(usize, R)> = resources.map(|r| (self.shard_index(&r), r)).collect();
        keyed.sort_unstable_by_key(|&(si, _)| si);
        let mut i = 0;
        while i < keyed.len() {
            let si = keyed[i].0;
            let mut shard = self.shard_locked(si);
            while i < keyed.len() && keyed[i].0 == si {
                let r = &keyed[i].1;
                if let Some((mode, long)) = self.remove_grant(&mut shard, txn, r, false) {
                    LockStats::bump(&self.stats.releases);
                    if long {
                        let _ = self.journal_record(JournalOp::Release, txn, r, mode);
                    }
                    trace::emit(|| {
                        Event::new(EventKind::Release, txn.0)
                            .shard(si as u32)
                            .mode(mode.to_string())
                            .resource(format!("{r:?}"))
                    });
                    if self.has_ungranted_waiters(&shard, r) {
                        self.process_queue(&mut shard, r);
                    }
                }
                i += 1;
            }
        }
    }

    /// Iterates over every grant in the table (for persistence snapshots).
    pub fn for_each_grant(&self, mut f: impl FnMut(&R, TxnId, LockMode, bool)) {
        for si in 0..self.shards.len() {
            let shard = self.shard_locked(si);
            for (r, state) in &shard.resources {
                for g in &state.granted {
                    f(r, g.txn, g.mode, g.long);
                }
            }
        }
    }

    /// Installs a grant directly (used by crash-recovery of long locks).
    ///
    /// The grant is re-journaled into this manager's journal (if attached):
    /// a recovered lock is as durable as a fresh one, so a second crash
    /// before its release must find it again.
    pub fn install_recovered(&self, txn: TxnId, resource: R, mode: LockMode) {
        let si = self.shard_index(&resource);
        let mut shard = self.shard_locked(si);
        let _ = self.journal_record(JournalOp::Grant, txn, &resource, mode);
        self.install_grant(&mut shard, txn, &resource, mode, true);
        trace::emit(|| {
            Event::new(EventKind::Grant, txn.0)
                .shard(si as u32)
                .mode(mode.to_string())
                .rule(trace::RuleTag::Recovered)
                .resource(format!("{resource:?}"))
                .detail("recovered")
        });
    }

    // ----- internals -------------------------------------------------------

    fn can_grant(
        &self,
        shard: &ShardInner<R>,
        txn: TxnId,
        resource: &R,
        target: LockMode,
        conversion: bool,
    ) -> bool {
        let Some(state) = shard.resources.get(resource) else {
            return true;
        };
        for g in &state.granted {
            if g.txn == txn {
                continue;
            }
            LockStats::bump(&self.stats.conflict_tests);
            if !target.compatible(g.mode) {
                return false;
            }
        }
        if !conversion {
            // FIFO fairness: do not overtake incompatible waiters.
            for w in &state.waiting {
                if w.txn == txn || w.granted {
                    continue;
                }
                LockStats::bump(&self.stats.conflict_tests);
                if !target.compatible(w.mode) {
                    return false;
                }
            }
        }
        true
    }

    fn conflicting_holders(
        &self,
        shard: &ShardInner<R>,
        txn: TxnId,
        resource: &R,
        target: LockMode,
    ) -> Vec<TxnId> {
        shard
            .resources
            .get(resource)
            .map(|s| {
                s.granted
                    .iter()
                    .filter(|g| g.txn != txn && !target.compatible(g.mode))
                    .map(|g| g.txn)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Resource-state accessor that creates the entry on first use and
    /// maintains the live-resource count / high-water mark.
    fn state_entry<'a>(&self, shard: &'a mut ShardInner<R>, resource: &R) -> &'a mut ResourceState {
        if !shard.resources.contains_key(resource) {
            shard.resources.insert(resource.clone(), ResourceState::default());
            let live = self.live_resources.fetch_add(1, Ordering::Relaxed) + 1;
            LockStats::raise(&self.stats.max_table_entries, live);
        }
        shard.resources.get_mut(resource).expect("just inserted")
    }

    fn drop_state_if_empty(&self, shard: &mut ShardInner<R>, resource: &R) {
        if let Some(s) = shard.resources.get(resource) {
            if s.granted.is_empty() && s.waiting.is_empty() {
                shard.resources.remove(resource);
                self.live_resources.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    fn install_grant(
        &self,
        shard: &mut ShardInner<R>,
        txn: TxnId,
        resource: &R,
        mode: LockMode,
        long: bool,
    ) {
        let state = self.state_entry(shard, resource);
        if let Some(g) = state.granted.iter_mut().find(|g| g.txn == txn) {
            g.mode = g.mode.join(mode);
            g.long = g.long || long;
        } else {
            state.granted.push(Grant { txn, mode, long });
        }
        // Stripe nests strictly inside the shard critical section (leaf).
        let mut stripe = self.stripe_locked(txn);
        let txn_state = stripe.entry(txn).or_default();
        let entry = txn_state.held.entry(resource.clone()).or_insert((LockMode::NL, false));
        entry.0 = entry.0.join(mode);
        entry.1 = entry.1 || long;
        LockStats::raise(&self.stats.max_locks_per_txn, txn_state.held.len() as u64);
    }

    /// Removes `txn`'s grant on `resource`, returning the removed mode and
    /// long flag (the release paths journal and trace from this — no second
    /// lookup).
    fn remove_grant(
        &self,
        shard: &mut ShardInner<R>,
        txn: TxnId,
        resource: &R,
        update_inventory: bool,
    ) -> Option<(LockMode, bool)> {
        let mut removed = None;
        if let Some(state) = shard.resources.get_mut(resource) {
            if let Some(i) = state.granted.iter().position(|g| g.txn == txn) {
                let g = state.granted.remove(i);
                removed = Some((g.mode, g.long));
            }
        }
        self.drop_state_if_empty(shard, resource);
        if update_inventory {
            let mut stripe = self.stripe_locked(txn);
            if let Some(t) = stripe.get_mut(&txn) {
                t.held.remove(resource);
                if t.held.is_empty() {
                    stripe.remove(&txn);
                }
            }
        }
        removed
    }

    /// Journals one long-lock operation if a journal is attached; a
    /// mid-append crash surfaces as [`LockError::Crashed`].
    fn journal_record(&self, op: JournalOp, txn: TxnId, resource: &R, mode: LockMode) -> Result<()> {
        if let Some(j) = self.journal.get() {
            j.record(op, txn, resource, mode).map_err(|_| LockError::Crashed)?;
        }
        Ok(())
    }

    fn has_ungranted_waiters(&self, shard: &ShardInner<R>, resource: &R) -> bool {
        shard
            .resources
            .get(resource)
            .map(|s| s.waiting.iter().any(|w| !w.granted))
            .unwrap_or(false)
    }

    /// Grants queued waiters that have become compatible. Conversions are
    /// considered first (anywhere in the queue), then the queue is drained
    /// from the front until the first non-grantable waiter.
    ///
    /// The scan is conservative within one pass (a waiter approved in this
    /// pass is not yet visible as granted to the compatibility checks), so
    /// the pass repeats until a fixpoint: otherwise a waiter directly behind
    /// a freshly granted *compatible* one would be skipped with nothing left
    /// to re-trigger the queue — a lost grant that stalled whole workloads.
    ///
    /// If anything was granted, exactly this resource's condvar is notified.
    fn process_queue(&self, shard: &mut ShardInner<R>, resource: &R) {
        let mut granted_any = false;
        while let Some(state) = shard.resources.get(resource) {
            // Conversion pass.
            let mut grant_idx: Vec<usize> = Vec::new();
            for (i, w) in state.waiting.iter().enumerate() {
                if w.granted || w.victim.is_some() || !w.conversion {
                    continue;
                }
                if self.queue_compatible(state, w, true) {
                    grant_idx.push(i);
                }
            }
            // FIFO pass: a waiter is granted when it is compatible with the
            // granted group and with every *ungranted incompatible* waiter
            // ahead of it. Compatible waiters may pass blocked compatible
            // predecessors — granting a compatible mode can never delay the
            // predecessor's own grant, so fairness is preserved while the
            // policy stays aligned with the waits-for edge model.
            for (i, w) in state.waiting.iter().enumerate() {
                if w.granted || w.victim.is_some() || w.conversion {
                    continue;
                }
                if self.queue_compatible(state, w, false)
                    && self.no_incompatible_ahead(state, i, w.mode)
                {
                    grant_idx.push(i);
                }
            }
            if grant_idx.is_empty() {
                break;
            }
            let to_grant: Vec<(TxnId, LockMode, bool)> = {
                let state = shard.resources.get_mut(resource).expect("checked above");
                let mut out = Vec::with_capacity(grant_idx.len());
                for &i in &grant_idx {
                    let w = &mut state.waiting[i];
                    w.granted = true;
                    out.push((w.txn, w.mode, w.long));
                }
                out
            };
            for (txn, mode, long) in to_grant {
                self.install_grant(shard, txn, resource, mode, long);
                trace::emit(|| {
                    Event::new(EventKind::Wakeup, txn.0)
                        .shard(self.shard_index(resource) as u32)
                        .mode(mode.to_string())
                        .resource(format!("{resource:?}"))
                });
            }
            granted_any = true;
            // Loop: the new grants may make further waiters grantable.
        }
        if granted_any {
            // Every granted waiter cloned the condvar out before sleeping, so
            // it is always Some here.
            if let Some(cond) = shard.resources.get(resource).and_then(|s| s.cond.as_ref()) {
                LockStats::bump(&self.stats.wakeups);
                cond.notify_all();
            }
        }
    }

    /// Compatibility of waiter `w` with the granted group (ignoring `w.txn`'s
    /// own grant when it is a conversion) and, transitively, with waiters we
    /// already decided to grant in this pass (approximated by re-checking the
    /// granted list, which `install_grant` updates between passes).
    fn queue_compatible(&self, state: &ResourceState, w: &Waiter, conversion: bool) -> bool {
        for g in &state.granted {
            if conversion && g.txn == w.txn {
                continue;
            }
            LockStats::bump(&self.stats.conflict_tests);
            if !w.mode.compatible(g.mode) {
                return false;
            }
        }
        true
    }

    /// No ungranted waiter ahead of `idx` whose requested mode conflicts
    /// with `mode` (granted and victim-marked entries do not block).
    fn no_incompatible_ahead(&self, state: &ResourceState, idx: usize, mode: LockMode) -> bool {
        state
            .waiting
            .iter()
            .take(idx)
            .all(|w| w.granted || w.victim.is_some() || mode.compatible(w.mode))
    }

    #[allow(clippy::too_many_arguments)]
    fn block_until_granted(
        &self,
        si: usize,
        mut shard: MutexGuard<'_, ShardInner<R>>,
        txn: TxnId,
        resource: R,
        target: LockMode,
        conversion: bool,
        long: bool,
        journal_long: bool,
        deadline: Option<Instant>,
    ) -> Result<AcquireOutcome> {
        LockStats::bump(&self.stats.waits);
        trace::emit(|| {
            Event::new(EventKind::Wait, txn.0)
                .shard(si as u32)
                .mode(target.to_string())
                .resource(format!("{resource:?}"))
        });
        let cond = {
            let state = self.state_entry(&mut shard, &resource);
            state.waiting.push_back(Waiter {
                txn,
                mode: target,
                conversion,
                long,
                granted: false,
                victim: None,
            });
            Arc::clone(state.cond.get_or_insert_with(Default::default))
        };
        // Publish the wait edge, then detect with no shard lock held: the
        // detector needs all shards in canonical order.
        drop(shard);
        self.run_detector();
        let mut shard = self.shard_locked(si);

        loop {
            // Check our waiter entry. The status is re-validated under the
            // shard mutex before every wait, so a grant or victim verdict
            // delivered between checks can never be lost.
            let status = {
                let state = shard.resources.get(&resource).expect("resource with waiter");
                let w = state
                    .waiting
                    .iter()
                    .find(|w| w.txn == txn)
                    .expect("own waiter present");
                if let Some(cycle) = &w.victim {
                    Some(Err(LockError::Deadlock { victim: txn, cycle: cycle.clone() }))
                } else if w.granted {
                    Some(Ok(()))
                } else {
                    None
                }
            };
            match status {
                Some(Ok(())) => {
                    self.remove_waiter_entry_only(&mut shard, txn, &resource);
                    if journal_long {
                        // The grant was installed by `process_queue`; the
                        // record must still be durable before the waiter's
                        // acquire acknowledges. A crash here leaves the
                        // in-memory grant unacknowledged — replay at restart
                        // is the authority on whether it survived.
                        let op = if conversion { JournalOp::Convert } else { JournalOp::Grant };
                        self.journal_record(op, txn, &resource, target)?;
                    }
                    trace::emit(|| {
                        Event::new(EventKind::Grant, txn.0)
                            .shard(si as u32)
                            .mode(target.to_string())
                            .resource(format!("{resource:?}"))
                            .detail("after-wait")
                    });
                    return Ok(AcquireOutcome::Granted { waited: true });
                }
                Some(Err(e)) => {
                    // Targeted cleanup: only this resource's queue can have
                    // been affected by our departure.
                    self.remove_waiter(&mut shard, txn, &resource);
                    if self.has_ungranted_waiters(&shard, &resource) {
                        self.process_queue(&mut shard, &resource);
                    }
                    return Err(e);
                }
                None => {}
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // Status was just checked: not granted, not a victim.
                        self.remove_waiter(&mut shard, txn, &resource);
                        if self.has_ungranted_waiters(&shard, &resource) {
                            self.process_queue(&mut shard, &resource);
                        }
                        return Err(LockError::Timeout);
                    }
                    let (guard, _) = cond
                        .wait_timeout(shard, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    shard = guard;
                }
                None => {
                    shard = cond.wait(shard).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    fn remove_waiter(&self, shard: &mut ShardInner<R>, txn: TxnId, resource: &R) {
        if let Some(state) = shard.resources.get_mut(resource) {
            state.waiting.retain(|w| w.txn != txn);
        }
        self.drop_state_if_empty(shard, resource);
    }

    /// Removes only the waiter entry (grant already installed by
    /// `process_queue`).
    fn remove_waiter_entry_only(&self, shard: &mut ShardInner<R>, txn: TxnId, resource: &R) {
        if let Some(state) = shard.resources.get_mut(resource) {
            state.waiting.retain(|w| w.txn != txn);
        }
    }

    /// Snapshot deadlock detector.
    ///
    /// Locks every shard in ascending index order (the canonical order — the
    /// only code path that holds more than one shard), builds the waits-for
    /// graph from the queues, and resolves cycles to fixpoint: each detected
    /// cycle has its youngest markable member stamped as victim and woken
    /// through its own resource's condvar. Granted and already-victimized
    /// waiters contribute no edges, so a marked victim immediately breaks
    /// its cycle and concurrent enqueuers re-detecting the same ring find
    /// nothing — exactly one victim per cycle.
    fn run_detector(&self) {
        LockStats::bump(&self.stats.detector_runs);
        let mut guards: Vec<MutexGuard<'_, ShardInner<R>>> =
            (0..self.shards.len()).map(|i| self.shard_locked(i)).collect();
        let traced = trace::is_enabled();
        loop {
            // Snapshot: waits-for edges plus each waiter's location. When
            // tracing is on, the same pass collects labelled edges for the
            // DOT export (untraced runs skip the string formatting).
            let mut edges: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
            let mut locs: HashMap<TxnId, (usize, R)> = HashMap::new();
            let mut wf_edges: Vec<trace::WaitEdge> = Vec::new();
            for (si, shard) in guards.iter().enumerate() {
                for (r, state) in &shard.resources {
                    for (pos, w) in state.waiting.iter().enumerate() {
                        if w.granted || w.victim.is_some() {
                            // Runnable or already condemned: no outgoing
                            // edges (stale edges would fabricate cycles).
                            continue;
                        }
                        let mut blockers = Vec::new();
                        for g in &state.granted {
                            if g.txn != w.txn && !w.mode.compatible(g.mode) {
                                blockers.push(g.txn);
                            }
                        }
                        // Under FIFO, earlier incompatible waiters also block
                        // us — except for conversions, which bypass queue
                        // order entirely.
                        if !w.conversion {
                            for w2 in state.waiting.iter().take(pos) {
                                if !w2.granted
                                    && w2.victim.is_none()
                                    && w2.txn != w.txn
                                    && !w.mode.compatible(w2.mode)
                                {
                                    blockers.push(w2.txn);
                                }
                            }
                        }
                        if traced {
                            for &b in &blockers {
                                wf_edges.push(trace::WaitEdge {
                                    waiter: w.txn.0,
                                    holder: b.0,
                                    resource: format!("{r:?}"),
                                    mode: w.mode.to_string(),
                                });
                            }
                        }
                        edges.insert(w.txn, blockers);
                        locs.insert(w.txn, (si, r.clone()));
                    }
                }
            }
            let Some(cycle) = find_cycle_snapshot(&edges) else {
                break;
            };
            LockStats::bump(&self.stats.deadlocks);
            let members_detail = {
                let members: Vec<String> = cycle.iter().map(|t| format!("T{}", t.0)).collect();
                members.join(", ")
            };
            // Youngest member (max TxnId) dies; if its waiter is stale
            // (granted meanwhile), fall back to the next youngest so a real
            // cycle is never left standing.
            let mut members = cycle.clone();
            members.sort_unstable();
            let mut marked = false;
            for &victim in members.iter().rev() {
                let Some((vsi, vres)) = locs.get(&victim) else {
                    continue;
                };
                let Some(state) = guards[*vsi].resources.get_mut(vres) else {
                    continue;
                };
                if let Some(w) = state
                    .waiting
                    .iter_mut()
                    .find(|w| w.txn == victim && !w.granted && w.victim.is_none())
                {
                    w.victim = Some(cycle.clone());
                    let wmode = w.mode;
                    // The detection event goes out only once a victim is
                    // actually marked, so every DeadlockDetected is followed
                    // by exactly one VictimChosen (stale cycles carry the
                    // `stale` marker instead — see below).
                    trace::emit(|| {
                        Event::new(EventKind::DeadlockDetected, 0).detail(members_detail.clone())
                    });
                    trace::emit(|| {
                        Event::new(EventKind::VictimChosen, victim.0)
                            .shard(*vsi as u32)
                            .mode(wmode.to_string())
                            .resource(format!("{vres:?}"))
                    });
                    if traced {
                        let graph = trace::WaitsForGraph {
                            edges: std::mem::take(&mut wf_edges),
                            cycle: cycle.iter().map(|t| t.0).collect(),
                            victim: Some(victim.0),
                        };
                        trace::record_deadlock_dot(graph.to_dot());
                    }
                    // The victim is a blocked waiter, so it installed the
                    // condvar before sleeping.
                    if let Some(cond) = &state.cond {
                        LockStats::bump(&self.stats.wakeups);
                        cond.notify_all();
                    }
                    marked = true;
                    break;
                }
            }
            if !marked {
                // Every member turned runnable between snapshot and marking;
                // nothing to do (and nothing left to loop on). The cycle is
                // still recorded, marked `stale` so trace consumers know no
                // victim was (or needed to be) chosen.
                trace::emit(|| {
                    Event::new(EventKind::DeadlockDetected, 0)
                        .resource("stale")
                        .detail(members_detail.clone())
                });
                break;
            }
        }
    }
}

/// DFS over the snapshot waits-for graph. Tries every waiting txn (in sorted
/// order, for determinism) as the cycle anchor and returns the first cycle
/// found as a list of txns (first == last omitted).
fn find_cycle_snapshot(edges: &HashMap<TxnId, Vec<TxnId>>) -> Option<Vec<TxnId>> {
    fn dfs(
        edges: &HashMap<TxnId, Vec<TxnId>>,
        node: TxnId,
        start: TxnId,
        path: &mut Vec<TxnId>,
        visited: &mut HashMap<TxnId, bool>, // false = open, true = done
    ) -> Option<Vec<TxnId>> {
        path.push(node);
        visited.insert(node, false);
        if let Some(blockers) = edges.get(&node) {
            for &b in blockers {
                if b == start {
                    return Some(path.clone());
                }
                if visited.contains_key(&b) {
                    continue; // on path (cycle not via start) or exhausted
                }
                if let Some(c) = dfs(edges, b, start, path, visited) {
                    return Some(c);
                }
            }
        }
        visited.insert(node, true);
        path.pop();
        None
    }

    let mut starts: Vec<TxnId> = edges.keys().copied().collect();
    starts.sort_unstable();
    for &start in &starts {
        let mut path = Vec::new();
        let mut visited = HashMap::new();
        if let Some(c) = dfs(edges, start, start, &mut path, &mut visited) {
            return Some(c);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::LockMode::*;
    use colock_testkit::{run_threads, wait_until};
    use std::sync::Arc;
    use std::thread;

    type Mgr = LockManager<&'static str>;

    /// Generous bound for "the other thread is enqueued" waits; the
    /// predicates normally flip within microseconds.
    const WAIT: Duration = Duration::from_secs(5);

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn grant_and_reentrant_acquire() {
        let m = Mgr::new();
        assert_eq!(
            m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap(),
            AcquireOutcome::Granted { waited: false }
        );
        assert_eq!(
            m.acquire(t(1), "a", IS, LockRequestOptions::default()).unwrap(),
            AcquireOutcome::AlreadyHeld
        );
        assert_eq!(m.held_mode(t(1), &"a"), S);
    }

    #[test]
    fn compatible_modes_share() {
        let m = Mgr::new();
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(3), "a", IS, LockRequestOptions::default()).unwrap();
        assert_eq!(m.holders(&"a").len(), 3);
    }

    #[test]
    fn incompatible_try_lock_reports_holders() {
        let m = Mgr::new();
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        let err = m.acquire(t(2), "a", S, LockRequestOptions::try_lock()).unwrap_err();
        assert_eq!(err, LockError::WouldBlock { holders: vec![t(1)] });
    }

    #[test]
    fn release_unblocks_waiter() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            m2.acquire(t(2), "a", X, LockRequestOptions::default()).unwrap()
        });
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        assert!(m.release(t(1), &"a"));
        assert_eq!(h.join().unwrap(), AcquireOutcome::Granted { waited: true });
        assert_eq!(m.held_mode(t(2), &"a"), X);
    }

    #[test]
    fn conversion_upgrades_mode() {
        let m = Mgr::new();
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(1), "a", IX, LockRequestOptions::default()).unwrap();
        assert_eq!(m.held_mode(t(1), &"a"), SIX);
        // Still a single grant entry.
        assert_eq!(m.holders(&"a").len(), 1);
    }

    #[test]
    fn conversion_waits_for_other_readers() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "a", S, LockRequestOptions::default()).unwrap();
        let err = m.acquire(t(1), "a", X, LockRequestOptions::try_lock()).unwrap_err();
        assert!(matches!(err, LockError::WouldBlock { .. }));
        // Blocking upgrade succeeds once the other reader leaves.
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            m2.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap()
        });
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        m.release(t(2), &"a");
        assert_eq!(h.join().unwrap(), AcquireOutcome::Granted { waited: true });
        assert_eq!(m.held_mode(t(1), &"a"), X);
    }

    #[test]
    fn fifo_no_overtaking_of_waiting_x() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        // t2 queues an X.
        let m2 = Arc::clone(&m);
        let h2 = thread::spawn(move || {
            m2.acquire(t(2), "a", X, LockRequestOptions::default()).unwrap()
        });
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        // t3's S would be compatible with the grant, but must not overtake.
        let err = m.acquire(t(3), "a", S, LockRequestOptions::try_lock()).unwrap_err();
        assert!(matches!(err, LockError::WouldBlock { .. }));
        m.release(t(1), &"a");
        h2.join().unwrap();
        m.release_all(t(2));
        m.acquire(t(3), "a", S, LockRequestOptions::default()).unwrap();
    }

    #[test]
    fn deadlock_detected_youngest_aborts() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "b", X, LockRequestOptions::default()).unwrap();
        // t1 waits for b.
        let m1 = Arc::clone(&m);
        let h1 = thread::spawn(move || m1.acquire(t(1), "b", X, LockRequestOptions::default()));
        wait_until(WAIT, || m.waiter_count(&"b") == 1);
        // t2 requests a -> cycle {1,2}; victim = youngest = t2 (the requester).
        let err = m.acquire(t(2), "a", X, LockRequestOptions::default()).unwrap_err();
        match err {
            LockError::Deadlock { victim, .. } => assert_eq!(victim, t(2)),
            e => panic!("expected deadlock, got {e:?}"),
        }
        // After t2 aborts, t1 proceeds.
        m.release_all(t(2));
        assert!(h1.join().unwrap().is_ok());
        assert_eq!(m.stats().snapshot().deadlocks, 1);
    }

    #[test]
    fn deadlock_victim_can_be_the_waiting_txn() {
        // t2 (younger) waits first; then t1's request closes the cycle and
        // t2 must be chosen and woken as victim.
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "b", X, LockRequestOptions::default()).unwrap();
        let m2 = Arc::clone(&m);
        let h2 = thread::spawn(move || m2.acquire(t(2), "a", X, LockRequestOptions::default()));
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        let m1 = Arc::clone(&m);
        let h1 = thread::spawn(move || m1.acquire(t(1), "b", X, LockRequestOptions::default()));
        let r2 = h2.join().unwrap();
        match r2 {
            Err(LockError::Deadlock { victim, .. }) => assert_eq!(victim, t(2)),
            other => panic!("expected t2 victim, got {other:?}"),
        }
        m.release_all(t(2));
        assert!(h1.join().unwrap().is_ok());
    }

    #[test]
    fn upgrade_deadlock_between_two_readers() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "a", S, LockRequestOptions::default()).unwrap();
        let m1 = Arc::clone(&m);
        let h1 = thread::spawn(move || m1.acquire(t(1), "a", X, LockRequestOptions::default()));
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        let r2 = m.acquire(t(2), "a", X, LockRequestOptions::default());
        // One of the two must die (the younger: t2).
        match r2 {
            Err(LockError::Deadlock { victim, .. }) => assert_eq!(victim, t(2)),
            other => panic!("expected deadlock, got {other:?}"),
        }
        m.release_all(t(2));
        assert!(h1.join().unwrap().is_ok());
    }

    #[test]
    fn timeout_fires() {
        let m = Mgr::new();
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        let err = m
            .acquire(
                t(2),
                "a",
                X,
                LockRequestOptions {
                    policy: WaitPolicy::BlockTimeout(Duration::from_millis(40)),
                    long: false,
                },
            )
            .unwrap_err();
        assert_eq!(err, LockError::Timeout);
        // The waiter must be fully cleaned up.
        assert_eq!(m.holders(&"a").len(), 1);
    }

    #[test]
    fn release_all_cleans_table() {
        let m = Mgr::new();
        m.acquire(t(1), "a", IS, LockRequestOptions::default()).unwrap();
        m.acquire(t(1), "b", S, LockRequestOptions::default()).unwrap();
        assert_eq!(m.release_all(t(1)), 2);
        assert_eq!(m.table_size(), 0);
        assert!(m.locks_of(t(1)).is_empty());
    }

    #[test]
    fn release_short_keeps_long_locks() {
        let m = Mgr::new();
        m.acquire(t(1), "a", S, LockRequestOptions::long()).unwrap();
        m.acquire(t(1), "b", IS, LockRequestOptions::default()).unwrap();
        assert_eq!(m.release_short(t(1)), 1);
        assert_eq!(m.held_mode(t(1), &"a"), S);
        assert_eq!(m.held_mode(t(1), &"b"), NL);
    }

    #[test]
    fn stats_count_requests_and_tables() {
        let m = Mgr::new();
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "b", S, LockRequestOptions::default()).unwrap();
        let s = m.stats().snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.immediate_grants, 2);
        assert_eq!(s.max_table_entries, 2);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let m: LockManager<&str> = LockManager::with_shards(5);
        assert_eq!(m.shard_count(), 8);
        let m1: LockManager<&str> = LockManager::with_shards(0);
        assert_eq!(m1.shard_count(), 1);
        // The single-shard table still works end to end.
        m1.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        assert_eq!(m1.shard_index(&"anything"), 0);
        m1.release_all(t(1));
        assert_eq!(m1.table_size(), 0);
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let m: LockManager<String> = LockManager::new();
        for i in 0..64 {
            let r = format!("res{i}");
            let s1 = m.shard_index(&r);
            assert_eq!(s1, m.shard_index(&r), "hashing must be deterministic");
            assert!(s1 < m.shard_count());
        }
    }

    #[test]
    fn many_threads_on_one_resource_make_progress() {
        let m = Arc::new(Mgr::new());
        let m2 = Arc::clone(&m);
        run_threads(16, Duration::from_secs(60), move |i| {
            let id = t(i as u64 + 1);
            for _ in 0..20 {
                match m2.acquire(id, "hot", X, LockRequestOptions::default()) {
                    Ok(_) => {
                        m2.release(id, &"hot");
                    }
                    Err(LockError::Deadlock { .. }) => {
                        m2.release_all(id);
                    }
                    Err(e) => panic!("{e}"),
                }
            }
        });
        assert_eq!(m.table_size(), 0);
    }
}
