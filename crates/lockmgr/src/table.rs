//! The lock table: grant/wait queues, conversions, deadlock detection.
//!
//! The table is generic over the resource key `R`; the protocol layer of
//! `colock-core` instantiates it with hierarchical instance paths so that
//! "lock granules within the structure of complex objects" (§4.2) are plain
//! resources here. Scheduling policy:
//!
//! * requests compatible with the granted group **and** with every waiter in
//!   the queue are granted immediately (no overtaking of incompatible
//!   waiters → no starvation),
//! * conversions (upgrades by a transaction that already holds the resource)
//!   only need compatibility with the *other* granted holders and bypass the
//!   queue, as in System R,
//! * on every release the releasing resource's queue is re-processed
//!   front-to-back (conversions first); queues of unrelated resources are
//!   never touched,
//! * when a request starts waiting, the snapshot deadlock detector runs over
//!   the cross-shard waits-for graph; if the new edge closes a cycle, the
//!   **youngest** transaction in the cycle is aborted as the victim.
//!
//! # Sharding and lock order
//!
//! The table is striped `N` ways (default 16): a resource hashes to one
//! shard, and each shard owns its own mutex, so requests on unrelated
//! resources never serialize on a common lock. Every per-resource state
//! additionally carries its own condvar — releases and victim verdicts wake
//! only the waiters of *that* resource, not the whole table (no
//! thundering-herd `notify_all`).
//!
//! Per-transaction lock inventories live in separate *txn stripes* keyed by
//! transaction id. The locking hierarchy is strict and acyclic:
//!
//! 1. shard mutexes, always in ascending shard-index order (single-resource
//!    operations lock exactly one; only the deadlock detector locks all),
//! 2. at most one txn-stripe mutex, only ever acquired *inside* a shard
//!    critical section (leaf level) or on its own.
//!
//! No path locks a shard while holding a stripe and no path locks two
//! stripes, so the manager's own locks cannot deadlock.
//!
//! # Deadlock detection
//!
//! Every waits-for edge is created by an enqueue, so detection triggered at
//! enqueue time is complete: after publishing its wait entry (and dropping
//! its shard lock) the enqueuing thread runs the detector, which locks all
//! shards in canonical order, builds a consistent snapshot of the waits-for
//! graph, and repeatedly extracts cycles. For each cycle the youngest
//! markable member is stamped as victim and woken through its resource's
//! condvar. There is no polling loop and no background thread.
//!
//! # Optimistic intent fast path
//!
//! Short IS/IX requests — the protocol's ancestor-chain intents, the most
//! frequent requests in the system — can bypass the shard mutex entirely.
//! Every (shard, slot) pair owns a versioned atomic *mode-summary word*
//! packing per-class grant counts, a waiter count, a seal bit and a version
//! counter for all resources hashing to that slot. A compatible intent
//! publishes itself by validate-and-CAS on the word (bounded retries); the
//! grant then lives only in the transaction's inventory, marked
//! *optimistic*, and never materializes in the shard map. Any pessimistic
//! S/SIX/X decision on the slot first *seals* the word and *drains*
//! outstanding optimistic grants into real shard grants, so the classic path
//! always decides against a complete granted group; waiters, conversions,
//! long locks and saturated counters all force the fallback. Releases and
//! every pessimistic publication bump the version, so an optimist can never
//! miss a concurrent writer. See DESIGN.md §5 for the word layout and the
//! equivalence argument; `COLOCK_NO_FASTPATH=1` (or [`LockManager::set_fastpath`])
//! disables the fast path for ablations and differential testing.

use crate::adaptive::AdaptivePolicy;
use crate::error::LockError;
use crate::mode::LockMode;
use crate::persistent::{JournalOp, JournalSink};
use crate::stats::LockStats;
use crate::txnid::TxnId;
use crate::Result;
use colock_testkit::explore;
use colock_trace::{self as trace, Event, EventKind};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Multiply-rotate hasher (the `rustc-hash` idiom) for every placement
/// decision and hot map in the table. Placement hashes on each acquire and
/// release were the largest constant factor on the intent chain; SipHash's
/// DoS resistance buys nothing for an in-process table keyed by internal
/// resource ids.
#[derive(Default)]
struct FastHasher(u64);

impl FastHasher {
    const K: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(Self::K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                tail |= u64::from(b) << (8 * i);
            }
            self.add(tail);
        }
        self.add(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Hot maps (shard resources, txn inventories) keyed through [`FastHasher`].
type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// Marker trait for lock-table resource keys.
pub trait Resource: Eq + Hash + Clone + fmt::Debug {}
impl<T: Eq + Hash + Clone + fmt::Debug> Resource for T {}

/// How to behave when a request cannot be granted immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPolicy {
    /// Fail with [`LockError::WouldBlock`] instead of waiting.
    Try,
    /// Wait (with deadlock detection) until granted.
    Block,
    /// Wait, but at most this long.
    BlockTimeout(Duration),
}

/// Options for one acquire call.
#[derive(Debug, Clone, Copy)]
pub struct LockRequestOptions {
    /// Wait behaviour.
    pub policy: WaitPolicy,
    /// Whether the resulting lock is a *long lock* (survives simulated
    /// shutdowns via [`crate::persistent`]).
    pub long: bool,
}

impl Default for LockRequestOptions {
    fn default() -> Self {
        LockRequestOptions { policy: WaitPolicy::Block, long: false }
    }
}

impl LockRequestOptions {
    /// Non-blocking request.
    pub fn try_lock() -> Self {
        LockRequestOptions { policy: WaitPolicy::Try, long: false }
    }

    /// Long-lock request.
    pub fn long() -> Self {
        LockRequestOptions { policy: WaitPolicy::Block, long: true }
    }
}

/// Result of a successful acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// Lock granted now (possibly after waiting; `waited` reports which).
    Granted {
        /// Whether the request had to wait before being granted.
        waited: bool,
    },
    /// The transaction already held the resource in a covering mode.
    AlreadyHeld,
}

#[derive(Debug, Clone)]
struct Grant {
    txn: TxnId,
    mode: LockMode,
    long: bool,
}

#[derive(Debug)]
struct Waiter {
    txn: TxnId,
    /// The *target* mode (join of held and requested for conversions).
    mode: LockMode,
    conversion: bool,
    long: bool,
    granted: bool,
    victim: Option<Vec<TxnId>>,
}

#[derive(Debug, Default)]
struct ResourceState {
    granted: Vec<Grant>,
    waiting: VecDeque<Waiter>,
    /// Wakeups are targeted: only threads blocked on *this* resource wait
    /// here. Cloned out of the shard before sleeping. Lazily allocated by the
    /// first waiter — uncontended resources never pay for a condvar.
    cond: Option<Arc<Condvar>>,
}

/// One entry of a transaction's lock inventory.
#[derive(Debug, Clone, Copy)]
struct HeldLock {
    mode: LockMode,
    long: bool,
    /// Published only in the slot's summary word — the grant has no entry in
    /// the shard map until a pessimistic decision drains it there.
    optimistic: bool,
    /// The resource's placement hash, cached so releases and drains derive
    /// shard and summary slot without rehashing.
    hash: u64,
}

#[derive(Debug)]
struct TxnState<R> {
    held: FastMap<R, HeldLock>,
}

impl<R> Default for TxnState<R> {
    fn default() -> Self {
        TxnState { held: FastMap::default() }
    }
}

#[derive(Debug)]
struct ShardInner<R: Resource> {
    resources: FastMap<R, ResourceState>,
}

impl<R: Resource> Default for ShardInner<R> {
    fn default() -> Self {
        ShardInner { resources: FastMap::default() }
    }
}

/// Number of txn-inventory stripes (fixed; inventories are small maps and
/// only contended across distinct transactions).
const TXN_STRIPES: usize = 16;

/// Default number of lock-table shards.
const DEFAULT_SHARDS: usize = 16;

/// Mode-summary slots per shard. A slot aggregates every resource whose hash
/// lands on it; collisions are only ever conservative (they can force a
/// fallback, never a wrong grant).
const SLOTS_PER_SHARD: usize = 64;

/// Bound on lost-CAS revalidations before an optimistic publication gives up
/// and takes the shard-mutex path.
pub const MAX_FASTPATH_ATTEMPTS: u32 = 4;

/// Packed mode-summary words for the optimistic intent fast path.
///
/// Layout of one `u64`, low to high:
///
/// ```text
/// bits  0..10  optimistic IS grants (inventory-only)
/// bits 10..20  optimistic IX grants (inventory-only)
/// bits 20..30  real share-class grants (S, SIX) in the shard map
/// bits 30..40  real exclusive-class grants (X) in the shard map
/// bits 40..50  waiter-queue entries (granted or not)
/// bit  50      SEALED — a pessimistic S/SIX/X decision is in flight
/// bits 51..64  version — bumped by every publication
/// ```
///
/// Count fields saturate *sticky* at [`COUNT_MAX`]: once a field reaches the
/// ceiling it stops moving and the fast path treats the slot as contended
/// (conservative, not wrong). The release paths repair a saturated field by
/// recounting it from the shard map once the slot's activity drains
/// (`maybe_desaturate`), so one burst no longer disables the fast path for
/// the slot's lifetime. Optimistic fields never reach the ceiling —
/// `admits` refuses the publication one short of it, so their decrements
/// stay exact.
mod summary {
    use crate::mode::LockMode;

    /// Sticky saturation ceiling of every count field.
    pub const COUNT_MAX: u64 = (1 << 10) - 1;
    const IS_SHIFT: u32 = 0;
    const IX_SHIFT: u32 = 10;
    const SHARE_SHIFT: u32 = 20;
    const X_SHIFT: u32 = 30;
    const WAIT_SHIFT: u32 = 40;
    /// The seal bit.
    pub const SEALED: u64 = 1 << 50;
    const VERSION_UNIT: u64 = 1 << 51;

    fn field(w: u64, shift: u32) -> u64 {
        (w >> shift) & COUNT_MAX
    }

    fn inc(w: u64, shift: u32) -> u64 {
        if field(w, shift) == COUNT_MAX {
            w // sticky: a saturated field never moves again
        } else {
            w + (1 << shift)
        }
    }

    fn dec(w: u64, shift: u32) -> u64 {
        let f = field(w, shift);
        if f == COUNT_MAX || f == 0 {
            debug_assert!(f != 0, "summary underflow");
            w
        } else {
            w - (1 << shift)
        }
    }

    pub fn opt_is(w: u64) -> u64 {
        field(w, IS_SHIFT)
    }

    pub fn opt_ix(w: u64) -> u64 {
        field(w, IX_SHIFT)
    }

    pub fn share(w: u64) -> u64 {
        field(w, SHARE_SHIFT)
    }

    pub fn x(w: u64) -> u64 {
        field(w, X_SHIFT)
    }

    pub fn waiters(w: u64) -> u64 {
        field(w, WAIT_SHIFT)
    }

    /// Outstanding optimistic grants on the slot.
    pub fn opt_total(w: u64) -> u64 {
        opt_is(w) + opt_ix(w)
    }

    pub fn sealed(w: u64) -> bool {
        w & SEALED != 0
    }

    pub fn clear_seal(w: u64) -> u64 {
        w & !SEALED
    }

    /// Version bump; the carry out of bit 63 (version wrap) is dropped by
    /// the wrapping add and the count fields below stay intact.
    pub fn bump_version(w: u64) -> u64 {
        w.wrapping_add(VERSION_UNIT)
    }

    /// Whether the summary admits an optimistic publication of `mode`: no
    /// seal, no waiters (FIFO fairness), no conflicting class counts, and
    /// the target count safely below saturation. Modes share the two
    /// optimistic count fields by *lane*: the read-intent lane (IS, Member)
    /// conflicts only with X, the write-intent lane (IX, Insert, Delete)
    /// with both real classes — exactly their compatibility rows.
    pub fn admits(w: u64, mode: LockMode) -> bool {
        if sealed(w) || waiters(w) != 0 || x(w) != 0 {
            return false;
        }
        match mode.fastpath_lane() {
            Some(LockMode::IS) => opt_is(w) < COUNT_MAX - 1,
            Some(LockMode::IX) => share(w) == 0 && opt_ix(w) < COUNT_MAX - 1,
            _ => false,
        }
    }

    fn opt_shift(mode: LockMode) -> u32 {
        match mode.fastpath_lane() {
            Some(LockMode::IS) => IS_SHIFT,
            Some(LockMode::IX) => IX_SHIFT,
            _ => unreachable!("only intent-lane modes publish optimistically"),
        }
    }

    pub fn opt_inc(w: u64, mode: LockMode) -> u64 {
        inc(w, opt_shift(mode))
    }

    pub fn opt_dec(w: u64, mode: LockMode) -> u64 {
        dec(w, opt_shift(mode))
    }

    /// Moves one real grant from `from`'s class to `to`'s class (either may
    /// be an intent or NL, contributing to no class).
    pub fn class_delta(w: u64, from: LockMode, to: LockMode) -> u64 {
        let mut w = w;
        if from.is_share_class() {
            w = dec(w, SHARE_SHIFT);
        } else if from.is_exclusive_class() {
            w = dec(w, X_SHIFT);
        }
        if to.is_share_class() {
            w = inc(w, SHARE_SHIFT);
        } else if to.is_exclusive_class() {
            w = inc(w, X_SHIFT);
        }
        w
    }

    pub fn wait_inc(w: u64) -> u64 {
        inc(w, WAIT_SHIFT)
    }

    pub fn wait_dec(w: u64) -> u64 {
        dec(w, WAIT_SHIFT)
    }

    /// Whether any shard-mutex-owned count field (share / x / waiters) is
    /// pinned at the sticky ceiling. The optimistic fields never saturate
    /// (`admits` refuses one short of it), so they are not consulted.
    pub fn real_saturated(w: u64) -> bool {
        share(w) == COUNT_MAX || x(w) == COUNT_MAX || waiters(w) == COUNT_MAX
    }

    /// Rewrites the share / x / waiter fields to exact recounted values,
    /// leaving the optimistic fields, seal bit and version untouched (the
    /// caller publishes through `slot_update`, which version-bumps).
    pub fn rewrite_real(w: u64, share_n: u64, x_n: u64, wait_n: u64) -> u64 {
        debug_assert!(share_n < COUNT_MAX && x_n < COUNT_MAX && wait_n < COUNT_MAX);
        let mask =
            (COUNT_MAX << SHARE_SHIFT) | (COUNT_MAX << X_SHIFT) | (COUNT_MAX << WAIT_SHIFT);
        (w & !mask) | (share_n << SHARE_SHIFT) | (x_n << X_SHIFT) | (wait_n << WAIT_SHIFT)
    }
}

/// Applies `f` to the slot word with a version bump, retrying until the CAS
/// lands. Returns the published word.
fn slot_update(slot: &AtomicU64, f: impl Fn(u64) -> u64) -> u64 {
    let mut w = slot.load(Ordering::Acquire);
    loop {
        let next = summary::bump_version(f(w));
        match slot.compare_exchange_weak(w, next, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return next,
            Err(cur) => w = cur,
        }
    }
}

/// RAII for the SEALED bit: armed by `seal_and_drain`, cleared on drop on
/// every early exit (journal crash, `WouldBlock`), unless the owner folded
/// the clear into its own publication and `defuse`d the guard.
struct SealGuard<'a> {
    slot: &'a AtomicU64,
    armed: bool,
}

impl SealGuard<'_> {
    fn defuse(&mut self) {
        self.armed = false;
    }
}

impl Drop for SealGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            slot_update(self.slot, summary::clear_seal);
        }
    }
}

/// Test instrumentation hook run between an optimistic publication's
/// validate and its CAS.
type FastpathProbe = Box<dyn FnMut() + Send>;

/// Whether the fast path starts enabled: `COLOCK_NO_FASTPATH` set to any
/// non-empty value other than `0` disables it.
fn fastpath_default() -> bool {
    !std::env::var("COLOCK_NO_FASTPATH").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// One stripe of the per-transaction state map.
type TxnStripe<R> = Mutex<FastMap<TxnId, TxnState<R>>>;

/// The lock manager.
///
/// ```
/// use colock_lockmgr::{LockManager, LockMode, LockRequestOptions, TxnId};
///
/// let lm: LockManager<&str> = LockManager::new();
/// let (t1, t2) = (TxnId(1), TxnId(2));
/// // Multi-granularity: t1 IX on the relation, X on one tuple.
/// lm.acquire(t1, "cells", LockMode::IX, LockRequestOptions::default()).unwrap();
/// lm.acquire(t1, "cells/c1", LockMode::X, LockRequestOptions::default()).unwrap();
/// // t2 can still IS the relation, but not read t1's tuple.
/// assert!(lm.acquire(t2, "cells", LockMode::IS, LockRequestOptions::try_lock()).is_ok());
/// assert!(lm.acquire(t2, "cells/c1", LockMode::S, LockRequestOptions::try_lock()).is_err());
/// lm.release_all(t1);
/// assert!(lm.acquire(t2, "cells/c1", LockMode::S, LockRequestOptions::try_lock()).is_ok());
/// ```
pub struct LockManager<R: Resource> {
    shards: Box<[Mutex<ShardInner<R>>]>,
    shard_mask: usize,
    stripes: Box<[TxnStripe<R>]>,
    /// Resources currently present across all shards (kept as an atomic so
    /// the `max_table_entries` high-water mark needs no cross-shard lock).
    live_resources: AtomicU64,
    stats: LockStats,
    /// Durable long-lock journal (write-ahead with respect to the grant
    /// acknowledgement). `None` until attached; short-lock operations never
    /// consult it, so the hot path stays journal-free.
    journal: OnceLock<Arc<dyn JournalSink<R>>>,
    /// Mode-summary words, `shards * SLOTS_PER_SHARD` of them: the slot
    /// index embeds the shard index, so same slot ⟹ same shard mutex.
    summaries: Box<[AtomicU64]>,
    /// Per-slot heat: accumulated waits, one counter per summary slot. The
    /// adaptive victim policy ranks deadlock-cycle members by the heat of
    /// the slot they are waiting at.
    heat: Box<[AtomicU64]>,
    /// Adaptive contention-management knobs (all off by default).
    adaptive: AdaptivePolicy,
    /// Whether the optimistic intent fast path is on (default: on unless
    /// `COLOCK_NO_FASTPATH` is set).
    fastpath: AtomicBool,
    /// Set by [`LockManager::begin_drain`]: parked waiters are woken and
    /// refused with [`LockError::Draining`] so shutdown never sleeps behind
    /// a blocked lock request. Granted locks are unaffected.
    draining: AtomicBool,
    /// Cheap flag checked on the publication path; the probe mutex is only
    /// touched when armed.
    probe_armed: AtomicBool,
    /// Test probe run between validate and CAS (deterministic interleaving
    /// tests force version bumps there).
    fastpath_probe: Mutex<Option<FastpathProbe>>,
}

impl<R: Resource> Default for LockManager<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Resource> LockManager<R> {
    /// Creates an empty lock manager with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty lock manager striped `n` ways (`n` is rounded up to
    /// a power of two, minimum 1). `with_shards(1)` degenerates to a single
    /// global table — useful as an ablation baseline in benchmarks.
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        LockManager {
            shards: (0..n).map(|_| Mutex::new(ShardInner::default())).collect(),
            shard_mask: n - 1,
            stripes: (0..TXN_STRIPES).map(|_| Mutex::new(FastMap::default())).collect(),
            live_resources: AtomicU64::new(0),
            stats: LockStats::default(),
            journal: OnceLock::new(),
            summaries: (0..n * SLOTS_PER_SHARD).map(|_| AtomicU64::new(0)).collect(),
            heat: (0..n * SLOTS_PER_SHARD).map(|_| AtomicU64::new(0)).collect(),
            adaptive: AdaptivePolicy::from_env(),
            fastpath: AtomicBool::new(fastpath_default()),
            draining: AtomicBool::new(false),
            probe_armed: AtomicBool::new(false),
            fastpath_probe: Mutex::new(None),
        }
    }

    /// Whether the optimistic intent fast path is currently enabled.
    pub fn fastpath_enabled(&self) -> bool {
        self.fastpath.load(Ordering::Relaxed)
    }

    /// Enables or disables the optimistic fast path at runtime (ablations,
    /// differential tests). Outstanding optimistic grants stay valid either
    /// way: the pessimistic path always drains them before deciding against
    /// them.
    pub fn set_fastpath(&self, on: bool) {
        self.fastpath.store(on, Ordering::Relaxed);
    }

    /// Starts draining for shutdown: every parked waiter is woken and its
    /// blocked `acquire` returns [`LockError::Draining`]; blocking requests
    /// issued while the flag is set fail the same way the moment they would
    /// park. Granted locks (including durable long locks) are untouched —
    /// the caller decides whether to release or journal-and-leak them.
    /// Reversed by [`LockManager::end_drain`].
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        // Wake every parked waiter so each one observes the flag under its
        // shard mutex and returns. Locking shard-by-shard is fine: a waiter
        // that parks after we pass its shard re-checks the flag before
        // sleeping and never blocks.
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for state in shard.resources.values() {
                if let Some(cond) = &state.cond {
                    cond.notify_all();
                }
            }
        }
    }

    /// Clears the drain flag so blocking requests park normally again
    /// (a server restart without process restart).
    pub fn end_drain(&self) {
        self.draining.store(false, Ordering::SeqCst);
    }

    /// Whether [`LockManager::begin_drain`] is in effect.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Installs (or clears) a test probe invoked between an optimistic
    /// publication's validate and its CAS — deterministic interleaving tests
    /// force a version bump in exactly that window. The probe runs with the
    /// caller's txn stripe held: it must only act as transactions owned by
    /// *other* stripes, and only while no optimistic grants are outstanding
    /// on the probed slot (a drain would block on the held stripe).
    pub fn set_fastpath_probe(&self, probe: Option<FastpathProbe>) {
        self.probe_armed.store(probe.is_some(), Ordering::Relaxed);
        *self.fastpath_probe.lock().unwrap_or_else(PoisonError::into_inner) = probe;
    }

    /// Attaches the durable long-lock journal. Every later grant, conversion
    /// or release of a *long* lock is recorded before it is acknowledged. At
    /// most one journal per manager: returns `false` (and changes nothing)
    /// if one is already attached.
    pub fn attach_journal(&self, sink: Arc<dyn JournalSink<R>>) -> bool {
        self.journal.set(sink).is_ok()
    }

    /// Whether a journal is attached.
    pub fn has_journal(&self) -> bool {
        self.journal.get().is_some()
    }

    /// Statistics counters.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// The adaptive contention-management policy (runtime-tunable).
    pub fn adaptive(&self) -> &AdaptivePolicy {
        &self.adaptive
    }

    /// Number of shards the table is striped into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `resource` hashes to. Exposed so tests can construct
    /// resource sets that provably land on distinct (or identical) shards.
    pub fn shard_index(&self, resource: &R) -> usize {
        (Self::hash_of(resource) as usize) & self.shard_mask
    }

    /// The one hash every placement decision derives from: low bits pick the
    /// shard, bits 32+ pick the summary slot within it.
    fn hash_of(resource: &R) -> u64 {
        let mut h = FastHasher::default();
        resource.hash(&mut h);
        h.finish()
    }

    /// Global index of the summary slot for hash `h`. Embeds the shard
    /// index, so two resources sharing a slot always share a shard mutex.
    fn slot_index_from_hash(&self, h: u64) -> usize {
        ((h as usize) & self.shard_mask) * SLOTS_PER_SHARD
            + ((h >> 32) as usize & (SLOTS_PER_SHARD - 1))
    }

    fn slot_from_hash(&self, h: u64) -> &AtomicU64 {
        &self.summaries[self.slot_index_from_hash(h)]
    }

    /// Locks one shard, recovering from poisoning: a panicking test thread
    /// must not cascade into every later acquire.
    fn shard_locked(&self, idx: usize) -> MutexGuard<'_, ShardInner<R>> {
        self.shards[idx].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Locks the txn stripe owning `txn`'s inventory.
    fn stripe_locked(&self, txn: TxnId) -> MutexGuard<'_, FastMap<TxnId, TxnState<R>>> {
        self.stripes[(txn.0 as usize) & (TXN_STRIPES - 1)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The mode `txn` currently holds on `resource` (NL if none).
    pub fn held_mode(&self, txn: TxnId, resource: &R) -> LockMode {
        self.stripe_locked(txn)
            .get(&txn)
            .and_then(|t| t.held.get(resource))
            .map(|h| h.mode)
            .unwrap_or(LockMode::NL)
    }

    /// All `(resource, mode, long)` locks held by `txn`.
    pub fn locks_of(&self, txn: TxnId) -> Vec<(R, LockMode, bool)> {
        self.stripe_locked(txn)
            .get(&txn)
            .map(|t| t.held.iter().map(|(r, h)| (r.clone(), h.mode, h.long)).collect())
            .unwrap_or_default()
    }

    /// All `(txn, mode)` grants on `resource` — the shard map's real grants
    /// plus any optimistic fast-path grants, which live only in the
    /// inventories.
    pub fn holders(&self, resource: &R) -> Vec<(TxnId, LockMode)> {
        let mut out: Vec<(TxnId, LockMode)> = self
            .shard_locked(self.shard_index(resource))
            .resources
            .get(resource)
            .map(|s| s.granted.iter().map(|g| (g.txn, g.mode)).collect())
            .unwrap_or_default();
        for stripe in self.stripes.iter() {
            let guard = stripe.lock().unwrap_or_else(PoisonError::into_inner);
            for (txn, t) in guard.iter() {
                if let Some(h) = t.held.get(resource) {
                    if h.optimistic {
                        out.push((*txn, h.mode));
                    }
                }
            }
        }
        out
    }

    /// Number of resources currently present in the table.
    pub fn table_size(&self) -> usize {
        (0..self.shards.len()).map(|i| self.shard_locked(i).resources.len()).sum()
    }

    /// Total number of grant entries currently held: real grants in the
    /// table plus optimistic fast-path grants in the inventories.
    pub fn grant_count(&self) -> usize {
        let real: usize = (0..self.shards.len())
            .map(|i| self.shard_locked(i).resources.values().map(|s| s.granted.len()).sum::<usize>())
            .sum();
        let optimistic: usize = self
            .stripes
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .map(|t| t.held.values().filter(|h| h.optimistic).count())
                    .sum::<usize>()
            })
            .sum();
        real + optimistic
    }

    /// Number of *ungranted* waiters queued on `resource`. Lets tests (and
    /// stall diagnostics) observe "txn N is enqueued" directly instead of
    /// sleeping and hoping the scheduler got there.
    pub fn waiter_count(&self, resource: &R) -> usize {
        self.shard_locked(self.shard_index(resource))
            .resources
            .get(resource)
            .map(|s| s.waiting.iter().filter(|w| !w.granted).count())
            .unwrap_or(0)
    }

    /// Renders the full lock-table state (holders, waiters, wait targets) —
    /// for diagnostics and stall post-mortems.
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for si in 0..self.shards.len() {
            let shard = self.shard_locked(si);
            for (r, state) in &shard.resources {
                let _ = writeln!(out, "resource {r:?} [shard {si}]:");
                for g in &state.granted {
                    let _ = writeln!(out, "  granted {} {} long={}", g.txn, g.mode, g.long);
                }
                for w in &state.waiting {
                    let _ = writeln!(
                        out,
                        "  waiting {} {} conv={} granted={} victim={}",
                        w.txn,
                        w.mode,
                        w.conversion,
                        w.granted,
                        w.victim.is_some()
                    );
                }
            }
        }
        for stripe in self.stripes.iter() {
            let guard = stripe.lock().unwrap_or_else(PoisonError::into_inner);
            for (txn, t) in guard.iter() {
                for (r, h) in &t.held {
                    if h.optimistic {
                        let _ = writeln!(out, "optimistic {txn} {} on {r:?}", h.mode);
                    }
                }
            }
        }
        out
    }

    /// Acquires (or converts to) `mode` on `resource` for `txn`.
    ///
    /// Short IS/IX requests first try the optimistic fast path (a validated
    /// CAS on the slot's mode-summary word, no shard mutex); every other
    /// request — and every fast-path refusal — takes the classic
    /// shard-mutex path.
    pub fn acquire(
        &self,
        txn: TxnId,
        resource: R,
        mode: LockMode,
        opts: LockRequestOptions,
    ) -> Result<AcquireOutcome> {
        debug_assert!(mode != LockMode::NL, "cannot acquire NL");
        explore::yield_point(|| format!("acquire {mode}|{resource:?}"));
        if mode.is_intent() && !opts.long && self.fastpath.load(Ordering::Relaxed) {
            if let Some(outcome) = self.try_fastpath(txn, &resource, mode) {
                return Ok(outcome);
            }
        }
        self.acquire_pessimistic(txn, resource, mode, opts)
    }

    /// Acquires `mode` (an intent) on every resource of `chain`, front to
    /// back — the protocol layer's ancestor chain. Consecutive fast-path
    /// answers share one stripe critical section and coalesced stats; any
    /// link the fast path refuses (conversion, summary conflict, long
    /// request, fast path disabled) is delegated to the pessimistic path and
    /// the batch resumes after it. Outcomes come back per link, in order; an
    /// error keeps earlier grants, exactly like the equivalent sequence of
    /// [`LockManager::acquire`] calls.
    pub fn acquire_intent_chain(
        &self,
        txn: TxnId,
        chain: &[R],
        mode: LockMode,
        opts: LockRequestOptions,
    ) -> Result<Vec<AcquireOutcome>> {
        debug_assert!(mode.is_intent(), "chain batching is for intent modes");
        explore::yield_point(|| {
            let mut label = format!("chain {mode}");
            for r in chain {
                label.push('|');
                label.push_str(&format!("{r:?}"));
            }
            label
        });
        let mut out = Vec::with_capacity(chain.len());
        if !mode.is_intent() || opts.long || !self.fastpath.load(Ordering::Relaxed) {
            for r in chain {
                out.push(self.acquire(txn, r.clone(), mode, opts)?);
            }
            return Ok(out);
        }
        let mut i = 0;
        while i < chain.len() {
            // Batched section: answer as many consecutive links as the fast
            // path admits under one stripe lock; stats and trace follow
            // after the unlock. `already` holds the covering mode for
            // AlreadyHeld answers, None for fresh optimistic grants.
            let mut batched: Vec<(usize, Option<LockMode>)> = Vec::new();
            let mut hits = 0u64;
            let mut fell_back = false;
            {
                let mut stripe = self.stripe_locked(txn);
                let t = stripe.entry(txn).or_default();
                while i < chain.len() {
                    let r = &chain[i];
                    if let Some(held) = t.held.get(r) {
                        if held.mode.covers(mode) {
                            batched.push((i, Some(held.mode)));
                            out.push(AcquireOutcome::AlreadyHeld);
                            i += 1;
                            continue;
                        }
                        // Conversions belong to the pessimistic path.
                        LockStats::bump(&self.stats.intent_acquires);
                        LockStats::bump(&self.stats.fastpath_fallbacks);
                        fell_back = true;
                        break;
                    }
                    LockStats::bump(&self.stats.intent_acquires);
                    let h = Self::hash_of(r);
                    if !self.publish_optimistic(self.slot_from_hash(h), mode) {
                        LockStats::bump(&self.stats.fastpath_fallbacks);
                        fell_back = true;
                        break;
                    }
                    t.held.insert(r.clone(), HeldLock { mode, long: false, optimistic: true, hash: h });
                    LockStats::raise(&self.stats.max_locks_per_txn, t.held.len() as u64);
                    hits += 1;
                    batched.push((i, None));
                    out.push(AcquireOutcome::Granted { waited: false });
                    i += 1;
                }
            }
            LockStats::add(&self.stats.requests, batched.len() as u64);
            LockStats::add(&self.stats.immediate_grants, hits);
            LockStats::add(&self.stats.fastpath_hits, hits);
            if trace::is_enabled() {
                for &(idx, already) in &batched {
                    let r = &chain[idx];
                    let si = self.shard_index(r);
                    trace::emit(|| {
                        Event::new(EventKind::Request, txn.0)
                            .shard(si as u32)
                            .mode(mode.to_string())
                            .resource(format!("{r:?}"))
                    });
                    trace::emit(|| {
                        let e = Event::new(EventKind::Grant, txn.0)
                            .shard(si as u32)
                            .resource(format!("{r:?}"));
                        match already {
                            Some(held) => e.mode(held.to_string()).detail("already-held"),
                            None => e.mode(mode.to_string()).detail("fastpath"),
                        }
                    });
                }
            }
            if fell_back {
                // Delegate directly (not via `acquire`): the gate already
                // counted this link, so re-entering it would double-count.
                out.push(self.acquire_pessimistic(txn, chain[i].clone(), mode, opts)?);
                i += 1;
            }
        }
        Ok(out)
    }

    /// The optimistic gate: answers a short IS/IX request from the inventory
    /// and the summary word alone — no shard mutex. `None` means the caller
    /// must take the pessimistic path (the fallback is counted here; the
    /// request itself is counted by whichever path answers).
    fn try_fastpath(&self, txn: TxnId, resource: &R, mode: LockMode) -> Option<AcquireOutcome> {
        let h = Self::hash_of(resource);
        let si = (h as usize) & self.shard_mask;
        let slot = self.slot_from_hash(h);
        let mut stripe = self.stripe_locked(txn);
        if let Some(held) = stripe.get(&txn).and_then(|t| t.held.get(resource)) {
            if held.mode.covers(mode) {
                let held_mode = held.mode;
                drop(stripe);
                LockStats::bump(&self.stats.requests);
                trace::emit(|| {
                    Event::new(EventKind::Request, txn.0)
                        .shard(si as u32)
                        .mode(mode.to_string())
                        .resource(format!("{resource:?}"))
                });
                trace::emit(|| {
                    Event::new(EventKind::Grant, txn.0)
                        .shard(si as u32)
                        .mode(held_mode.to_string())
                        .resource(format!("{resource:?}"))
                        .detail("already-held")
                });
                return Some(AcquireOutcome::AlreadyHeld);
            }
            // Conversions belong to the pessimistic path.
            LockStats::bump(&self.stats.intent_acquires);
            LockStats::bump(&self.stats.fastpath_fallbacks);
            return None;
        }
        LockStats::bump(&self.stats.intent_acquires);
        if !self.publish_optimistic(slot, mode) {
            LockStats::bump(&self.stats.fastpath_fallbacks);
            return None;
        }
        // Published: the inventory entry must exist before the stripe
        // unlocks, or a draining pessimist could find the count with nothing
        // to migrate.
        let t = stripe.entry(txn).or_default();
        t.held.insert(resource.clone(), HeldLock { mode, long: false, optimistic: true, hash: h });
        LockStats::raise(&self.stats.max_locks_per_txn, t.held.len() as u64);
        drop(stripe);
        LockStats::bump(&self.stats.requests);
        LockStats::bump(&self.stats.immediate_grants);
        LockStats::bump(&self.stats.fastpath_hits);
        trace::emit(|| {
            Event::new(EventKind::Request, txn.0)
                .shard(si as u32)
                .mode(mode.to_string())
                .resource(format!("{resource:?}"))
        });
        trace::emit(|| {
            Event::new(EventKind::Grant, txn.0)
                .shard(si as u32)
                .mode(mode.to_string())
                .resource(format!("{resource:?}"))
                .detail("fastpath")
        });
        Some(AcquireOutcome::Granted { waited: false })
    }

    /// Bounded validate-and-CAS publication of one optimistic intent into
    /// `slot`. Retries only on a lost CAS (the version moved); any summary
    /// conflict — seal, waiters, class counts, saturation — refuses
    /// immediately.
    fn publish_optimistic(&self, slot: &AtomicU64, mode: LockMode) -> bool {
        let mut attempts = 0;
        loop {
            let w = slot.load(Ordering::Acquire);
            if !summary::admits(w, mode) {
                return false;
            }
            if self.probe_armed.load(Ordering::Relaxed) {
                self.run_probe();
            }
            let next = summary::bump_version(summary::opt_inc(w, mode));
            match slot.compare_exchange(w, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(_) => {
                    LockStats::bump(&self.stats.fastpath_retries);
                    attempts += 1;
                    if attempts >= MAX_FASTPATH_ATTEMPTS {
                        return false;
                    }
                }
            }
        }
    }

    /// Runs the armed test probe (see [`LockManager::set_fastpath_probe`]).
    fn run_probe(&self) {
        if let Some(f) =
            self.fastpath_probe.lock().unwrap_or_else(PoisonError::into_inner).as_mut()
        {
            f();
        }
    }

    /// The classic shard-mutex acquire path. Pessimistic S/SIX/X decisions
    /// seal the summary slot and drain outstanding optimistic grants into
    /// real shard grants before deciding, so `can_grant` always sees the
    /// complete granted group.
    fn acquire_pessimistic(
        &self,
        txn: TxnId,
        resource: R,
        mode: LockMode,
        opts: LockRequestOptions,
    ) -> Result<AcquireOutcome> {
        LockStats::bump(&self.stats.requests);
        let h = Self::hash_of(&resource);
        let si = (h as usize) & self.shard_mask;
        let slot = self.slot_from_hash(h);
        trace::emit(|| {
            Event::new(EventKind::Request, txn.0)
                .shard(si as u32)
                .mode(mode.to_string())
                .resource(format!("{resource:?}"))
        });
        let mut shard = self.shard_locked(si);

        // Held mode comes from our own grant entry in the shard (there is at
        // most one per txn/resource), keeping the hot path off the stripes.
        let grant = shard
            .resources
            .get(&resource)
            .and_then(|s| s.granted.iter().find(|g| g.txn == txn));
        let mut held = grant.map(|g| g.mode).unwrap_or(LockMode::NL);
        let held_long = grant.is_some_and(|g| g.long);
        if held == LockMode::NL
            && summary::opt_total(slot.load(Ordering::Acquire)) != 0
        {
            // An own fast-path grant lives only in the inventory; surface it
            // so covering answers and conversion events see the true held
            // mode. Zero optimistic counts prove there is nothing to find,
            // keeping the common path at one atomic load.
            let stripe = self.stripe_locked(txn);
            if let Some(e) = stripe.get(&txn).and_then(|t| t.held.get(&resource)) {
                if e.optimistic {
                    held = e.mode;
                }
            }
        }
        if held.covers(mode) {
            trace::emit(|| {
                Event::new(EventKind::Grant, txn.0)
                    .shard(si as u32)
                    .mode(held.to_string())
                    .resource(format!("{resource:?}"))
                    .detail("already-held")
            });
            return Ok(AcquireOutcome::AlreadyHeld);
        }
        let target = held.join(mode);
        let conversion = held != LockMode::NL;
        if conversion {
            LockStats::bump(&self.stats.conversions);
            trace::emit(|| {
                Event::new(EventKind::Conversion, txn.0)
                    .shard(si as u32)
                    .mode(target.to_string())
                    .resource(format!("{resource:?}"))
                    .detail(format!("{held} -> {target}"))
            });
        }

        // A lock is journaled when the resulting grant is long: either the
        // request itself is long, or it converts a grant that already is
        // (the conversion target must survive a crash just like the
        // original mode did).
        let journal_long = opts.long || (conversion && held_long);

        // S/SIX/X decisions must account for every optimistic grant. With
        // optimists outstanding, seal the slot first: from here to our own
        // publication no optimist can publish, and the drain has migrated
        // every outstanding optimistic grant into the shard map — including
        // our own, which is why the seal comes before `can_grant`. With
        // none outstanding — the overwhelmingly common case — skip the
        // seal: the validated CAS at publication time (below) proves no
        // optimist slipped in between decision and grant. Intent targets
        // never seal: optimistic grants are compatible with them by
        // construction (two intents never conflict).
        let mut seal = if !target.is_intent()
            && summary::opt_total(slot.load(Ordering::Acquire)) != 0
        {
            Some(self.seal_and_drain(&mut shard, si, self.slot_index_from_hash(h)))
        } else {
            None
        };

        let mut grantable = self.can_grant(&shard, txn, &resource, target, conversion);
        let mut reserved = false;
        if grantable && !target.is_intent() && seal.is_none() {
            // One CAS that moves our class counts and atomically re-checks
            // that no optimist published since the decision. Failure (an
            // optimist raced in, or the version churned past the retry
            // budget) falls back to the full seal-and-drain decision;
            // draining only *adds* grants, so the request must be
            // re-decided and may now have to wait.
            reserved = self.try_reserve_classes(slot, held, target);
            if !reserved {
                seal = Some(self.seal_and_drain(&mut shard, si, self.slot_index_from_hash(h)));
                grantable = self.can_grant(&shard, txn, &resource, target, conversion);
            }
        }

        if grantable {
            if journal_long {
                // Write-ahead: the record must be durable before the grant
                // is acknowledged. A journal crash aborts the acquire — the
                // caller never learns whether the record made it, and replay
                // decides the lock's fate at restart.
                let op = if conversion { JournalOp::Convert } else { JournalOp::Grant };
                if let Err(e) = self.journal_record(op, txn, &resource, target) {
                    if reserved {
                        // Nothing was installed: retract the reserved class
                        // counts before surfacing the crash.
                        slot_update(slot, |w| summary::class_delta(w, target, held));
                    }
                    return Err(e);
                }
            }
            let (prev, absorbed) =
                self.install_grant(&mut shard, txn, &resource, target, opts.long, h);
            if reserved {
                // The reserve CAS already published the class move; it
                // validated zero optimistic counts, so there was nothing to
                // absorb and the previous mode is the real grant's.
                debug_assert!(absorbed.is_none() && prev == held, "reserve raced an optimist");
            } else {
                self.publish_grant(slot, seal.take(), prev, target, absorbed);
            }
            LockStats::bump(&self.stats.immediate_grants);
            trace::emit(|| {
                Event::new(EventKind::Grant, txn.0)
                    .shard(si as u32)
                    .mode(target.to_string())
                    .resource(format!("{resource:?}"))
                    .detail("immediate")
            });
            return Ok(AcquireOutcome::Granted { waited: false });
        }

        match opts.policy {
            WaitPolicy::Try => {
                let holders = self.conflicting_holders(&shard, txn, &resource, target);
                // A live seal guard unseals itself on drop.
                Err(LockError::WouldBlock { holders })
            }
            WaitPolicy::Block | WaitPolicy::BlockTimeout(_) => {
                // Adaptive wait-depth limiting: refuse instead of joining a
                // queue already at the limit — under hot-spot contention a
                // bounded refusal the caller can retry with backoff beats an
                // unbounded convoy. A live seal guard unseals on drop.
                let limit = self.adaptive.wait_depth_limit();
                if limit != 0 {
                    let depth = shard
                        .resources
                        .get(&resource)
                        .map(|s| s.waiting.iter().filter(|w| !w.granted).count())
                        .unwrap_or(0);
                    if depth >= limit {
                        LockStats::bump(&self.stats.wait_depth_refusals);
                        trace::emit(|| {
                            Event::new(EventKind::Request, txn.0)
                                .shard(si as u32)
                                .mode(target.to_string())
                                .resource(format!("{resource:?}"))
                                .detail("wait-depth-refused")
                        });
                        let holders = self.conflicting_holders(&shard, txn, &resource, target);
                        return Err(LockError::WouldBlock { holders });
                    }
                }
                let deadline = match opts.policy {
                    WaitPolicy::BlockTimeout(d) => Some(Instant::now() + d),
                    _ => None,
                };
                self.block_until_granted(
                    si,
                    shard,
                    txn,
                    resource,
                    target,
                    conversion,
                    opts.long,
                    journal_long,
                    deadline,
                    self.slot_index_from_hash(h),
                    seal,
                )
            }
        }
    }

    /// Releases `resource` for `txn`. Returns `true` if a lock was released.
    pub fn release(&self, txn: TxnId, resource: &R) -> bool {
        explore::yield_point(|| format!("release|{resource:?}"));
        let h = Self::hash_of(resource);
        let si = (h as usize) & self.shard_mask;
        let slot = self.slot_from_hash(h);
        // Optimistic grants live only in the inventory: releasing one never
        // touches the shard. Zero optimistic counts prove ours (if any) is a
        // real grant — one atomic load on the common path.
        if summary::opt_total(slot.load(Ordering::Acquire)) != 0 {
            let mut stripe = self.stripe_locked(txn);
            let opt_mode = stripe
                .get(&txn)
                .and_then(|t| t.held.get(resource))
                .filter(|e| e.optimistic)
                .map(|e| e.mode);
            if let Some(mode) = opt_mode {
                let t = stripe.get_mut(&txn).expect("entry just seen");
                t.held.remove(resource);
                if t.held.is_empty() {
                    stripe.remove(&txn);
                }
                // Trace before the decrement: the summary CAS is what lets a
                // conflicting request through, so the Release event must
                // carry an earlier sequence than any grant it enables — the
                // serializability certifier orders commit-release overlaps
                // by these sequences.
                trace::emit(|| {
                    Event::new(EventKind::Release, txn.0)
                        .shard(si as u32)
                        .mode(mode.to_string())
                        .resource(format!("{resource:?}"))
                });
                // Decrement before the stripe unlocks so a draining
                // pessimist never sees a count with no entry left behind it.
                slot_update(slot, |w| summary::opt_dec(w, mode));
                drop(stripe);
                LockStats::bump(&self.stats.releases);
                // Never migrated ⟹ no real grant ⟹ no queue to process: a
                // conflicting request would have drained this grant first.
                return true;
            }
        }
        let mut shard = self.shard_locked(si);
        let removed = self.remove_grant(&mut shard, txn, resource, slot, true);
        if let Some((mode, long)) = removed {
            LockStats::bump(&self.stats.releases);
            if long {
                // A journal crash here cannot fail the release (the caller's
                // memory state dies with the crash anyway); the frozen
                // journal simply stops acknowledging, and replay decides.
                let _ = self.journal_record(JournalOp::Release, txn, resource, mode);
            }
            trace::emit(|| {
                Event::new(EventKind::Release, txn.0)
                    .shard(si as u32)
                    .mode(mode.to_string())
                    .resource(format!("{resource:?}"))
            });
            if self.has_ungranted_waiters(&shard, resource) {
                self.process_queue(&mut shard, resource);
            }
            self.maybe_desaturate(&shard, self.slot_index_from_hash(h));
        }
        removed.is_some()
    }

    /// Releases all locks of `txn` (end of transaction). Returns the number
    /// released.
    ///
    /// The per-txn inventory is *drained* (not cloned): ownership of the
    /// resource keys moves out of the stripe, and each affected shard is
    /// locked exactly once. Resources with no ungranted waiters skip queue
    /// processing entirely.
    pub fn release_all(&self, txn: TxnId) -> usize {
        explore::yield_point(|| "release_all|*".to_string());
        let mut real: Vec<(R, u64)> = Vec::new();
        let mut opt_count = 0usize;
        {
            let mut stripe = self.stripe_locked(txn);
            let held = stripe.remove(&txn).map(|t| t.held).unwrap_or_default();
            for (r, e) in held {
                if e.optimistic {
                    // Trace before the decrement (see `release`): the event
                    // sequence must precede any grant the CAS enables.
                    self.trace_optimistic_release(txn, &r, e.mode);
                    // Decrement under the stripe (see `release`).
                    slot_update(self.slot_from_hash(e.hash), |w| summary::opt_dec(w, e.mode));
                    opt_count += 1;
                } else {
                    real.push((r, e.hash));
                }
            }
        }
        let n = real.len() + opt_count;
        LockStats::add(&self.stats.releases, opt_count as u64);
        self.release_batch(txn, real);
        n
    }

    /// Releases only the *short* locks of `txn`, keeping long locks — models
    /// the end of a workstation session whose check-outs persist (\[KSUW85\]).
    pub fn release_short(&self, txn: TxnId) -> usize {
        explore::yield_point(|| "release_short|*".to_string());
        let mut real: Vec<(R, u64)> = Vec::new();
        let mut opt_count = 0usize;
        {
            let mut stripe = self.stripe_locked(txn);
            let Some(t) = stripe.get_mut(&txn) else {
                return 0;
            };
            let held = std::mem::take(&mut t.held);
            for (r, e) in held {
                if e.long {
                    t.held.insert(r, e);
                } else if e.optimistic {
                    // Trace before the decrement (see `release`).
                    self.trace_optimistic_release(txn, &r, e.mode);
                    slot_update(self.slot_from_hash(e.hash), |w| summary::opt_dec(w, e.mode));
                    opt_count += 1;
                } else {
                    real.push((r, e.hash));
                }
            }
            if t.held.is_empty() {
                stripe.remove(&txn);
            }
        }
        let n = real.len() + opt_count;
        LockStats::add(&self.stats.releases, opt_count as u64);
        self.release_batch(txn, real);
        n
    }

    /// Traces one optimistic release. Called *before* the summary-slot
    /// decrement, while the stripe is still held: the decrement CAS is what
    /// admits a conflicting grant, so the Release event must carry an
    /// earlier trace sequence than any grant it enables — the
    /// serializability certifier orders commit-release overlaps by those
    /// sequences.
    fn trace_optimistic_release(&self, txn: TxnId, r: &R, mode: LockMode) {
        trace::emit(|| {
            Event::new(EventKind::Release, txn.0)
                .shard(self.shard_index(r) as u32)
                .mode(mode.to_string())
                .resource(format!("{r:?}"))
        });
    }

    /// Removes `txn`'s grants on the given resources (inventory already
    /// drained by the caller, each paired with its cached placement hash),
    /// grouped so each shard is locked once.
    fn release_batch(&self, txn: TxnId, resources: Vec<(R, u64)>) {
        // Group by shard with a single sort (ascending, matching the
        // detector's canonical order) so each shard is locked exactly once.
        // The cached hash rides along so each resource's summary slot is
        // derivable without rehashing.
        let mut keyed: Vec<(usize, u64, R)> = resources
            .into_iter()
            .map(|(r, h)| ((h as usize) & self.shard_mask, h, r))
            .collect();
        keyed.sort_unstable_by_key(|&(si, _, _)| si);
        let mut i = 0;
        while i < keyed.len() {
            let si = keyed[i].0;
            let mut shard = self.shard_locked(si);
            while i < keyed.len() && keyed[i].0 == si {
                let (_, h, ref r) = keyed[i];
                let slot = self.slot_from_hash(h);
                if let Some((mode, long)) = self.remove_grant(&mut shard, txn, r, slot, false) {
                    LockStats::bump(&self.stats.releases);
                    if long {
                        let _ = self.journal_record(JournalOp::Release, txn, r, mode);
                    }
                    trace::emit(|| {
                        Event::new(EventKind::Release, txn.0)
                            .shard(si as u32)
                            .mode(mode.to_string())
                            .resource(format!("{r:?}"))
                    });
                    if self.has_ungranted_waiters(&shard, r) {
                        self.process_queue(&mut shard, r);
                    }
                    self.maybe_desaturate(&shard, self.slot_index_from_hash(h));
                }
                i += 1;
            }
        }
    }

    /// Iterates over every grant — real grants in the table, then optimistic
    /// fast-path grants from the inventories (always short, so persistence
    /// snapshots never capture them).
    pub fn for_each_grant(&self, mut f: impl FnMut(&R, TxnId, LockMode, bool)) {
        for si in 0..self.shards.len() {
            let shard = self.shard_locked(si);
            for (r, state) in &shard.resources {
                for g in &state.granted {
                    f(r, g.txn, g.mode, g.long);
                }
            }
        }
        for stripe in self.stripes.iter() {
            let guard = stripe.lock().unwrap_or_else(PoisonError::into_inner);
            for (txn, t) in guard.iter() {
                for (r, h) in &t.held {
                    if h.optimistic {
                        f(r, *txn, h.mode, false);
                    }
                }
            }
        }
    }

    /// Installs a grant directly (used by crash-recovery of long locks).
    ///
    /// The grant is re-journaled into this manager's journal (if attached):
    /// a recovered lock is as durable as a fresh one, so a second crash
    /// before its release must find it again.
    pub fn install_recovered(&self, txn: TxnId, resource: R, mode: LockMode) {
        let h = Self::hash_of(&resource);
        let si = (h as usize) & self.shard_mask;
        let slot = self.slot_from_hash(h);
        let mut shard = self.shard_locked(si);
        let _ = self.journal_record(JournalOp::Grant, txn, &resource, mode);
        // Recovery is cold: seal and drain unconditionally, keeping the
        // summary publication a single step regardless of the mode.
        let seal = self.seal_and_drain(&mut shard, si, self.slot_index_from_hash(h));
        let (prev, absorbed) = self.install_grant(&mut shard, txn, &resource, mode, true, h);
        self.publish_grant(slot, Some(seal), prev, prev.join(mode), absorbed);
        trace::emit(|| {
            Event::new(EventKind::Grant, txn.0)
                .shard(si as u32)
                .mode(mode.to_string())
                .rule(trace::RuleTag::Recovered)
                .resource(format!("{resource:?}"))
                .detail("recovered")
        });
    }

    /// Debug re-derivation: recomputes every summary word from the shard
    /// maps and the inventories and compares. Only meaningful at quiescent
    /// points (no in-flight acquire or release) — tests and the stress
    /// harnesses call it between rounds. Sticky-saturated count fields are
    /// skipped (they are permanently conservative by design). Returns a
    /// description of the first mismatch.
    pub fn check_summary_consistency(&self) -> std::result::Result<(), String> {
        for si in 0..self.shards.len() {
            let mut share = vec![0u64; SLOTS_PER_SHARD];
            let mut x = vec![0u64; SLOTS_PER_SHARD];
            let mut waiters = vec![0u64; SLOTS_PER_SHARD];
            let mut opt_is = vec![0u64; SLOTS_PER_SHARD];
            let mut opt_ix = vec![0u64; SLOTS_PER_SHARD];
            let shard = self.shard_locked(si);
            for (r, state) in &shard.resources {
                let li = (Self::hash_of(r) >> 32) as usize & (SLOTS_PER_SHARD - 1);
                for g in &state.granted {
                    if g.mode.is_share_class() {
                        share[li] += 1;
                    } else if g.mode.is_exclusive_class() {
                        x[li] += 1;
                    }
                }
                waiters[li] += state.waiting.len() as u64;
            }
            for stripe in self.stripes.iter() {
                let guard = stripe.lock().unwrap_or_else(PoisonError::into_inner);
                for t in guard.values() {
                    for (r, e) in &t.held {
                        if !e.optimistic {
                            continue;
                        }
                        let h = Self::hash_of(r);
                        if (h as usize) & self.shard_mask != si {
                            continue;
                        }
                        let li = (h >> 32) as usize & (SLOTS_PER_SHARD - 1);
                        match e.mode.fastpath_lane() {
                            Some(LockMode::IS) => opt_is[li] += 1,
                            Some(LockMode::IX) => opt_ix[li] += 1,
                            _ => {
                                return Err(format!(
                                    "optimistic non-intent grant {} on {r:?}",
                                    e.mode
                                ))
                            }
                        }
                    }
                }
            }
            for li in 0..SLOTS_PER_SHARD {
                let w = self.summaries[si * SLOTS_PER_SHARD + li].load(Ordering::Acquire);
                let fields = [
                    ("opt_is", summary::opt_is(w), opt_is[li]),
                    ("opt_ix", summary::opt_ix(w), opt_ix[li]),
                    ("share", summary::share(w), share[li]),
                    ("x", summary::x(w), x[li]),
                    ("waiters", summary::waiters(w), waiters[li]),
                ];
                for (name, got, want) in fields {
                    if got != summary::COUNT_MAX && got != want {
                        return Err(format!(
                            "shard {si} slot {li}: summary {name}={got}, table says {want}"
                        ));
                    }
                }
                if summary::sealed(w) {
                    return Err(format!("shard {si} slot {li}: sealed at quiescence"));
                }
            }
        }
        Ok(())
    }

    // ----- internals -------------------------------------------------------

    /// Seals the slot (no optimistic publication can succeed past this
    /// point) and migrates every outstanding optimistic grant hashing to it
    /// into a real shard grant, so `can_grant` decides against the complete
    /// granted group. The caller must hold the mutex of shard `si` — the one
    /// every resource of this slot maps to. The returned guard unseals on
    /// drop unless the caller folds the clear into its own publication.
    fn seal_and_drain<'a>(
        &'a self,
        shard: &mut ShardInner<R>,
        si: usize,
        slot_idx: usize,
    ) -> SealGuard<'a> {
        let slot = &self.summaries[slot_idx];
        debug_assert!(!summary::sealed(slot.load(Ordering::Acquire)), "double seal");
        let w = slot_update(slot, |w| w | summary::SEALED);
        if summary::opt_total(w) != 0 {
            self.drain_slot(shard, si, slot_idx);
        }
        SealGuard { slot, armed: true }
    }

    /// Migrates the optimistic grants of one (shard, slot) pair into the
    /// shard map. Migration emits no trace events: each grant was already
    /// reported when it was published, and a second Grant here could land
    /// inside its owner's shrinking phase (see DESIGN.md §5).
    fn drain_slot(&self, shard: &mut ShardInner<R>, si: usize, slot_idx: usize) {
        LockStats::bump(&self.stats.fastpath_drains);
        let slot = &self.summaries[slot_idx];
        for stripe in self.stripes.iter() {
            // The seal (or a published waiter count) blocks new
            // publications, so counts only fall (owner releases and our own
            // migrations): once zero, no entry is left to find.
            if summary::opt_total(slot.load(Ordering::Acquire)) == 0 {
                break;
            }
            let mut guard = stripe.lock().unwrap_or_else(PoisonError::into_inner);
            for (owner, tstate) in guard.iter_mut() {
                for (r, e) in tstate.held.iter_mut() {
                    if !e.optimistic {
                        continue;
                    }
                    if self.slot_index_from_hash(e.hash) != slot_idx {
                        continue;
                    }
                    debug_assert_eq!((e.hash as usize) & self.shard_mask, si);
                    let state = self.state_entry(shard, r);
                    debug_assert!(state.granted.iter().all(|g| g.txn != *owner));
                    state.granted.push(Grant { txn: *owner, mode: e.mode, long: false });
                    e.optimistic = false;
                    let mode = e.mode;
                    slot_update(slot, |w| summary::opt_dec(w, mode));
                }
            }
        }
        debug_assert_eq!(summary::opt_total(slot.load(Ordering::Acquire)), 0);
    }

    /// Bounded validate-and-CAS publication of a pessimistic class move
    /// (`prev → target`) for a slot with **no** optimistic grants
    /// outstanding. The CAS atomically re-validates that the optimistic
    /// counts are still zero at the publication instant — success proves no
    /// fast-path grant predates this decision, making the seal-and-drain
    /// detour unnecessary. Returns `false` (publishing nothing) when an
    /// optimist shows up or the version churns past the retry budget; the
    /// caller then seals, drains and re-decides. The seal check is
    /// defensive: same-slot pessimists serialize on this shard's mutex.
    fn try_reserve_classes(&self, slot: &AtomicU64, prev: LockMode, target: LockMode) -> bool {
        let mut attempts = 0;
        loop {
            let w = slot.load(Ordering::Acquire);
            if summary::opt_total(w) != 0 || summary::sealed(w) {
                return false;
            }
            let next = summary::bump_version(summary::class_delta(w, prev, target));
            match slot.compare_exchange(w, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(_) => {
                    attempts += 1;
                    if attempts >= MAX_FASTPATH_ATTEMPTS {
                        return false;
                    }
                }
            }
        }
    }

    /// Publishes a pessimistic grant's effect on the summary word — the
    /// class-count move `prev → now`, the decrement for an absorbed own
    /// optimistic grant, and the seal clear — as one versioned update. A
    /// no-op when nothing changed and no seal is armed (pure intent grants).
    fn publish_grant(
        &self,
        slot: &AtomicU64,
        mut seal: Option<SealGuard<'_>>,
        prev: LockMode,
        now: LockMode,
        absorbed: Option<LockMode>,
    ) {
        let class_moved = prev.is_share_class() != now.is_share_class()
            || prev.is_exclusive_class() != now.is_exclusive_class();
        if seal.is_none() && !class_moved && absorbed.is_none() {
            return;
        }
        slot_update(slot, |w| {
            let mut w = summary::class_delta(w, prev, now);
            if let Some(m) = absorbed {
                w = summary::opt_dec(w, m);
            }
            summary::clear_seal(w)
        });
        if let Some(g) = seal.as_mut() {
            g.defuse();
        }
    }

    fn can_grant(
        &self,
        shard: &ShardInner<R>,
        txn: TxnId,
        resource: &R,
        target: LockMode,
        conversion: bool,
    ) -> bool {
        let Some(state) = shard.resources.get(resource) else {
            return true;
        };
        for g in &state.granted {
            if g.txn == txn {
                continue;
            }
            LockStats::bump(&self.stats.conflict_tests);
            if !target.compatible(g.mode) {
                return false;
            }
        }
        if !conversion {
            // FIFO fairness: do not overtake incompatible waiters.
            for w in &state.waiting {
                if w.txn == txn || w.granted {
                    continue;
                }
                LockStats::bump(&self.stats.conflict_tests);
                if !target.compatible(w.mode) {
                    return false;
                }
            }
        }
        true
    }

    fn conflicting_holders(
        &self,
        shard: &ShardInner<R>,
        txn: TxnId,
        resource: &R,
        target: LockMode,
    ) -> Vec<TxnId> {
        shard
            .resources
            .get(resource)
            .map(|s| {
                s.granted
                    .iter()
                    .filter(|g| g.txn != txn && !target.compatible(g.mode))
                    .map(|g| g.txn)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Resource-state accessor that creates the entry on first use and
    /// maintains the live-resource count / high-water mark.
    fn state_entry<'a>(&self, shard: &'a mut ShardInner<R>, resource: &R) -> &'a mut ResourceState {
        if !shard.resources.contains_key(resource) {
            shard.resources.insert(resource.clone(), ResourceState::default());
            let live = self.live_resources.fetch_add(1, Ordering::Relaxed) + 1;
            LockStats::raise(&self.stats.max_table_entries, live);
        }
        shard.resources.get_mut(resource).expect("just inserted")
    }

    fn drop_state_if_empty(&self, shard: &mut ShardInner<R>, resource: &R) {
        if let Some(s) = shard.resources.get(resource) {
            if s.granted.is_empty() && s.waiting.is_empty() {
                shard.resources.remove(resource);
                self.live_resources.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Installs (or joins) the real grant and the inventory entry. Returns
    /// the grant's previous real mode (`NL` if new) and, when the inventory
    /// entry was an optimistic fast-path grant absorbed by this install, its
    /// mode — the caller owes the summary slot that decrement.
    fn install_grant(
        &self,
        shard: &mut ShardInner<R>,
        txn: TxnId,
        resource: &R,
        mode: LockMode,
        long: bool,
        h: u64,
    ) -> (LockMode, Option<LockMode>) {
        let state = self.state_entry(shard, resource);
        let prev = if let Some(g) = state.granted.iter_mut().find(|g| g.txn == txn) {
            let p = g.mode;
            g.mode = g.mode.join(mode);
            g.long = g.long || long;
            p
        } else {
            state.granted.push(Grant { txn, mode, long });
            LockMode::NL
        };
        // Stripe nests strictly inside the shard critical section (leaf).
        let mut stripe = self.stripe_locked(txn);
        let txn_state = stripe.entry(txn).or_default();
        let entry = txn_state
            .held
            .entry(resource.clone())
            .or_insert(HeldLock { mode: LockMode::NL, long: false, optimistic: false, hash: h });
        let absorbed = if entry.optimistic { Some(entry.mode) } else { None };
        debug_assert!(
            absorbed.is_none() || prev == LockMode::NL,
            "optimistic entry alongside a real grant"
        );
        entry.mode = entry.mode.join(mode);
        entry.long = entry.long || long;
        entry.optimistic = false;
        LockStats::raise(&self.stats.max_locks_per_txn, txn_state.held.len() as u64);
        (prev, absorbed)
    }

    /// Removes `txn`'s grant on `resource`, returning the removed mode and
    /// long flag (the release paths journal and trace from this — no second
    /// lookup). Keeps the summary slot's class count in step.
    fn remove_grant(
        &self,
        shard: &mut ShardInner<R>,
        txn: TxnId,
        resource: &R,
        slot: &AtomicU64,
        update_inventory: bool,
    ) -> Option<(LockMode, bool)> {
        let mut removed = None;
        if let Some(state) = shard.resources.get_mut(resource) {
            if let Some(i) = state.granted.iter().position(|g| g.txn == txn) {
                let g = state.granted.remove(i);
                removed = Some((g.mode, g.long));
            }
        }
        if let Some((mode, _)) = removed {
            if !mode.is_intent() {
                slot_update(slot, |w| summary::class_delta(w, mode, LockMode::NL));
            } else {
                // Intent releases still bump the version so in-flight
                // optimistic validations observe the writer.
                slot_update(slot, |w| w);
            }
        }
        self.drop_state_if_empty(shard, resource);
        if update_inventory {
            let mut stripe = self.stripe_locked(txn);
            if let Some(t) = stripe.get_mut(&txn) {
                t.held.remove(resource);
                if t.held.is_empty() {
                    stripe.remove(&txn);
                }
            }
        }
        removed
    }

    /// Repairs a slot whose share / x / waiter count saturated sticky at
    /// [`summary::COUNT_MAX`]: once the burst that pinned it drains, the
    /// fields are recounted from the shard map and rewritten, so the slot's
    /// fast path comes back instead of staying disabled for the process
    /// lifetime. Called on the release paths with the shard mutex held —
    /// every mutator of those three fields holds it too, so the recount is
    /// exact; the optimistic fields (mutated lock-free) are left alone and
    /// the rewrite goes through a version-bumped CAS. The check is one
    /// atomic load on the common (unsaturated) path.
    fn maybe_desaturate(&self, shard: &ShardInner<R>, slot_idx: usize) {
        let slot = &self.summaries[slot_idx];
        let w = slot.load(Ordering::Acquire);
        if !summary::real_saturated(w) || summary::sealed(w) {
            return;
        }
        let (mut share, mut x, mut waiters) = (0u64, 0u64, 0u64);
        for (r, state) in &shard.resources {
            if self.slot_index_from_hash(Self::hash_of(r)) != slot_idx {
                continue;
            }
            for g in &state.granted {
                if g.mode.is_share_class() {
                    share += 1;
                } else if g.mode.is_exclusive_class() {
                    x += 1;
                }
            }
            waiters += state.waiting.len() as u64;
        }
        if share >= summary::COUNT_MAX || x >= summary::COUNT_MAX || waiters >= summary::COUNT_MAX
        {
            return; // still genuinely at the ceiling
        }
        slot_update(slot, |w| summary::rewrite_real(w, share, x, waiters));
        LockStats::bump(&self.stats.desaturations);
    }

    /// Journals one long-lock operation if a journal is attached; a
    /// mid-append crash surfaces as [`LockError::Crashed`].
    fn journal_record(&self, op: JournalOp, txn: TxnId, resource: &R, mode: LockMode) -> Result<()> {
        if let Some(j) = self.journal.get() {
            j.record(op, txn, resource, mode).map_err(|_| LockError::Crashed)?;
        }
        Ok(())
    }

    fn has_ungranted_waiters(&self, shard: &ShardInner<R>, resource: &R) -> bool {
        shard
            .resources
            .get(resource)
            .map(|s| s.waiting.iter().any(|w| !w.granted))
            .unwrap_or(false)
    }

    /// Grants queued waiters that have become compatible. Conversions are
    /// considered first (anywhere in the queue), then the queue is drained
    /// from the front until the first non-grantable waiter.
    ///
    /// The scan is conservative within one pass (a waiter approved in this
    /// pass is not yet visible as granted to the compatibility checks), so
    /// the pass repeats until a fixpoint: otherwise a waiter directly behind
    /// a freshly granted *compatible* one would be skipped with nothing left
    /// to re-trigger the queue — a lost grant that stalled whole workloads.
    ///
    /// If anything was granted, exactly this resource's condvar is notified.
    fn process_queue(&self, shard: &mut ShardInner<R>, resource: &R) {
        let h = Self::hash_of(resource);
        let slot = self.slot_from_hash(h);
        let mut granted_any = false;
        while let Some(state) = shard.resources.get(resource) {
            // Conversion pass.
            let mut grant_idx: Vec<usize> = Vec::new();
            for (i, w) in state.waiting.iter().enumerate() {
                if w.granted || w.victim.is_some() || !w.conversion {
                    continue;
                }
                if self.queue_compatible(state, w, true) {
                    grant_idx.push(i);
                }
            }
            // FIFO pass: a waiter is granted when it is compatible with the
            // granted group and with every *ungranted incompatible* waiter
            // ahead of it. Compatible waiters may pass blocked compatible
            // predecessors — granting a compatible mode can never delay the
            // predecessor's own grant, so fairness is preserved while the
            // policy stays aligned with the waits-for edge model.
            for (i, w) in state.waiting.iter().enumerate() {
                if w.granted || w.victim.is_some() || w.conversion {
                    continue;
                }
                if self.queue_compatible(state, w, false)
                    && self.no_incompatible_ahead(state, i, w.mode)
                {
                    grant_idx.push(i);
                }
            }
            if grant_idx.is_empty() {
                break;
            }
            let to_grant: Vec<(TxnId, LockMode, bool)> = {
                let state = shard.resources.get_mut(resource).expect("checked above");
                let mut out = Vec::with_capacity(grant_idx.len());
                for &i in &grant_idx {
                    let w = &mut state.waiting[i];
                    w.granted = true;
                    out.push((w.txn, w.mode, w.long));
                }
                out
            };
            for (txn, mode, long) in to_grant {
                explore::note_wakeup(txn.0);
                let (prev, absorbed) = self.install_grant(shard, txn, resource, mode, long, h);
                // The grantee's own waiter entry keeps the slot's waiter
                // count above zero throughout, blocking new optimists; the
                // publication below only races optimistic releases.
                self.publish_grant(slot, None, prev, prev.join(mode), absorbed);
                trace::emit(|| {
                    Event::new(EventKind::Wakeup, txn.0)
                        .shard(self.shard_index(resource) as u32)
                        .mode(mode.to_string())
                        .resource(format!("{resource:?}"))
                });
            }
            granted_any = true;
            // Loop: the new grants may make further waiters grantable.
        }
        if granted_any {
            // Every granted waiter cloned the condvar out before sleeping, so
            // it is always Some here.
            if let Some(cond) = shard.resources.get(resource).and_then(|s| s.cond.as_ref()) {
                LockStats::bump(&self.stats.wakeups);
                cond.notify_all();
            }
        }
    }

    /// Compatibility of waiter `w` with the granted group (ignoring `w.txn`'s
    /// own grant when it is a conversion) and, transitively, with waiters we
    /// already decided to grant in this pass (approximated by re-checking the
    /// granted list, which `install_grant` updates between passes).
    fn queue_compatible(&self, state: &ResourceState, w: &Waiter, conversion: bool) -> bool {
        for g in &state.granted {
            if conversion && g.txn == w.txn {
                continue;
            }
            LockStats::bump(&self.stats.conflict_tests);
            if !w.mode.compatible(g.mode) {
                return false;
            }
        }
        true
    }

    /// No ungranted waiter ahead of `idx` whose requested mode conflicts
    /// with `mode` (granted and victim-marked entries do not block).
    fn no_incompatible_ahead(&self, state: &ResourceState, idx: usize, mode: LockMode) -> bool {
        state
            .waiting
            .iter()
            .take(idx)
            .all(|w| w.granted || w.victim.is_some() || mode.compatible(w.mode))
    }

    #[allow(clippy::too_many_arguments)]
    fn block_until_granted<'a>(
        &'a self,
        si: usize,
        mut shard: MutexGuard<'a, ShardInner<R>>,
        txn: TxnId,
        resource: R,
        target: LockMode,
        conversion: bool,
        long: bool,
        journal_long: bool,
        deadline: Option<Instant>,
        slot_idx: usize,
        mut seal: Option<SealGuard<'a>>,
    ) -> Result<AcquireOutcome> {
        let slot = &self.summaries[slot_idx];
        LockStats::bump(&self.stats.waits);
        // Heat accrues per wait: the adaptive victim policy reads it to rank
        // deadlock-cycle members by the demand on their wait target.
        self.heat[slot_idx].fetch_add(1, Ordering::Relaxed);
        trace::emit(|| {
            Event::new(EventKind::Wait, txn.0)
                .shard(si as u32)
                .mode(target.to_string())
                .resource(format!("{resource:?}"))
        });
        let cond = {
            let state = self.state_entry(&mut shard, &resource);
            state.waiting.push_back(Waiter {
                txn,
                mode: target,
                conversion,
                long,
                granted: false,
                victim: None,
            });
            Arc::clone(state.cond.get_or_insert_with(Default::default))
        };
        // Publish waiters+1 (and clear any seal) in one step: with a
        // non-zero waiter count no optimist can publish, so FIFO order
        // holds against the fast path too.
        slot_update(slot, |w| summary::clear_seal(summary::wait_inc(w)));
        if let Some(g) = seal.as_mut() {
            g.defuse();
        }
        drop(seal);
        // The non-zero waiter count now blocks new optimists, but a
        // seal-free S/SIX/X decision may have raced one publishing between
        // its decision and this point. Migrate any stragglers while the
        // shard is still held, so the queued request never waits behind an
        // invisible optimistic grant.
        if !target.is_intent() && summary::opt_total(slot.load(Ordering::Acquire)) != 0 {
            self.drain_slot(&mut shard, si, slot_idx);
        }
        // Publish the wait edge, then detect with no shard lock held: the
        // detector needs all shards in canonical order.
        drop(shard);
        self.run_detector();
        let mut shard = self.shard_locked(si);

        loop {
            // Check our waiter entry. The status is re-validated under the
            // shard mutex before every wait, so a grant or victim verdict
            // delivered between checks can never be lost.
            let status = {
                let state = shard.resources.get(&resource).expect("resource with waiter");
                let w = state
                    .waiting
                    .iter()
                    .find(|w| w.txn == txn)
                    .expect("own waiter present");
                if let Some(cycle) = &w.victim {
                    Some(Err(LockError::Deadlock { victim: txn, cycle: cycle.clone() }))
                } else if w.granted {
                    Some(Ok(()))
                } else {
                    None
                }
            };
            match status {
                Some(Ok(())) => {
                    self.remove_waiter_entry_only(&mut shard, txn, &resource);
                    slot_update(slot, summary::wait_dec);
                    if journal_long {
                        // The grant was installed by `process_queue`; the
                        // record must still be durable before the waiter's
                        // acquire acknowledges. A crash here leaves the
                        // in-memory grant unacknowledged — replay at restart
                        // is the authority on whether it survived.
                        let op = if conversion { JournalOp::Convert } else { JournalOp::Grant };
                        self.journal_record(op, txn, &resource, target)?;
                    }
                    trace::emit(|| {
                        Event::new(EventKind::Grant, txn.0)
                            .shard(si as u32)
                            .mode(target.to_string())
                            .resource(format!("{resource:?}"))
                            .detail("after-wait")
                    });
                    return Ok(AcquireOutcome::Granted { waited: true });
                }
                Some(Err(e)) => {
                    // Targeted cleanup: only this resource's queue can have
                    // been affected by our departure.
                    self.remove_waiter(&mut shard, txn, &resource);
                    slot_update(slot, summary::wait_dec);
                    if self.has_ungranted_waiters(&shard, &resource) {
                        self.process_queue(&mut shard, &resource);
                    }
                    return Err(e);
                }
                None => {}
            }
            if self.draining.load(Ordering::SeqCst) {
                // Shutdown: refuse instead of sleeping. Status was just
                // checked under the shard mutex — not granted, not a victim.
                self.remove_waiter(&mut shard, txn, &resource);
                slot_update(slot, summary::wait_dec);
                if self.has_ungranted_waiters(&shard, &resource) {
                    self.process_queue(&mut shard, &resource);
                }
                return Err(LockError::Draining);
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // Status was just checked: not granted, not a victim.
                        self.remove_waiter(&mut shard, txn, &resource);
                        slot_update(slot, summary::wait_dec);
                        if self.has_ungranted_waiters(&shard, &resource) {
                            self.process_queue(&mut shard, &resource);
                        }
                        return Err(LockError::Timeout);
                    }
                    explore::before_block(txn.0);
                    let (guard, _) = cond
                        .wait_timeout(shard, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    shard = guard;
                    explore::after_block(txn.0);
                }
                None => {
                    explore::before_block(txn.0);
                    shard = cond.wait(shard).unwrap_or_else(PoisonError::into_inner);
                    explore::after_block(txn.0);
                }
            }
        }
    }

    fn remove_waiter(&self, shard: &mut ShardInner<R>, txn: TxnId, resource: &R) {
        if let Some(state) = shard.resources.get_mut(resource) {
            state.waiting.retain(|w| w.txn != txn);
        }
        self.drop_state_if_empty(shard, resource);
    }

    /// Removes only the waiter entry (grant already installed by
    /// `process_queue`).
    fn remove_waiter_entry_only(&self, shard: &mut ShardInner<R>, txn: TxnId, resource: &R) {
        if let Some(state) = shard.resources.get_mut(resource) {
            state.waiting.retain(|w| w.txn != txn);
        }
    }

    /// Snapshot deadlock detector.
    ///
    /// Locks every shard in ascending index order (the canonical order — the
    /// only code path that holds more than one shard), builds the waits-for
    /// graph from the queues, and resolves cycles to fixpoint: each detected
    /// cycle has its youngest markable member stamped as victim and woken
    /// through its own resource's condvar. Granted and already-victimized
    /// waiters contribute no edges, so a marked victim immediately breaks
    /// its cycle and concurrent enqueuers re-detecting the same ring find
    /// nothing — exactly one victim per cycle.
    fn run_detector(&self) {
        LockStats::bump(&self.stats.detector_runs);
        let mut guards: Vec<MutexGuard<'_, ShardInner<R>>> =
            (0..self.shards.len()).map(|i| self.shard_locked(i)).collect();
        let traced = trace::is_enabled();
        loop {
            // Snapshot: waits-for edges plus each waiter's location. When
            // tracing is on, the same pass collects labelled edges for the
            // DOT export (untraced runs skip the string formatting).
            let mut edges: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
            let mut locs: HashMap<TxnId, (usize, R)> = HashMap::new();
            let mut wf_edges: Vec<trace::WaitEdge> = Vec::new();
            for (si, shard) in guards.iter().enumerate() {
                for (r, state) in &shard.resources {
                    for (pos, w) in state.waiting.iter().enumerate() {
                        if w.granted || w.victim.is_some() {
                            // Runnable or already condemned: no outgoing
                            // edges (stale edges would fabricate cycles).
                            continue;
                        }
                        let mut blockers = Vec::new();
                        for g in &state.granted {
                            if g.txn != w.txn && !w.mode.compatible(g.mode) {
                                blockers.push(g.txn);
                            }
                        }
                        // Under FIFO, earlier incompatible waiters also block
                        // us — except for conversions, which bypass queue
                        // order entirely.
                        if !w.conversion {
                            for w2 in state.waiting.iter().take(pos) {
                                if !w2.granted
                                    && w2.victim.is_none()
                                    && w2.txn != w.txn
                                    && !w.mode.compatible(w2.mode)
                                {
                                    blockers.push(w2.txn);
                                }
                            }
                        }
                        if traced {
                            for &b in &blockers {
                                wf_edges.push(trace::WaitEdge {
                                    waiter: w.txn.0,
                                    holder: b.0,
                                    resource: format!("{r:?}"),
                                    mode: w.mode.to_string(),
                                });
                            }
                        }
                        edges.insert(w.txn, blockers);
                        locs.insert(w.txn, (si, r.clone()));
                    }
                }
            }
            let Some(cycle) = find_cycle_snapshot(&edges) else {
                break;
            };
            LockStats::bump(&self.stats.deadlocks);
            let members_detail = {
                let members: Vec<String> = cycle.iter().map(|t| format!("T{}", t.0)).collect();
                members.join(", ")
            };
            // Youngest member (max TxnId) dies; if its waiter is stale
            // (granted meanwhile), fall back to the next youngest so a real
            // cycle is never left standing. With the adaptive hot-victim
            // policy on, members are ranked by the heat of the slot they
            // wait at instead (ties still youngest-first): killing the
            // waiter at the hottest spot frees the deepest demand first.
            // Any cycle member is a protocol-correct victim.
            let mut members = cycle.clone();
            if self.adaptive.hot_victim() {
                members.sort_unstable_by_key(|t| {
                    let heat = locs
                        .get(t)
                        .map(|(_, r)| {
                            let idx = self.slot_index_from_hash(Self::hash_of(r));
                            self.heat[idx].load(Ordering::Relaxed)
                        })
                        .unwrap_or(0);
                    (heat, *t)
                });
            } else {
                members.sort_unstable();
            }
            let mut marked = false;
            for &victim in members.iter().rev() {
                let Some((vsi, vres)) = locs.get(&victim) else {
                    continue;
                };
                let Some(state) = guards[*vsi].resources.get_mut(vres) else {
                    continue;
                };
                if let Some(w) = state
                    .waiting
                    .iter_mut()
                    .find(|w| w.txn == victim && !w.granted && w.victim.is_none())
                {
                    w.victim = Some(cycle.clone());
                    let wmode = w.mode;
                    // The detection event goes out only once a victim is
                    // actually marked, so every DeadlockDetected is followed
                    // by exactly one VictimChosen (stale cycles carry the
                    // `stale` marker instead — see below).
                    trace::emit(|| {
                        Event::new(EventKind::DeadlockDetected, 0).detail(members_detail.clone())
                    });
                    trace::emit(|| {
                        Event::new(EventKind::VictimChosen, victim.0)
                            .shard(*vsi as u32)
                            .mode(wmode.to_string())
                            .resource(format!("{vres:?}"))
                    });
                    if traced {
                        let graph = trace::WaitsForGraph {
                            edges: std::mem::take(&mut wf_edges),
                            cycle: cycle.iter().map(|t| t.0).collect(),
                            victim: Some(victim.0),
                        };
                        trace::record_deadlock_dot(graph.to_dot());
                    }
                    // The victim is a blocked waiter, so it installed the
                    // condvar before sleeping.
                    explore::note_wakeup(victim.0);
                    if let Some(cond) = &state.cond {
                        LockStats::bump(&self.stats.wakeups);
                        cond.notify_all();
                    }
                    marked = true;
                    break;
                }
            }
            if !marked {
                // Every member turned runnable between snapshot and marking;
                // nothing to do (and nothing left to loop on). The cycle is
                // still recorded, marked `stale` so trace consumers know no
                // victim was (or needed to be) chosen.
                trace::emit(|| {
                    Event::new(EventKind::DeadlockDetected, 0)
                        .resource("stale")
                        .detail(members_detail.clone())
                });
                break;
            }
        }
    }
}

/// DFS over the snapshot waits-for graph. Tries every waiting txn (in sorted
/// order, for determinism) as the cycle anchor and returns the first cycle
/// found as a list of txns (first == last omitted).
fn find_cycle_snapshot(edges: &HashMap<TxnId, Vec<TxnId>>) -> Option<Vec<TxnId>> {
    fn dfs(
        edges: &HashMap<TxnId, Vec<TxnId>>,
        node: TxnId,
        start: TxnId,
        path: &mut Vec<TxnId>,
        visited: &mut HashMap<TxnId, bool>, // false = open, true = done
    ) -> Option<Vec<TxnId>> {
        path.push(node);
        visited.insert(node, false);
        if let Some(blockers) = edges.get(&node) {
            for &b in blockers {
                if b == start {
                    return Some(path.clone());
                }
                if visited.contains_key(&b) {
                    continue; // on path (cycle not via start) or exhausted
                }
                if let Some(c) = dfs(edges, b, start, path, visited) {
                    return Some(c);
                }
            }
        }
        visited.insert(node, true);
        path.pop();
        None
    }

    let mut starts: Vec<TxnId> = edges.keys().copied().collect();
    starts.sort_unstable();
    for &start in &starts {
        let mut path = Vec::new();
        let mut visited = HashMap::new();
        if let Some(c) = dfs(edges, start, start, &mut path, &mut visited) {
            return Some(c);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::LockMode::*;
    use colock_testkit::{run_threads, wait_until};
    use std::sync::Arc;
    use std::thread;

    type Mgr = LockManager<&'static str>;

    /// Generous bound for "the other thread is enqueued" waits; the
    /// predicates normally flip within microseconds.
    const WAIT: Duration = Duration::from_secs(5);

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn grant_and_reentrant_acquire() {
        let m = Mgr::new();
        assert_eq!(
            m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap(),
            AcquireOutcome::Granted { waited: false }
        );
        assert_eq!(
            m.acquire(t(1), "a", IS, LockRequestOptions::default()).unwrap(),
            AcquireOutcome::AlreadyHeld
        );
        assert_eq!(m.held_mode(t(1), &"a"), S);
    }

    #[test]
    fn compatible_modes_share() {
        let m = Mgr::new();
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(3), "a", IS, LockRequestOptions::default()).unwrap();
        assert_eq!(m.holders(&"a").len(), 3);
    }

    #[test]
    fn incompatible_try_lock_reports_holders() {
        let m = Mgr::new();
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        let err = m.acquire(t(2), "a", S, LockRequestOptions::try_lock()).unwrap_err();
        assert_eq!(err, LockError::WouldBlock { holders: vec![t(1)] });
    }

    #[test]
    fn release_unblocks_waiter() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            m2.acquire(t(2), "a", X, LockRequestOptions::default()).unwrap()
        });
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        assert!(m.release(t(1), &"a"));
        assert_eq!(h.join().unwrap(), AcquireOutcome::Granted { waited: true });
        assert_eq!(m.held_mode(t(2), &"a"), X);
    }

    #[test]
    fn conversion_upgrades_mode() {
        let m = Mgr::new();
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(1), "a", IX, LockRequestOptions::default()).unwrap();
        assert_eq!(m.held_mode(t(1), &"a"), SIX);
        // Still a single grant entry.
        assert_eq!(m.holders(&"a").len(), 1);
    }

    #[test]
    fn conversion_waits_for_other_readers() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "a", S, LockRequestOptions::default()).unwrap();
        let err = m.acquire(t(1), "a", X, LockRequestOptions::try_lock()).unwrap_err();
        assert!(matches!(err, LockError::WouldBlock { .. }));
        // Blocking upgrade succeeds once the other reader leaves.
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            m2.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap()
        });
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        m.release(t(2), &"a");
        assert_eq!(h.join().unwrap(), AcquireOutcome::Granted { waited: true });
        assert_eq!(m.held_mode(t(1), &"a"), X);
    }

    #[test]
    fn fifo_no_overtaking_of_waiting_x() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        // t2 queues an X.
        let m2 = Arc::clone(&m);
        let h2 = thread::spawn(move || {
            m2.acquire(t(2), "a", X, LockRequestOptions::default()).unwrap()
        });
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        // t3's S would be compatible with the grant, but must not overtake.
        let err = m.acquire(t(3), "a", S, LockRequestOptions::try_lock()).unwrap_err();
        assert!(matches!(err, LockError::WouldBlock { .. }));
        m.release(t(1), &"a");
        h2.join().unwrap();
        m.release_all(t(2));
        m.acquire(t(3), "a", S, LockRequestOptions::default()).unwrap();
    }

    #[test]
    fn deadlock_detected_youngest_aborts() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "b", X, LockRequestOptions::default()).unwrap();
        // t1 waits for b.
        let m1 = Arc::clone(&m);
        let h1 = thread::spawn(move || m1.acquire(t(1), "b", X, LockRequestOptions::default()));
        wait_until(WAIT, || m.waiter_count(&"b") == 1);
        // t2 requests a -> cycle {1,2}; victim = youngest = t2 (the requester).
        let err = m.acquire(t(2), "a", X, LockRequestOptions::default()).unwrap_err();
        match err {
            LockError::Deadlock { victim, .. } => assert_eq!(victim, t(2)),
            e => panic!("expected deadlock, got {e:?}"),
        }
        // After t2 aborts, t1 proceeds.
        m.release_all(t(2));
        assert!(h1.join().unwrap().is_ok());
        assert_eq!(m.stats().snapshot().deadlocks, 1);
    }

    #[test]
    fn deadlock_victim_can_be_the_waiting_txn() {
        // t2 (younger) waits first; then t1's request closes the cycle and
        // t2 must be chosen and woken as victim.
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "b", X, LockRequestOptions::default()).unwrap();
        let m2 = Arc::clone(&m);
        let h2 = thread::spawn(move || m2.acquire(t(2), "a", X, LockRequestOptions::default()));
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        let m1 = Arc::clone(&m);
        let h1 = thread::spawn(move || m1.acquire(t(1), "b", X, LockRequestOptions::default()));
        let r2 = h2.join().unwrap();
        match r2 {
            Err(LockError::Deadlock { victim, .. }) => assert_eq!(victim, t(2)),
            other => panic!("expected t2 victim, got {other:?}"),
        }
        m.release_all(t(2));
        assert!(h1.join().unwrap().is_ok());
    }

    #[test]
    fn upgrade_deadlock_between_two_readers() {
        let m = Arc::new(Mgr::new());
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "a", S, LockRequestOptions::default()).unwrap();
        let m1 = Arc::clone(&m);
        let h1 = thread::spawn(move || m1.acquire(t(1), "a", X, LockRequestOptions::default()));
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        let r2 = m.acquire(t(2), "a", X, LockRequestOptions::default());
        // One of the two must die (the younger: t2).
        match r2 {
            Err(LockError::Deadlock { victim, .. }) => assert_eq!(victim, t(2)),
            other => panic!("expected deadlock, got {other:?}"),
        }
        m.release_all(t(2));
        assert!(h1.join().unwrap().is_ok());
    }

    #[test]
    fn timeout_fires() {
        let m = Mgr::new();
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        let err = m
            .acquire(
                t(2),
                "a",
                X,
                LockRequestOptions {
                    policy: WaitPolicy::BlockTimeout(Duration::from_millis(40)),
                    long: false,
                },
            )
            .unwrap_err();
        assert_eq!(err, LockError::Timeout);
        // The waiter must be fully cleaned up.
        assert_eq!(m.holders(&"a").len(), 1);
    }

    #[test]
    fn release_all_cleans_table() {
        let m = Mgr::new();
        m.acquire(t(1), "a", IS, LockRequestOptions::default()).unwrap();
        m.acquire(t(1), "b", S, LockRequestOptions::default()).unwrap();
        assert_eq!(m.release_all(t(1)), 2);
        assert_eq!(m.table_size(), 0);
        assert!(m.locks_of(t(1)).is_empty());
    }

    #[test]
    fn release_short_keeps_long_locks() {
        let m = Mgr::new();
        m.acquire(t(1), "a", S, LockRequestOptions::long()).unwrap();
        m.acquire(t(1), "b", IS, LockRequestOptions::default()).unwrap();
        assert_eq!(m.release_short(t(1)), 1);
        assert_eq!(m.held_mode(t(1), &"a"), S);
        assert_eq!(m.held_mode(t(1), &"b"), NL);
    }

    #[test]
    fn stats_count_requests_and_tables() {
        let m = Mgr::new();
        m.acquire(t(1), "a", S, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "b", S, LockRequestOptions::default()).unwrap();
        let s = m.stats().snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.immediate_grants, 2);
        assert_eq!(s.max_table_entries, 2);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let m: LockManager<&str> = LockManager::with_shards(5);
        assert_eq!(m.shard_count(), 8);
        let m1: LockManager<&str> = LockManager::with_shards(0);
        assert_eq!(m1.shard_count(), 1);
        // The single-shard table still works end to end.
        m1.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        assert_eq!(m1.shard_index(&"anything"), 0);
        m1.release_all(t(1));
        assert_eq!(m1.table_size(), 0);
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let m: LockManager<String> = LockManager::new();
        for i in 0..64 {
            let r = format!("res{i}");
            let s1 = m.shard_index(&r);
            assert_eq!(s1, m.shard_index(&r), "hashing must be deterministic");
            assert!(s1 < m.shard_count());
        }
    }

    #[test]
    fn summary_word_packs_and_saturates() {
        let mut w = 0u64;
        for _ in 0..3 {
            w = summary::opt_inc(w, IS);
        }
        w = summary::opt_inc(w, IX);
        w = summary::class_delta(w, NL, S);
        w = summary::class_delta(w, NL, X);
        w = summary::wait_inc(w);
        assert_eq!(summary::opt_is(w), 3);
        assert_eq!(summary::opt_ix(w), 1);
        assert_eq!(summary::share(w), 1);
        assert_eq!(summary::x(w), 1);
        assert_eq!(summary::waiters(w), 1);
        assert_eq!(summary::opt_total(w), 4);
        // S -> SIX stays within the share class; SIX -> X moves classes.
        let w2 = summary::class_delta(w, S, SIX);
        assert_eq!(summary::share(w2), 1);
        let w3 = summary::class_delta(w2, SIX, X);
        assert_eq!(summary::share(w3), 0);
        assert_eq!(summary::x(w3), 2);
        // Version bumps leave every field alone, even across the wrap.
        let mut v = w;
        for _ in 0..10_000 {
            v = summary::bump_version(v);
        }
        assert_eq!(summary::opt_is(v), 3);
        assert_eq!(summary::waiters(v), 1);
        // Sticky saturation: once a field hits the ceiling it never moves.
        let mut s = 0u64;
        for _ in 0..2000 {
            s = summary::wait_inc(s);
        }
        assert_eq!(summary::waiters(s), summary::COUNT_MAX);
        s = summary::wait_dec(s);
        assert_eq!(summary::waiters(s), summary::COUNT_MAX);
    }

    #[test]
    fn summary_admits_follows_classes() {
        let empty = 0u64;
        assert!(summary::admits(empty, IS));
        assert!(summary::admits(empty, IX));
        assert!(!summary::admits(empty, S));
        assert!(!summary::admits(empty, X));
        let with_share = summary::class_delta(empty, NL, S);
        assert!(summary::admits(with_share, IS));
        assert!(!summary::admits(with_share, IX));
        let with_x = summary::class_delta(empty, NL, X);
        assert!(!summary::admits(with_x, IS));
        let with_wait = summary::wait_inc(empty);
        assert!(!summary::admits(with_wait, IS));
        let sealed = empty | summary::SEALED;
        assert!(!summary::admits(sealed, IS));
        assert!(summary::admits(summary::clear_seal(sealed), IS));
        // Optimistic intents coexist in the word.
        let opt = summary::opt_inc(summary::opt_inc(empty, IS), IX);
        assert!(summary::admits(opt, IS) && summary::admits(opt, IX));
        // Semantic modes are admitted by lane: Member behaves like IS
        // (compatible with S), Insert/Delete like IX (not).
        assert!(summary::admits(empty, Member));
        assert!(summary::admits(empty, Insert) && summary::admits(empty, Delete));
        assert!(summary::admits(with_share, Member));
        assert!(!summary::admits(with_share, Insert));
        assert!(!summary::admits(with_x, Member) && !summary::admits(with_x, Delete));
    }

    #[test]
    fn fastpath_intent_never_enters_the_shard_map() {
        let m = Mgr::new();
        m.set_fastpath(true);
        assert_eq!(
            m.acquire(t(1), "a", IS, LockRequestOptions::default()).unwrap(),
            AcquireOutcome::Granted { waited: false }
        );
        // The grant is inventory-only...
        assert_eq!(m.table_size(), 0);
        assert_eq!(m.held_mode(t(1), &"a"), IS);
        assert_eq!(m.holders(&"a"), vec![(t(1), IS)]);
        assert_eq!(m.grant_count(), 1);
        let s = m.stats().snapshot();
        assert_eq!((s.intent_acquires, s.fastpath_hits, s.fastpath_fallbacks), (1, 1, 0));
        // ...and an S by someone else drains it into a real grant.
        m.acquire(t(2), "a", S, LockRequestOptions::default()).unwrap();
        assert_eq!(m.table_size(), 1);
        assert_eq!(m.holders(&"a").len(), 2);
        assert!(m.stats().snapshot().fastpath_drains >= 1);
        m.check_summary_consistency().unwrap();
        m.release_all(t(1));
        m.release_all(t(2));
        assert_eq!(m.table_size(), 0);
        m.check_summary_consistency().unwrap();
    }

    #[test]
    fn many_threads_on_one_resource_make_progress() {
        let m = Arc::new(Mgr::new());
        let m2 = Arc::clone(&m);
        run_threads(16, Duration::from_secs(60), move |i| {
            let id = t(i as u64 + 1);
            for _ in 0..20 {
                match m2.acquire(id, "hot", X, LockRequestOptions::default()) {
                    Ok(_) => {
                        m2.release(id, &"hot");
                    }
                    Err(LockError::Deadlock { .. }) => {
                        m2.release_all(id);
                    }
                    Err(e) => panic!("{e}"),
                }
            }
        });
        assert_eq!(m.table_size(), 0);
    }

    #[test]
    fn semantic_modes_ride_the_intent_fastpath_lanes() {
        let m = Mgr::new();
        m.set_fastpath(true);
        m.acquire(t(1), "set", Insert, LockRequestOptions::default()).unwrap();
        m.acquire(t(2), "set", Insert, LockRequestOptions::default()).unwrap();
        m.acquire(t(3), "set", Delete, LockRequestOptions::default()).unwrap();
        m.acquire(t(4), "set", Member, LockRequestOptions::default()).unwrap();
        // All four commute: inventory-only grants, no shard-map entry.
        assert_eq!(m.table_size(), 0);
        let s = m.stats().snapshot();
        assert_eq!((s.intent_acquires, s.fastpath_hits, s.fastpath_fallbacks), (4, 4, 0));
        m.check_summary_consistency().unwrap();
        // A whole-container S conflicts with the writers: it drains the
        // slot and is refused, reporting exactly the Insert/Delete holders
        // (the Member holder commutes with S).
        let err = m.acquire(t(5), "set", S, LockRequestOptions::try_lock()).unwrap_err();
        match err {
            LockError::WouldBlock { mut holders } => {
                holders.sort_unstable();
                assert_eq!(holders, vec![t(1), t(2), t(3)]);
            }
            e => panic!("expected WouldBlock, got {e:?}"),
        }
        assert!(m.stats().snapshot().fastpath_drains >= 1);
        for i in 1..=4 {
            m.release_all(t(i));
        }
        assert_eq!(m.table_size(), 0);
        m.check_summary_consistency().unwrap();
    }

    #[test]
    fn saturated_slot_desaturates_and_recovers_fastpath() {
        let m = Mgr::new();
        m.set_fastpath(true);
        // COUNT_MAX concurrent S holders pin the slot's share field at the
        // sticky ceiling.
        let n = summary::COUNT_MAX;
        for i in 1..=n {
            m.acquire(t(i), "hot", S, LockRequestOptions::default()).unwrap();
        }
        let slot = m.slot_from_hash(Mgr::hash_of(&"hot"));
        assert_eq!(summary::share(slot.load(Ordering::Acquire)), summary::COUNT_MAX);
        for i in 1..=n {
            m.release(t(i), &"hot");
        }
        assert_eq!(m.table_size(), 0);
        // Before the fix the share field stayed pinned at COUNT_MAX forever
        // and `admits` refused every IX-lane publication on the slot.
        assert_eq!(summary::share(slot.load(Ordering::Acquire)), 0);
        assert!(m.stats().snapshot().desaturations >= 1);
        let before = m.stats().snapshot();
        m.acquire(t(5000), "hot", IX, LockRequestOptions::default()).unwrap();
        let after = m.stats().snapshot();
        assert_eq!(after.fastpath_hits - before.fastpath_hits, 1);
        m.check_summary_consistency().unwrap();
        m.release_all(t(5000));
        m.check_summary_consistency().unwrap();
    }

    #[test]
    fn wait_depth_limit_refuses_instead_of_parking() {
        let m = Arc::new(Mgr::new());
        m.adaptive().set_wait_depth_limit(1);
        m.acquire(t(1), "a", X, LockRequestOptions::default()).unwrap();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            m2.acquire(t(2), "a", X, LockRequestOptions::default()).unwrap()
        });
        wait_until(WAIT, || m.waiter_count(&"a") == 1);
        // The queue is at the limit: a third blocking X is refused with
        // WouldBlock instead of parked behind the convoy.
        let err = m.acquire(t(3), "a", X, LockRequestOptions::default()).unwrap_err();
        assert!(matches!(err, LockError::WouldBlock { .. }));
        assert_eq!(m.stats().snapshot().wait_depth_refusals, 1);
        m.release(t(1), &"a");
        h.join().unwrap();
        m.release_all(t(2));
        assert_eq!(m.table_size(), 0);
    }

    #[test]
    fn hot_victim_policy_kills_hottest_waiter() {
        let m = Arc::new(Mgr::new());
        m.adaptive().set_hot_victim(true);
        let cold = "cold";
        // Pick a hot resource on a different summary slot than `cold` so
        // the heat comparison is meaningful.
        let hot = ["hot0", "hot1", "hot2", "hot3", "hot4", "hot5"]
            .into_iter()
            .find(|r| {
                m.slot_index_from_hash(Mgr::hash_of(r))
                    != m.slot_index_from_hash(Mgr::hash_of(&cold))
            })
            .expect("a candidate on a different slot");
        // Pre-heat `hot`'s slot: every enqueued wait bumps it, timeouts
        // included.
        m.acquire(t(9), hot, X, LockRequestOptions::default()).unwrap();
        for i in 0..4 {
            let err = m
                .acquire(
                    t(10 + i),
                    hot,
                    X,
                    LockRequestOptions {
                        policy: WaitPolicy::BlockTimeout(Duration::from_millis(5)),
                        long: false,
                    },
                )
                .unwrap_err();
            assert_eq!(err, LockError::Timeout);
        }
        m.release_all(t(9));
        // Cycle: t1 (older) holds `cold` and waits on `hot`; t2 (younger)
        // holds `hot` and waits on `cold`. The youngest rule would kill t2;
        // the hot policy kills t1, the waiter at the hotter slot.
        m.acquire(t(2), hot, X, LockRequestOptions::default()).unwrap();
        m.acquire(t(1), cold, X, LockRequestOptions::default()).unwrap();
        let m1 = Arc::clone(&m);
        let h1 = thread::spawn(move || match m1.acquire(t(1), hot, X, LockRequestOptions::default())
        {
            Err(LockError::Deadlock { victim, .. }) => {
                assert_eq!(victim, t(1), "hot policy must pick the hottest waiter");
                m1.release_all(t(1));
            }
            other => panic!("expected t1 to be the victim, got {other:?}"),
        });
        wait_until(WAIT, || m.waiter_count(&hot) == 1);
        let m2 = Arc::clone(&m);
        let h2 = thread::spawn(move || m2.acquire(t(2), cold, X, LockRequestOptions::default()));
        h1.join().unwrap();
        assert!(h2.join().unwrap().is_ok());
        m.release_all(t(2));
        assert_eq!(m.table_size(), 0);
    }
}
