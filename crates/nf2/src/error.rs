//! Error type for schema and value operations.

use std::fmt;

/// Errors raised by schema construction, validation and value type checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Nf2Error {
    /// A relation name was used twice within one database schema.
    DuplicateRelation(String),
    /// A segment name was used twice within one database schema.
    DuplicateSegment(String),
    /// An attribute name was used twice within one tuple type.
    DuplicateAttribute(String),
    /// A reference targets a relation that does not exist in the schema.
    UnknownRefTarget {
        /// The relation containing the reference.
        relation: String,
        /// The missing target relation.
        target: String,
    },
    /// The schema contains a reference cycle; the paper restricts itself to
    /// *non-recursive* complex objects (§2), so cycles are rejected.
    RecursiveSchema {
        /// The offending cycle (first == last).
        cycle: Vec<String>,
    },
    /// A relation was placed in a segment that does not exist.
    UnknownSegment {
        /// The relation.
        relation: String,
        /// The missing segment.
        segment: String,
    },
    /// A relation has no key attribute (suffix `_id` convention of Fig. 1 or
    /// explicitly flagged).
    MissingKey(String),
    /// A key attribute has a non-atomic type.
    NonAtomicKey {
        /// The relation.
        relation: String,
        /// The offending key attribute.
        attribute: String,
    },
    /// A value did not match the schema type at the given path.
    TypeMismatch {
        /// Where in the value the mismatch occurred.
        path: String,
        /// The expected type.
        expected: String,
        /// What was found instead.
        found: String,
    },
    /// A path step did not resolve against the schema.
    BadPath {
        /// The full path.
        path: String,
        /// The step that failed to resolve.
        step: String,
    },
    /// A relation lookup failed.
    UnknownRelation(String),
    /// An attribute lookup failed.
    UnknownAttribute {
        /// The relation searched.
        relation: String,
        /// The missing attribute.
        attribute: String,
    },
    /// A set value contains two elements with the same key.
    DuplicateSetKey {
        /// The set's path.
        path: String,
        /// The duplicated key.
        key: String,
    },
}

impl fmt::Display for Nf2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Nf2Error::DuplicateRelation(n) => write!(f, "duplicate relation `{n}`"),
            Nf2Error::DuplicateSegment(n) => write!(f, "duplicate segment `{n}`"),
            Nf2Error::DuplicateAttribute(n) => write!(f, "duplicate attribute `{n}`"),
            Nf2Error::UnknownRefTarget { relation, target } => {
                write!(f, "relation `{relation}` references unknown relation `{target}`")
            }
            Nf2Error::RecursiveSchema { cycle } => {
                write!(f, "schema is recursive (cycle: {})", cycle.join(" -> "))
            }
            Nf2Error::UnknownSegment { relation, segment } => {
                write!(f, "relation `{relation}` placed in unknown segment `{segment}`")
            }
            Nf2Error::MissingKey(r) => write!(f, "relation `{r}` has no key attribute"),
            Nf2Error::NonAtomicKey { relation, attribute } => {
                write!(f, "key attribute `{attribute}` of `{relation}` is not atomic")
            }
            Nf2Error::TypeMismatch { path, expected, found } => {
                write!(f, "type mismatch at `{path}`: expected {expected}, found {found}")
            }
            Nf2Error::BadPath { path, step } => {
                write!(f, "path `{path}`: step `{step}` does not resolve")
            }
            Nf2Error::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            Nf2Error::UnknownAttribute { relation, attribute } => {
                write!(f, "unknown attribute `{attribute}` in relation `{relation}`")
            }
            Nf2Error::DuplicateSetKey { path, key } => {
                write!(f, "duplicate key `{key}` in set at `{path}`")
            }
        }
    }
}

impl std::error::Error for Nf2Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Nf2Error::UnknownRefTarget {
            relation: "cells".into(),
            target: "effectors".into(),
        };
        let s = e.to_string();
        assert!(s.contains("cells") && s.contains("effectors"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Nf2Error::DuplicateRelation("a".into()),
            Nf2Error::DuplicateRelation("a".into())
        );
        assert_ne!(
            Nf2Error::DuplicateRelation("a".into()),
            Nf2Error::DuplicateSegment("a".into())
        );
    }

    #[test]
    fn cycle_display_joins_arrow() {
        let e = Nf2Error::RecursiveSchema { cycle: vec!["a".into(), "b".into(), "a".into()] };
        assert_eq!(e.to_string(), "schema is recursive (cycle: a -> b -> a)");
    }
}
