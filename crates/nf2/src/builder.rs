//! Fluent builders for database schemas.

use crate::schema::{DatabaseSchema, RelationSchema, SegmentSchema};
use crate::types::{AttrType, Attribute};
use crate::Result;

/// Builds a [`DatabaseSchema`] incrementally and validates it on `finish`.
#[derive(Debug, Clone)]
pub struct DatabaseBuilder {
    name: String,
    segments: Vec<SegmentSchema>,
    relations: Vec<RelationSchema>,
}

impl DatabaseBuilder {
    /// Starts a database schema.
    pub fn new(name: impl Into<String>) -> Self {
        DatabaseBuilder { name: name.into(), segments: Vec::new(), relations: Vec::new() }
    }

    /// Adds a segment.
    pub fn segment(mut self, name: impl Into<String>) -> Self {
        self.segments.push(SegmentSchema { name: name.into() });
        self
    }

    /// Adds a finished relation.
    pub fn relation(mut self, relation: RelationSchema) -> Self {
        self.relations.push(relation);
        self
    }

    /// Validates and returns the schema.
    pub fn finish(self) -> Result<DatabaseSchema> {
        DatabaseSchema {
            name: self.name,
            segments: self.segments,
            relations: self.relations,
        }
        .validate()
    }
}

/// Builds one [`RelationSchema`].
#[derive(Debug, Clone)]
pub struct RelationBuilder {
    name: String,
    segment: String,
    attributes: Vec<Attribute>,
}

impl RelationBuilder {
    /// Starts a relation schema in the given segment.
    pub fn new(name: impl Into<String>, segment: impl Into<String>) -> Self {
        RelationBuilder { name: name.into(), segment: segment.into(), attributes: Vec::new() }
    }

    /// Adds an attribute (key inferred from the `_id` suffix).
    pub fn attr(mut self, name: impl Into<String>, ty: AttrType) -> Self {
        self.attributes.push(Attribute::new(name, ty));
        self
    }

    /// Adds an explicitly keyed attribute.
    pub fn key_attr(mut self, name: impl Into<String>, ty: AttrType) -> Self {
        self.attributes.push(Attribute::key(name, ty));
        self
    }

    /// Returns the relation schema (validated as part of the database).
    pub fn finish(self) -> RelationSchema {
        RelationSchema { name: self.name, segment: self.segment, attributes: self.attributes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::shorthand::*;

    #[test]
    fn builder_constructs_valid_fig1_schema() {
        let db = DatabaseBuilder::new("db1")
            .segment("seg1")
            .segment("seg2")
            .relation(
                RelationBuilder::new("effectors", "seg2")
                    .attr("eff_id", str_())
                    .attr("tool", str_())
                    .finish(),
            )
            .relation(
                RelationBuilder::new("cells", "seg1")
                    .attr("cell_id", str_())
                    .attr(
                        "c_objects",
                        set(tuple(vec![attr("obj_id", str_()), attr("obj_name", str_())])),
                    )
                    .attr(
                        "robots",
                        list(tuple(vec![
                            attr("robot_id", str_()),
                            attr("trajectory", str_()),
                            attr("effectors", set(ref_("effectors"))),
                        ])),
                    )
                    .finish(),
            )
            .finish()
            .unwrap();
        assert_eq!(db.relations.len(), 2);
        assert_eq!(db.relation("cells").unwrap().segment, "seg1");
    }

    #[test]
    fn builder_propagates_validation_errors() {
        let res = DatabaseBuilder::new("db")
            .segment("s")
            .relation(RelationBuilder::new("r", "s").attr("x", str_()).finish())
            .finish();
        assert!(res.is_err(), "missing key must be rejected");
    }

    #[test]
    fn key_attr_overrides_convention() {
        let r = RelationBuilder::new("r", "s").key_attr("name", str_()).finish();
        assert!(r.attributes[0].key);
    }
}
