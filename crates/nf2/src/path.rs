//! Schema-level attribute paths.
//!
//! A path such as `cells.robots.trajectory` names a node of the schema tree of
//! Fig. 1 (and hence a node of the object-specific lock graph of Fig. 5).
//! Paths step *through* set/list constructors implicitly: `robots` names the
//! HoLU (the list as a whole); `robots.trajectory` names the `trajectory` BLU
//! inside the list's element tuples.

use crate::error::Nf2Error;
use crate::schema::RelationSchema;
use crate::types::AttrType;
use crate::Result;
use std::fmt;

/// A dot-separated attribute path relative to a relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrPath {
    steps: Vec<String>,
}

impl AttrPath {
    /// The empty path (names the complex object itself).
    pub fn root() -> Self {
        AttrPath { steps: Vec::new() }
    }

    /// Parses a dot-separated path; an empty string is the root path.
    pub fn parse(s: &str) -> Self {
        if s.is_empty() {
            return Self::root();
        }
        AttrPath { steps: s.split('.').map(|p| p.to_string()).collect() }
    }

    /// Builds a path from steps.
    pub fn from_steps(steps: Vec<String>) -> Self {
        AttrPath { steps }
    }

    /// The steps of the path.
    pub fn steps(&self) -> &[String] {
        &self.steps
    }

    /// Whether this is the root path.
    pub fn is_root(&self) -> bool {
        self.steps.is_empty()
    }

    /// Extends the path by one step.
    pub fn child(&self, step: &str) -> Self {
        let mut steps = self.steps.clone();
        steps.push(step.to_string());
        AttrPath { steps }
    }

    /// The parent path, or `None` at the root.
    pub fn parent(&self) -> Option<Self> {
        if self.steps.is_empty() {
            None
        } else {
            Some(AttrPath { steps: self.steps[..self.steps.len() - 1].to_vec() })
        }
    }

    /// `true` if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &AttrPath) -> bool {
        other.steps.len() >= self.steps.len()
            && self.steps.iter().zip(&other.steps).all(|(a, b)| a == b)
    }

    /// Resolves the path against a relation schema, returning the type of the
    /// named node. Set/list constructors are stepped through implicitly: a
    /// step from a `Set(Tuple{…})` attribute resolves inside the element
    /// tuple.
    pub fn resolve<'s>(&self, relation: &'s RelationSchema) -> Result<&'s AttrType> {
        // The root path has no single AttrType (it is the relation's tuple
        // type); callers that need it use `RelationSchema::tuple_type`.
        let mut steps = self.steps.iter();
        let first = steps.next().ok_or_else(|| Nf2Error::BadPath {
            path: self.to_string(),
            step: "<root>".to_string(),
        })?;
        let mut cur: &AttrType = &relation
            .attribute(first)
            .ok_or_else(|| Nf2Error::UnknownAttribute {
                relation: relation.name.clone(),
                attribute: first.clone(),
            })?
            .ty;
        for step in steps {
            cur = resolve_step(cur, step).ok_or_else(|| Nf2Error::BadPath {
                path: self.to_string(),
                step: step.clone(),
            })?;
        }
        Ok(cur)
    }
}

/// Resolves one path step from `ty`, stepping through set/list constructors.
pub fn resolve_step<'a>(ty: &'a AttrType, step: &str) -> Option<&'a AttrType> {
    match ty {
        AttrType::Tuple(fields) => fields.iter().find(|f| f.name == step).map(|f| &f.ty),
        AttrType::Set(e) | AttrType::List(e) => resolve_step(e, step),
        _ => None,
    }
}

impl fmt::Display for AttrPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            f.write_str("<root>")
        } else {
            f.write_str(&self.steps.join("."))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::shorthand::*;

    fn cells() -> RelationSchema {
        RelationSchema {
            name: "cells".into(),
            segment: "seg1".into(),
            attributes: vec![
                attr("cell_id", str_()),
                attr(
                    "c_objects",
                    set(tuple(vec![attr("obj_id", str_()), attr("obj_name", str_())])),
                ),
                attr(
                    "robots",
                    list(tuple(vec![
                        attr("robot_id", str_()),
                        attr("trajectory", str_()),
                        attr("effectors", set(ref_("effectors"))),
                    ])),
                ),
            ],
        }
    }

    #[test]
    fn resolves_top_level_attribute() {
        let c = cells();
        assert_eq!(AttrPath::parse("cell_id").resolve(&c).unwrap(), &str_());
    }

    #[test]
    fn steps_through_set_into_element_tuple() {
        let c = cells();
        assert_eq!(AttrPath::parse("c_objects.obj_name").resolve(&c).unwrap(), &str_());
        assert_eq!(
            AttrPath::parse("robots.effectors").resolve(&c).unwrap(),
            &set(ref_("effectors"))
        );
    }

    #[test]
    fn bad_step_reports_the_step() {
        let c = cells();
        match AttrPath::parse("robots.nope").resolve(&c).unwrap_err() {
            Nf2Error::BadPath { step, .. } => assert_eq!(step, "nope"),
            e => panic!("{e:?}"),
        }
        assert!(matches!(
            AttrPath::parse("missing").resolve(&c).unwrap_err(),
            Nf2Error::UnknownAttribute { .. }
        ));
    }

    #[test]
    fn root_path_behaviour() {
        let p = AttrPath::root();
        assert!(p.is_root());
        assert!(p.parent().is_none());
        assert_eq!(p.to_string(), "<root>");
        assert!(p.resolve(&cells()).is_err());
        assert_eq!(AttrPath::parse(""), AttrPath::root());
    }

    #[test]
    fn prefix_and_child_relations() {
        let robots = AttrPath::parse("robots");
        let traj = robots.child("trajectory");
        assert_eq!(traj.to_string(), "robots.trajectory");
        assert!(robots.is_prefix_of(&traj));
        assert!(!traj.is_prefix_of(&robots));
        assert!(AttrPath::root().is_prefix_of(&robots));
        assert_eq!(traj.parent(), Some(robots));
    }

    #[test]
    fn cannot_step_into_atomic() {
        let c = cells();
        assert!(AttrPath::parse("cell_id.x").resolve(&c).is_err());
        // refs are opaque at the schema level of the *referencing* relation
        assert!(AttrPath::parse("robots.effectors.tool").resolve(&c).is_err());
    }
}
