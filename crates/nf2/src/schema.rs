//! Database and relation schemas with validation.
//!
//! §2 of the paper: data that may be shared are stored in relations of their
//! own; a reference always references a complex object of a relation. Every
//! relation therefore is a *set of complex tuples*, and its schema is a tuple
//! type. Validation enforces the paper's standing assumptions:
//!
//! * the schema is **non-recursive** (no reference cycles, §2),
//! * every reference targets an existing relation,
//! * every relation has an atomic key attribute at the top level,
//! * names are unique per scope.

use crate::error::Nf2Error;
use crate::types::{AttrType, Attribute};
use crate::Result;
use std::collections::{HashMap, HashSet};

/// Schema of one relation: a named set of complex tuples placed in a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name, e.g. `cells`.
    pub name: String,
    /// Name of the segment holding the relation, e.g. `seg1`.
    pub segment: String,
    /// Top-level attributes of the relation's complex tuples.
    pub attributes: Vec<Attribute>,
}

impl RelationSchema {
    /// The tuple type of one complex object of this relation.
    pub fn tuple_type(&self) -> AttrType {
        AttrType::Tuple(self.attributes.clone())
    }

    /// The key attribute of the relation (first attribute flagged as key).
    pub fn key_attribute(&self) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.key)
    }

    /// Looks up a top-level attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// All relations directly referenced from this relation's schema.
    pub fn direct_ref_targets(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for a in &self.attributes {
            a.ty.collect_ref_targets(&mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn validate_local(&self) -> Result<()> {
        let mut seen = HashSet::new();
        for a in &self.attributes {
            if !seen.insert(a.name.as_str()) {
                return Err(Nf2Error::DuplicateAttribute(a.name.clone()));
            }
            validate_attr_names(&a.ty)?;
        }
        let key = self
            .key_attribute()
            .ok_or_else(|| Nf2Error::MissingKey(self.name.clone()))?;
        if !matches!(key.ty, AttrType::Atomic(_)) {
            return Err(Nf2Error::NonAtomicKey {
                relation: self.name.clone(),
                attribute: key.name.clone(),
            });
        }
        Ok(())
    }
}

fn validate_attr_names(ty: &AttrType) -> Result<()> {
    match ty {
        AttrType::Tuple(fields) => {
            let mut seen = HashSet::new();
            for f in fields {
                if !seen.insert(f.name.as_str()) {
                    return Err(Nf2Error::DuplicateAttribute(f.name.clone()));
                }
                validate_attr_names(&f.ty)?;
            }
            Ok(())
        }
        AttrType::Set(e) | AttrType::List(e) => validate_attr_names(e),
        _ => Ok(()),
    }
}

/// Schema of a segment (a named container of relations, as in System R's lock
/// graph, Fig. 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentSchema {
    /// Segment name, e.g. `seg1`.
    pub name: String,
}

/// Schema of a whole database: segments plus relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseSchema {
    /// Database name, e.g. `db1`.
    pub name: String,
    /// Segments in declaration order.
    pub segments: Vec<SegmentSchema>,
    /// Relations in declaration order.
    pub relations: Vec<RelationSchema>,
}

impl DatabaseSchema {
    /// Validates the whole schema (names, segments, key attributes, reference
    /// targets, non-recursiveness) and returns it unchanged on success.
    pub fn validate(self) -> Result<Self> {
        let mut seg_names = HashSet::new();
        for s in &self.segments {
            if !seg_names.insert(s.name.as_str()) {
                return Err(Nf2Error::DuplicateSegment(s.name.clone()));
            }
        }
        let mut rel_names = HashSet::new();
        for r in &self.relations {
            if !rel_names.insert(r.name.as_str()) {
                return Err(Nf2Error::DuplicateRelation(r.name.clone()));
            }
        }
        for r in &self.relations {
            if !seg_names.contains(r.segment.as_str()) {
                return Err(Nf2Error::UnknownSegment {
                    relation: r.name.clone(),
                    segment: r.segment.clone(),
                });
            }
            r.validate_local()?;
            for t in r.direct_ref_targets() {
                if !rel_names.contains(t) {
                    return Err(Nf2Error::UnknownRefTarget {
                        relation: r.name.clone(),
                        target: t.to_string(),
                    });
                }
            }
        }
        self.check_acyclic()?;
        Ok(self)
    }

    /// Looks up a relation schema by name.
    pub fn relation(&self, name: &str) -> Result<&RelationSchema> {
        self.relations
            .iter()
            .find(|r| r.name == name)
            .ok_or_else(|| Nf2Error::UnknownRelation(name.to_string()))
    }

    /// Index of a relation in declaration order.
    pub fn relation_index(&self, name: &str) -> Option<usize> {
        self.relations.iter().position(|r| r.name == name)
    }

    /// Looks up a segment schema by name.
    pub fn segment(&self, name: &str) -> Option<&SegmentSchema> {
        self.segments.iter().find(|s| s.name == name)
    }

    /// The reference graph between relations: `name -> directly referenced`.
    pub fn reference_graph(&self) -> HashMap<&str, Vec<&str>> {
        self.relations
            .iter()
            .map(|r| (r.name.as_str(), r.direct_ref_targets()))
            .collect()
    }

    /// Relations that nothing references ("top-level" relations such as
    /// `cells`); common-data relations such as `effectors` are excluded.
    pub fn unreferenced_relations(&self) -> Vec<&RelationSchema> {
        let mut referenced: HashSet<&str> = HashSet::new();
        for r in &self.relations {
            referenced.extend(r.direct_ref_targets());
        }
        self.relations.iter().filter(|r| !referenced.contains(r.name.as_str())).collect()
    }

    /// Relations that are referenced by at least one other relation, i.e. the
    /// relations holding common data (inner units live inside these).
    pub fn common_data_relations(&self) -> Vec<&RelationSchema> {
        let mut referenced: HashSet<&str> = HashSet::new();
        for r in &self.relations {
            referenced.extend(r.direct_ref_targets());
        }
        self.relations.iter().filter(|r| referenced.contains(r.name.as_str())).collect()
    }

    fn check_acyclic(&self) -> Result<()> {
        // DFS over the reference graph; the paper treats only non-recursive
        // complex objects, so any cycle (including self-reference) is an error.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let graph = self.reference_graph();
        let mut marks: HashMap<&str, Mark> =
            graph.keys().map(|&k| (k, Mark::White)).collect();

        fn dfs<'a>(
            node: &'a str,
            graph: &HashMap<&'a str, Vec<&'a str>>,
            marks: &mut HashMap<&'a str, Mark>,
            stack: &mut Vec<&'a str>,
        ) -> Result<()> {
            marks.insert(node, Mark::Grey);
            stack.push(node);
            for &next in graph.get(node).into_iter().flatten() {
                match marks.get(next).copied().unwrap_or(Mark::White) {
                    Mark::Grey => {
                        let pos = stack.iter().position(|&n| n == next).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            stack[pos..].iter().map(|s| s.to_string()).collect();
                        cycle.push(next.to_string());
                        return Err(Nf2Error::RecursiveSchema { cycle });
                    }
                    Mark::White => dfs(next, graph, marks, stack)?,
                    Mark::Black => {}
                }
            }
            stack.pop();
            marks.insert(node, Mark::Black);
            Ok(())
        }

        let names: Vec<&str> = graph.keys().copied().collect();
        let mut stack = Vec::new();
        for name in names {
            if marks[name] == Mark::White {
                dfs(name, &graph, &mut marks, &mut stack)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::shorthand::*;

    fn effectors() -> RelationSchema {
        RelationSchema {
            name: "effectors".into(),
            segment: "seg2".into(),
            attributes: vec![attr("eff_id", str_()), attr("tool", str_())],
        }
    }

    fn cells() -> RelationSchema {
        RelationSchema {
            name: "cells".into(),
            segment: "seg1".into(),
            attributes: vec![
                attr("cell_id", str_()),
                attr(
                    "c_objects",
                    set(tuple(vec![attr("obj_id", str_()), attr("obj_name", str_())])),
                ),
                attr(
                    "robots",
                    list(tuple(vec![
                        attr("robot_id", str_()),
                        attr("trajectory", str_()),
                        attr("effectors", set(ref_("effectors"))),
                    ])),
                ),
            ],
        }
    }

    fn db() -> DatabaseSchema {
        DatabaseSchema {
            name: "db1".into(),
            segments: vec![
                SegmentSchema { name: "seg1".into() },
                SegmentSchema { name: "seg2".into() },
            ],
            relations: vec![cells(), effectors()],
        }
    }

    #[test]
    fn fig1_schema_validates() {
        assert!(db().validate().is_ok());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut d = db();
        d.relations.push(effectors());
        assert_eq!(d.validate().unwrap_err(), Nf2Error::DuplicateRelation("effectors".into()));
    }

    #[test]
    fn unknown_segment_rejected() {
        let mut d = db();
        d.relations[0].segment = "nope".into();
        assert!(matches!(d.validate().unwrap_err(), Nf2Error::UnknownSegment { .. }));
    }

    #[test]
    fn unknown_ref_target_rejected() {
        let mut d = db();
        d.relations.truncate(1); // drop effectors; cells still references it
        assert!(matches!(d.validate().unwrap_err(), Nf2Error::UnknownRefTarget { .. }));
    }

    #[test]
    fn missing_key_rejected() {
        let mut d = db();
        d.relations[1].attributes[0] = attr("eff", str_()); // no _id, no key
        assert_eq!(d.validate().unwrap_err(), Nf2Error::MissingKey("effectors".into()));
    }

    #[test]
    fn non_atomic_key_rejected() {
        let mut d = db();
        d.relations[1].attributes[0] = Attribute::key("eff_id", set(str_()));
        assert!(matches!(d.validate().unwrap_err(), Nf2Error::NonAtomicKey { .. }));
    }

    #[test]
    fn self_reference_is_recursive() {
        let mut d = db();
        d.relations[1].attributes.push(attr("next", ref_("effectors")));
        assert!(matches!(d.validate().unwrap_err(), Nf2Error::RecursiveSchema { .. }));
    }

    #[test]
    fn two_cycle_is_recursive() {
        let mut d = db();
        d.relations[1].attributes.push(attr("used_in", ref_("cells")));
        let err = d.validate().unwrap_err();
        match err {
            Nf2Error::RecursiveSchema { cycle } => {
                assert!(cycle.len() >= 3, "cycle {cycle:?}");
                assert_eq!(cycle.first(), cycle.last());
            }
            other => panic!("expected RecursiveSchema, got {other:?}"),
        }
    }

    #[test]
    fn common_data_classification() {
        let d = db().validate().unwrap();
        let common: Vec<_> = d.common_data_relations().iter().map(|r| r.name.clone()).collect();
        assert_eq!(common, vec!["effectors"]);
        let top: Vec<_> = d.unreferenced_relations().iter().map(|r| r.name.clone()).collect();
        assert_eq!(top, vec!["cells"]);
    }

    #[test]
    fn key_attribute_found() {
        let c = cells();
        assert_eq!(c.key_attribute().unwrap().name, "cell_id");
        assert_eq!(c.direct_ref_targets(), vec!["effectors"]);
    }

    #[test]
    fn duplicate_nested_attribute_rejected() {
        let mut d = db();
        d.relations[0].attributes[1] =
            attr("c_objects", set(tuple(vec![attr("x", str_()), attr("x", int_())])));
        assert_eq!(d.validate().unwrap_err(), Nf2Error::DuplicateAttribute("x".into()));
    }

    #[test]
    fn diamond_sharing_is_not_a_cycle() {
        // cells -> effectors, cells -> tools, effectors -> tools: a DAG.
        let mut d = db();
        d.relations.push(RelationSchema {
            name: "tools".into(),
            segment: "seg2".into(),
            attributes: vec![attr("tool_id", str_())],
        });
        d.relations[1].attributes.push(attr("tool_ref", ref_("tools")));
        d.relations[0].attributes.push(attr("spare", ref_("tools")));
        assert!(d.validate().is_ok());
    }
}
