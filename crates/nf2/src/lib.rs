#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # `colock-nf2` — the extended NF² data model
//!
//! The lock technique of Herrmann et al. (EDBT 1990) is defined over a data
//! model that supports *disjoint, non-recursive* as well as *non-disjoint,
//! non-recursive* complex objects. The paper uses the **extended NF² data
//! model with an additional reference concept** (§1, §2): an attribute of a
//! relation may again be table-valued (a *set* or a *list*), tuple-valued
//! (a *complex tuple*), atomic, or a *reference to common data*. Data that may
//! be shared are stored in relations of their own, so a reference always
//! targets a complex object of a relation, never a part of one (§2).
//!
//! This crate provides:
//! * [`AttrType`] / [`Attribute`] — the schema type system (Fig. 1),
//! * [`RelationSchema`] / [`DatabaseSchema`] — schema objects with validation
//!   (non-recursiveness, reference targets, key attributes),
//! * [`Value`] — instance values, validated against the schema,
//! * [`AttrPath`] — schema-level paths such as `cells.robots.trajectory`,
//! * [`Catalog`] — the catalog used by lock-graph derivation and by the
//!   "optimal" lock-request optimizer (cardinality statistics per attribute).
//!
//! The running example throughout the workspace is the paper's Fig. 1 schema
//! of manufacturing `cells` and the shared `effectors` library; it is built in
//! `colock-sim` and reproduced by the `fig1_schema` binary.

pub mod builder;
pub mod catalog;
pub mod display;
pub mod error;
pub mod path;
pub mod schema;
pub mod types;
pub mod value;

pub use builder::{DatabaseBuilder, RelationBuilder};
pub use catalog::{AttrStats, Catalog, RelationStats};
pub use error::Nf2Error;
pub use path::AttrPath;
pub use schema::{DatabaseSchema, RelationSchema, SegmentSchema};
pub use types::{AtomicType, AttrType, Attribute};
pub use value::{ObjectKey, ObjectRef, Value};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Nf2Error>;
