//! Instance values of the extended NF² model, validated against schemas.

use crate::error::Nf2Error;
use crate::schema::{DatabaseSchema, RelationSchema};
use crate::types::{AtomicType, AttrType};
use crate::Result;
use std::fmt;

/// Key of a complex object within its relation (the value of the relation's
/// key attribute). Only atomic values can be keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectKey {
    /// String key (e.g. `"c1"`, `"e2"`).
    Str(String),
    /// Integer key.
    Int(i64),
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectKey::Str(s) => f.write_str(s),
            ObjectKey::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<&str> for ObjectKey {
    fn from(s: &str) -> Self {
        ObjectKey::Str(s.to_string())
    }
}

impl From<String> for ObjectKey {
    fn from(s: String) -> Self {
        ObjectKey::Str(s)
    }
}

impl From<i64> for ObjectKey {
    fn from(i: i64) -> Self {
        ObjectKey::Int(i)
    }
}

/// A reference to a complex object of a relation ("common data", §2).
///
/// The paper makes no assumption about the implementation of references (key
/// values, surrogates \[MeLo83\], …); we use `(relation, key)` pairs, which is
/// the key-value variant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectRef {
    /// Target relation name.
    pub relation: String,
    /// Key of the referenced complex object.
    pub key: ObjectKey,
}

impl ObjectRef {
    /// Creates a reference.
    pub fn new(relation: impl Into<String>, key: impl Into<ObjectKey>) -> Self {
        ObjectRef { relation: relation.into(), key: key.into() }
    }
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "->{}[{}]", self.relation, self.key)
    }
}

/// An attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// String value.
    Str(String),
    /// Integer value.
    Int(i64),
    /// Real value.
    Real(f64),
    /// Boolean value.
    Bool(bool),
    /// Set of values of one type. For sets of tuples, elements are identified
    /// by their key attribute; for sets of atomic values, by the value itself.
    Set(Vec<Value>),
    /// Ordered list of values of one type.
    List(Vec<Value>),
    /// Complex tuple: `(attribute name, value)` pairs in schema order.
    Tuple(Vec<(String, Value)>),
    /// Reference to a complex object of another relation.
    Ref(ObjectRef),
}

impl Value {
    /// Short builder for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Short builder for references.
    pub fn reference(relation: impl Into<String>, key: impl Into<ObjectKey>) -> Self {
        Value::Ref(ObjectRef::new(relation, key))
    }

    /// The field of a tuple value by attribute name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Tuple(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable field of a tuple value.
    pub fn field_mut(&mut self, name: &str) -> Option<&mut Value> {
        match self {
            Value::Tuple(fields) => {
                fields.iter_mut().find(|(n, _)| n == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The elements of a set or list value.
    pub fn elements(&self) -> Option<&[Value]> {
        match self {
            Value::Set(es) | Value::List(es) => Some(es),
            _ => None,
        }
    }

    /// Mutable elements of a set or list value.
    pub fn elements_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Set(es) | Value::List(es) => Some(es),
            _ => None,
        }
    }

    /// Converts an atomic value to an [`ObjectKey`], if possible.
    pub fn as_key(&self) -> Option<ObjectKey> {
        match self {
            Value::Str(s) => Some(ObjectKey::Str(s.clone())),
            Value::Int(i) => Some(ObjectKey::Int(*i)),
            _ => None,
        }
    }

    /// For a tuple value with a `key` attribute flagged in `fields`, extracts
    /// the element key; for an atomic value, the value itself.
    pub fn element_key(&self, elem_ty: &AttrType) -> Option<ObjectKey> {
        match (self, elem_ty) {
            (Value::Tuple(_), AttrType::Tuple(fields)) => {
                let key_attr = fields.iter().find(|a| a.key)?;
                self.field(&key_attr.name)?.as_key()
            }
            _ => self.as_key(),
        }
    }

    /// Collects all [`ObjectRef`]s contained anywhere in this value.
    ///
    /// This is the "scan over all the existing references" of §4.4.2.1: the
    /// protocol discovers entry points of dependent inner units from the data
    /// it accesses anyway — no backward pointers are needed.
    pub fn collect_refs<'a>(&'a self, out: &mut Vec<&'a ObjectRef>) {
        match self {
            Value::Ref(r) => out.push(r),
            Value::Set(es) | Value::List(es) => {
                for e in es {
                    e.collect_refs(out);
                }
            }
            Value::Tuple(fields) => {
                for (_, v) in fields {
                    v.collect_refs(out);
                }
            }
            _ => {}
        }
    }

    /// Counts the basic (atomic/ref) leaves of this value — a proxy for how
    /// many tuple-level locks a finest-granularity protocol would take.
    pub fn leaf_count(&self) -> usize {
        match self {
            Value::Set(es) | Value::List(es) => es.iter().map(Value::leaf_count).sum(),
            Value::Tuple(fields) => fields.iter().map(|(_, v)| v.leaf_count()).sum(),
            _ => 1,
        }
    }

    /// Type checks this value against `ty`; `path` is used for error messages.
    pub fn check_type(&self, ty: &AttrType, path: &str) -> Result<()> {
        let mismatch = |found: &str| {
            Err(Nf2Error::TypeMismatch {
                path: path.to_string(),
                expected: ty.to_string(),
                found: found.to_string(),
            })
        };
        match (self, ty) {
            (Value::Str(_), AttrType::Atomic(AtomicType::Str)) => Ok(()),
            (Value::Int(_), AttrType::Atomic(AtomicType::Int)) => Ok(()),
            (Value::Real(_), AttrType::Atomic(AtomicType::Real)) => Ok(()),
            (Value::Bool(_), AttrType::Atomic(AtomicType::Bool)) => Ok(()),
            (Value::Ref(r), AttrType::Ref(target)) => {
                if &r.relation == target {
                    Ok(())
                } else {
                    mismatch(&format!("ref<{}>", r.relation))
                }
            }
            (Value::Set(es), AttrType::Set(elem)) => {
                let mut keys = Vec::with_capacity(es.len());
                for (i, e) in es.iter().enumerate() {
                    e.check_type(elem, &format!("{path}[{i}]"))?;
                    if let Some(k) = e.element_key(elem) {
                        keys.push(k);
                    }
                }
                keys.sort_unstable();
                if let Some(w) = keys.windows(2).find(|w| w[0] == w[1]) {
                    return Err(Nf2Error::DuplicateSetKey {
                        path: path.to_string(),
                        key: w[0].to_string(),
                    });
                }
                Ok(())
            }
            (Value::List(es), AttrType::List(elem)) => {
                for (i, e) in es.iter().enumerate() {
                    e.check_type(elem, &format!("{path}[{i}]"))?;
                }
                Ok(())
            }
            (Value::Tuple(vals), AttrType::Tuple(fields)) => {
                if vals.len() != fields.len() {
                    return mismatch(&format!("tuple of {} fields", vals.len()));
                }
                for ((name, v), f) in vals.iter().zip(fields) {
                    if name != &f.name {
                        return Err(Nf2Error::BadPath {
                            path: path.to_string(),
                            step: name.clone(),
                        });
                    }
                    v.check_type(&f.ty, &format!("{path}.{name}"))?;
                }
                Ok(())
            }
            (v, _) => mismatch(kind_name(v)),
        }
    }

    /// Validates this value as a complex object of `relation` and returns its
    /// key.
    pub fn check_object(&self, relation: &RelationSchema) -> Result<ObjectKey> {
        self.check_type(&relation.tuple_type(), &relation.name)?;
        let key_attr = relation
            .key_attribute()
            .ok_or_else(|| Nf2Error::MissingKey(relation.name.clone()))?;
        self.field(&key_attr.name)
            .and_then(Value::as_key)
            .ok_or_else(|| Nf2Error::MissingKey(relation.name.clone()))
    }

    /// Verifies that every reference inside this value resolves against some
    /// relation in `schema` (existence of the *target object* is checked by
    /// the storage layer, which knows the extension).
    pub fn check_ref_relations(&self, schema: &DatabaseSchema) -> Result<()> {
        let mut refs = Vec::new();
        self.collect_refs(&mut refs);
        for r in refs {
            schema.relation(&r.relation)?;
        }
        Ok(())
    }
}

fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Str(_) => "str",
        Value::Int(_) => "int",
        Value::Real(_) => "real",
        Value::Bool(_) => "bool",
        Value::Set(_) => "set",
        Value::List(_) => "list",
        Value::Tuple(_) => "tuple",
        Value::Ref(_) => "ref",
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Set(es) => {
                write!(f, "{{")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
            Value::List(es) => {
                write!(f, "[")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Value::Tuple(fields) => {
                write!(f, "(")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                write!(f, ")")
            }
            Value::Ref(r) => write!(f, "{r}"),
        }
    }
}

/// Builder helpers for tuple values.
pub mod build {
    use super::*;

    /// Builds a tuple value from `(name, value)` pairs.
    pub fn tup(fields: Vec<(&str, Value)>) -> Value {
        Value::Tuple(fields.into_iter().map(|(n, v)| (n.to_string(), v)).collect())
    }

    /// Builds a set value.
    pub fn set(elems: Vec<Value>) -> Value {
        Value::Set(elems)
    }

    /// Builds a list value.
    pub fn list(elems: Vec<Value>) -> Value {
        Value::List(elems)
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use crate::types::shorthand::{self, attr, int_, ref_, str_};

    fn robot_ty() -> AttrType {
        shorthand::tuple(vec![
            attr("robot_id", str_()),
            attr("trajectory", str_()),
            attr("effectors", shorthand::set(ref_("effectors"))),
        ])
    }

    fn robot(id: &str, effs: &[&str]) -> Value {
        tup(vec![
            ("robot_id", Value::str(id)),
            ("trajectory", Value::str(format!("t{id}"))),
            (
                "effectors",
                set(effs.iter().map(|e| Value::reference("effectors", *e)).collect()),
            ),
        ])
    }

    #[test]
    fn well_typed_robot_checks() {
        assert!(robot("r1", &["e1", "e2"]).check_type(&robot_ty(), "robots").is_ok());
    }

    #[test]
    fn wrong_atomic_type_rejected() {
        let v = tup(vec![
            ("robot_id", Value::Int(3)),
            ("trajectory", Value::str("t")),
            ("effectors", set(vec![])),
        ]);
        assert!(matches!(
            v.check_type(&robot_ty(), "robots").unwrap_err(),
            Nf2Error::TypeMismatch { .. }
        ));
    }

    #[test]
    fn wrong_ref_target_rejected() {
        let v = tup(vec![
            ("robot_id", Value::str("r1")),
            ("trajectory", Value::str("t")),
            ("effectors", set(vec![Value::reference("cells", "c1")])),
        ]);
        let err = v.check_type(&robot_ty(), "robots").unwrap_err();
        assert!(matches!(err, Nf2Error::TypeMismatch { .. }), "{err:?}");
    }

    #[test]
    fn misnamed_field_rejected() {
        let v = tup(vec![
            ("robotid", Value::str("r1")),
            ("trajectory", Value::str("t")),
            ("effectors", set(vec![])),
        ]);
        assert!(matches!(
            v.check_type(&robot_ty(), "robots").unwrap_err(),
            Nf2Error::BadPath { .. }
        ));
    }

    #[test]
    fn duplicate_set_keys_rejected() {
        let ty = shorthand::set(robot_ty());
        let v = set(vec![robot("r1", &[]), robot("r1", &[])]);
        assert!(matches!(
            v.check_type(&ty, "robots").unwrap_err(),
            Nf2Error::DuplicateSetKey { .. }
        ));
    }

    #[test]
    fn collect_refs_traverses_everything() {
        let v = robot("r1", &["e1", "e2"]);
        let mut refs = Vec::new();
        v.collect_refs(&mut refs);
        let keys: Vec<String> = refs.iter().map(|r| r.key.to_string()).collect();
        assert_eq!(keys, vec!["e1", "e2"]);
    }

    #[test]
    fn leaf_count_counts_blu_instances() {
        // robot_id + trajectory + 2 refs = 4 leaves
        assert_eq!(robot("r1", &["e1", "e2"]).leaf_count(), 4);
        assert_eq!(Value::Int(1).leaf_count(), 1);
        assert_eq!(set(vec![]).leaf_count(), 0);
    }

    #[test]
    fn field_accessors() {
        let mut v = robot("r1", &[]);
        assert_eq!(v.field("robot_id"), Some(&Value::str("r1")));
        *v.field_mut("trajectory").unwrap() = Value::str("new");
        assert_eq!(v.field("trajectory"), Some(&Value::str("new")));
        assert!(v.field("nope").is_none());
        assert!(Value::Int(1).field("x").is_none());
    }

    #[test]
    fn element_key_for_tuples_and_atoms() {
        let r = robot("r7", &[]);
        assert_eq!(r.element_key(&robot_ty()), Some(ObjectKey::Str("r7".into())));
        assert_eq!(Value::Int(5).element_key(&int_()), Some(ObjectKey::Int(5)));
        assert_eq!(set(vec![]).element_key(&int_()), None);
    }

    #[test]
    fn display_is_compact() {
        let v = tup(vec![("a", Value::Int(1)), ("b", set(vec![Value::Int(2)]))]);
        assert_eq!(v.to_string(), "(a: 1, b: {2})");
        assert_eq!(Value::reference("effectors", "e1").to_string(), "->effectors[e1]");
    }

    #[test]
    fn object_key_orderings() {
        assert!(ObjectKey::from("a") < ObjectKey::from("b"));
        assert!(ObjectKey::from(1i64) < ObjectKey::from(2i64));
        assert_eq!(ObjectKey::from("x").to_string(), "x");
    }
}
