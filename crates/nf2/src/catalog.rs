//! The catalog: schema plus statistical information.
//!
//! §4.5: "the lock granules and the corresponding lock modes are determined
//! automatically from a query and additional *structural and statistical
//! information*". The catalog is that structural + statistical information:
//! it owns the database schema and per-attribute cardinality statistics used
//! by the escalation-anticipation optimizer, and it is what the concurrency
//! control manager consults to find the immediate parents of an entry point
//! (§4.4.2.1: "all immediate parents of an entry point … can be determined
//! with help of catalog information").

use crate::path::AttrPath;
use crate::schema::DatabaseSchema;
use crate::types::AttrType;
use crate::Result;
use std::collections::HashMap;

/// Statistics about one homogeneously structured attribute (set/list).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttrStats {
    /// Average number of elements of the set/list per parent instance.
    pub avg_cardinality: f64,
}

impl Default for AttrStats {
    fn default() -> Self {
        // A deliberately neutral default; workloads override it.
        AttrStats { avg_cardinality: 10.0 }
    }
}

/// Statistics about one relation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RelationStats {
    /// Number of complex objects in the relation.
    pub cardinality: u64,
    /// Per-path statistics for homogeneous attributes (`robots`,
    /// `c_objects`, `robots.effectors`, …).
    pub attrs: HashMap<String, AttrStats>,
}

impl RelationStats {
    /// Statistics for a homogeneous attribute path, with default fallback.
    pub fn attr(&self, path: &AttrPath) -> AttrStats {
        self.attrs.get(&path.to_string()).copied().unwrap_or_default()
    }

    /// Records statistics for an attribute path.
    pub fn set_attr(&mut self, path: &str, avg_cardinality: f64) {
        self.attrs.insert(path.to_string(), AttrStats { avg_cardinality });
    }
}

/// The catalog: validated schema plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    schema: DatabaseSchema,
    stats: HashMap<String, RelationStats>,
}

impl Catalog {
    /// Creates a catalog over a validated schema with empty statistics.
    pub fn new(schema: DatabaseSchema) -> Result<Self> {
        let schema = schema.validate()?;
        Ok(Catalog { schema, stats: HashMap::new() })
    }

    /// The schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// Statistics of a relation (empty default if never recorded).
    pub fn relation_stats(&self, relation: &str) -> RelationStats {
        self.stats.get(relation).cloned().unwrap_or_default()
    }

    /// Mutable statistics entry for a relation.
    pub fn relation_stats_mut(&mut self, relation: &str) -> &mut RelationStats {
        self.stats.entry(relation.to_string()).or_default()
    }

    /// Estimated number of element instances reachable at `path` within one
    /// complex object of `relation` (product of set/list cardinalities of
    /// every homogeneous constructor on the way).
    pub fn estimated_instances(&self, relation: &str, path: &AttrPath) -> Result<f64> {
        let rel = self.schema.relation(relation)?;
        let stats = self.relation_stats(relation);
        let mut count = 1.0;
        let mut cur_path = AttrPath::root();
        let mut cur_ty: Option<&AttrType> = None;
        for step in path.steps() {
            cur_path = cur_path.child(step);
            let ty = cur_path.resolve(rel)?;
            cur_ty = Some(ty);
            if ty.is_homogeneous() {
                count *= stats.attr(&cur_path).avg_cardinality;
            }
        }
        let _ = cur_ty;
        Ok(count)
    }

    /// Records per-path average cardinalities measured from actual data; used
    /// by the storage layer to keep the optimizer honest.
    pub fn record_cardinality(&mut self, relation: &str, path: &str, avg: f64) {
        self.relation_stats_mut(relation).set_attr(path, avg);
    }

    /// Whether the attribute at `path` within `relation` admits the semantic
    /// commutativity lock modes (Insert/Delete/Member): a set/list HoLU whose
    /// elements carry a derivable key. The planner consults this before
    /// emitting a semantic container mode instead of plain IX/IS.
    pub fn admits_semantic_modes(&self, relation: &str, path: &AttrPath) -> Result<bool> {
        let rel = self.schema.relation(relation)?;
        Ok(path.resolve(rel)?.admits_semantic_modes())
    }

    /// Whether `relation` holds common data (is referenced by some relation).
    pub fn is_common_data(&self, relation: &str) -> bool {
        self.schema
            .common_data_relations()
            .iter()
            .any(|r| r.name == relation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{DatabaseBuilder, RelationBuilder};
    use crate::types::shorthand::*;

    fn catalog() -> Catalog {
        let db = DatabaseBuilder::new("db1")
            .segment("seg1")
            .segment("seg2")
            .relation(
                RelationBuilder::new("effectors", "seg2")
                    .attr("eff_id", str_())
                    .attr("tool", str_())
                    .finish(),
            )
            .relation(
                RelationBuilder::new("cells", "seg1")
                    .attr("cell_id", str_())
                    .attr(
                        "c_objects",
                        set(tuple(vec![attr("obj_id", str_()), attr("obj_name", str_())])),
                    )
                    .attr(
                        "robots",
                        list(tuple(vec![
                            attr("robot_id", str_()),
                            attr("trajectory", str_()),
                            attr("effectors", set(ref_("effectors"))),
                        ])),
                    )
                    .finish(),
            )
            .finish()
            .unwrap();
        Catalog::new(db).unwrap()
    }

    #[test]
    fn estimated_instances_multiplies_cardinalities() {
        let mut c = catalog();
        c.record_cardinality("cells", "robots", 4.0);
        c.record_cardinality("cells", "robots.effectors", 3.0);
        // one trajectory per robot, 4 robots
        let t = c.estimated_instances("cells", &AttrPath::parse("robots.trajectory")).unwrap();
        assert_eq!(t, 4.0);
        // 4 robots × 3 effector-refs
        let e = c.estimated_instances("cells", &AttrPath::parse("robots.effectors")).unwrap();
        assert_eq!(e, 12.0);
        // a scalar at the top costs 1
        let id = c.estimated_instances("cells", &AttrPath::parse("cell_id")).unwrap();
        assert_eq!(id, 1.0);
    }

    #[test]
    fn default_stats_are_neutral() {
        let c = catalog();
        let got = c.estimated_instances("cells", &AttrPath::parse("robots")).unwrap();
        assert_eq!(got, AttrStats::default().avg_cardinality);
    }

    #[test]
    fn common_data_detection() {
        let c = catalog();
        assert!(c.is_common_data("effectors"));
        assert!(!c.is_common_data("cells"));
    }

    #[test]
    fn semantic_admission_resolves_through_the_schema() {
        let c = catalog();
        // Keyed tuple elements (obj_id, robot_id) admit semantic modes.
        assert!(c.admits_semantic_modes("cells", &AttrPath::parse("c_objects")).unwrap());
        assert!(c.admits_semantic_modes("cells", &AttrPath::parse("robots")).unwrap());
        // Ref elements have no derivable key; scalars are not containers.
        assert!(!c.admits_semantic_modes("cells", &AttrPath::parse("robots.effectors")).unwrap());
        assert!(!c.admits_semantic_modes("cells", &AttrPath::parse("cell_id")).unwrap());
        assert!(c.admits_semantic_modes("nope", &AttrPath::parse("x")).is_err());
    }

    #[test]
    fn unknown_relation_errors() {
        let c = catalog();
        assert!(c.estimated_instances("nope", &AttrPath::parse("x")).is_err());
    }
}
