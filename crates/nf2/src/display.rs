//! Pretty printers: schema trees in the style of Fig. 1.

use crate::schema::{DatabaseSchema, RelationSchema};
use crate::types::{AttrType, Attribute};
use std::fmt::Write;

/// Renders a relation schema as an indented tree, marking S/L/T constructors
/// and `ref` leaves, in the spirit of Fig. 1.
pub fn relation_tree(rel: &RelationSchema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Relation \"{}\" (segment {})", rel.name, rel.segment);
    for a in &rel.attributes {
        attr_tree(a, 1, &mut out);
    }
    out
}

/// Renders all relations of a database schema.
pub fn database_tree(db: &DatabaseSchema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Database \"{}\"", db.name);
    for s in &db.segments {
        let _ = writeln!(out, "  Segment \"{}\"", s.name);
        for r in db.relations.iter().filter(|r| r.segment == s.name) {
            for line in relation_tree(r).lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
    }
    out
}

fn attr_tree(attr: &Attribute, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let marker = type_marker(&attr.ty);
    let key = if attr.key { " [key]" } else { "" };
    let _ = writeln!(out, "{pad}{} : {marker}{key}", attr.name);
    type_children(&attr.ty, depth + 1, out);
}

fn type_marker(ty: &AttrType) -> String {
    match ty {
        AttrType::Atomic(a) => a.to_string(),
        AttrType::Set(_) => "S".to_string(),
        AttrType::List(_) => "L".to_string(),
        AttrType::Tuple(_) => "T".to_string(),
        AttrType::Ref(t) => format!("ref -> {t}"),
    }
}

fn type_children(ty: &AttrType, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match ty {
        AttrType::Set(e) | AttrType::List(e) => {
            if let AttrType::Tuple(fields) = e.as_ref() {
                let _ = writeln!(out, "{pad}T");
                for f in fields {
                    attr_tree(f, depth + 1, out);
                }
            } else {
                let _ = writeln!(out, "{pad}{}", type_marker(e));
                type_children(e, depth + 1, out);
            }
        }
        AttrType::Tuple(fields) => {
            for f in fields {
                attr_tree(f, depth, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{DatabaseBuilder, RelationBuilder};
    use crate::types::shorthand::*;

    fn fig1() -> DatabaseSchema {
        DatabaseBuilder::new("db1")
            .segment("seg1")
            .segment("seg2")
            .relation(
                RelationBuilder::new("effectors", "seg2")
                    .attr("eff_id", str_())
                    .attr("tool", str_())
                    .finish(),
            )
            .relation(
                RelationBuilder::new("cells", "seg1")
                    .attr("cell_id", str_())
                    .attr(
                        "c_objects",
                        set(tuple(vec![attr("obj_id", str_()), attr("obj_name", str_())])),
                    )
                    .attr(
                        "robots",
                        list(tuple(vec![
                            attr("robot_id", str_()),
                            attr("trajectory", str_()),
                            attr("effectors", set(ref_("effectors"))),
                        ])),
                    )
                    .finish(),
            )
            .finish()
            .unwrap()
    }

    #[test]
    fn relation_tree_contains_all_nodes() {
        let db = fig1();
        let tree = relation_tree(db.relation("cells").unwrap());
        for needle in
            ["cell_id", "c_objects : S", "obj_id", "obj_name", "robots : L", "trajectory",
             "effectors : S", "ref -> effectors", "[key]"]
        {
            assert!(tree.contains(needle), "missing {needle:?} in:\n{tree}");
        }
    }

    #[test]
    fn database_tree_groups_by_segment() {
        let out = database_tree(&fig1());
        let seg1 = out.find("Segment \"seg1\"").unwrap();
        let seg2 = out.find("Segment \"seg2\"").unwrap();
        let cells = out.find("Relation \"cells\"").unwrap();
        let eff = out.find("Relation \"effectors\"").unwrap();
        assert!(seg1 < cells && cells < seg2 && seg2 < eff);
    }
}
