//! The extended NF² type system (§2 of the paper).
//!
//! Attribute values may be atomic, *homogeneously structured* (a set or a
//! list — data of the same type), or *heterogeneously structured* (a complex
//! tuple — data of different types). A reference (`ref`) is an atomic value
//! that points to a complex object of another relation ("common data").
//! The HoLU/HeLU/BLU distinction of the general lock graph (Fig. 4) is derived
//! from exactly this classification.

use std::fmt;

/// Atomic (leaf) data types without inner structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicType {
    /// Strings (`str` in Fig. 1).
    Str,
    /// Integers (`int` in Fig. 1).
    Int,
    /// Reals.
    Real,
    /// Booleans.
    Bool,
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomicType::Str => "str",
            AtomicType::Int => "int",
            AtomicType::Real => "real",
            AtomicType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// The type of an attribute value in the extended NF² model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrType {
    /// An atomic attribute without inner structure.
    Atomic(AtomicType),
    /// A *set* of elements of one type — homogeneously structured (`S` in
    /// Fig. 1). Sets of tuples are keyed by the element tuple's key attribute.
    Set(Box<AttrType>),
    /// A *list* of elements of one type — homogeneously structured and
    /// ordered (`L` in Fig. 1; e.g. the `robots` list ordered by `robot_id`).
    List(Box<AttrType>),
    /// A *(complex) tuple* — heterogeneously structured (`T` in Fig. 1).
    Tuple(Vec<Attribute>),
    /// A reference to common data: always references a complex object of the
    /// named relation, never a part of one (§2). The implementation of
    /// references (key values, surrogates, …) is deliberately opaque; we use
    /// surrogate keys (see [`crate::value::ObjectRef`]).
    Ref(String),
}

impl AttrType {
    /// `true` for types whose lockable-unit image is a BLU (derivation rule 4;
    /// references are BLUs with a dashed edge, Fig. 4).
    pub fn is_basic(&self) -> bool {
        matches!(self, AttrType::Atomic(_) | AttrType::Ref(_))
    }

    /// `true` for homogeneously structured types (derivation rules 1 and 2).
    pub fn is_homogeneous(&self) -> bool {
        matches!(self, AttrType::Set(_) | AttrType::List(_))
    }

    /// `true` for heterogeneously structured types (derivation rule 3).
    pub fn is_heterogeneous(&self) -> bool {
        matches!(self, AttrType::Tuple(_))
    }

    /// The element type of a set or list, if any.
    pub fn element(&self) -> Option<&AttrType> {
        match self {
            AttrType::Set(e) | AttrType::List(e) => Some(e),
            _ => None,
        }
    }

    /// For a set/list whose elements carry a *derivable element key*, the
    /// element type. Atomic `str`/`int` elements are self-keyed; tuple
    /// elements need a key field of `str`/`int` (the `_id` convention of
    /// Fig. 1). Elements without such a key — reals, bools, refs, nested
    /// containers, keyless tuples — cannot be addressed individually, so
    /// their container gets `None`.
    pub fn keyed_element(&self) -> Option<&AttrType> {
        let elem = self.element()?;
        let keyable = match elem {
            AttrType::Atomic(AtomicType::Str | AtomicType::Int) => true,
            AttrType::Tuple(fields) => fields
                .iter()
                .any(|a| a.key && matches!(a.ty, AttrType::Atomic(AtomicType::Str | AtomicType::Int))),
            _ => false,
        };
        keyable.then_some(elem)
    }

    /// Whether this HoLU admits the semantic commutativity lock modes
    /// (Insert/Delete/Member): set- and list-valued attributes whose
    /// elements are addressable by a derivable key. Two inserts of distinct
    /// keys commute on such a container, and same-key collisions materialize
    /// as classical locks on the element resource named by that key.
    pub fn admits_semantic_modes(&self) -> bool {
        self.keyed_element().is_some()
    }

    /// The fields of a tuple type, if any.
    pub fn fields(&self) -> Option<&[Attribute]> {
        match self {
            AttrType::Tuple(fs) => Some(fs),
            _ => None,
        }
    }

    /// The target relation of a reference type, if any.
    pub fn ref_target(&self) -> Option<&str> {
        match self {
            AttrType::Ref(t) => Some(t),
            _ => None,
        }
    }

    /// Collects the names of all relations referenced anywhere below this
    /// type (used for recursion and target validation).
    pub fn collect_ref_targets<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            AttrType::Atomic(_) => {}
            AttrType::Ref(t) => out.push(t),
            AttrType::Set(e) | AttrType::List(e) => e.collect_ref_targets(out),
            AttrType::Tuple(fs) => {
                for a in fs {
                    a.ty.collect_ref_targets(out);
                }
            }
        }
    }

    /// Depth of the type tree: atomic/ref = 1, containers add 1.
    pub fn depth(&self) -> usize {
        match self {
            AttrType::Atomic(_) | AttrType::Ref(_) => 1,
            AttrType::Set(e) | AttrType::List(e) => 1 + e.depth(),
            AttrType::Tuple(fs) => 1 + fs.iter().map(|a| a.ty.depth()).max().unwrap_or(0),
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Atomic(a) => write!(f, "{a}"),
            AttrType::Set(e) => write!(f, "S<{e}>"),
            AttrType::List(e) => write!(f, "L<{e}>"),
            AttrType::Tuple(fs) => {
                write!(f, "T(")?;
                for (i, a) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {}", a.name, a.ty)?;
                }
                write!(f, ")")
            }
            AttrType::Ref(t) => write!(f, "ref<{t}>"),
        }
    }
}

/// A named attribute of a tuple type or relation.
///
/// Following Fig. 1, an attribute whose name ends in `_id` is treated as a key
/// attribute by convention; [`Attribute::key`] can also be set explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (added to each node of the schema tree in Fig. 1).
    pub name: String,
    /// The attribute's type.
    pub ty: AttrType,
    /// Whether this attribute is a key of the enclosing tuple.
    pub key: bool,
}

impl Attribute {
    /// Creates a non-key attribute.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        let name = name.into();
        let key = name.ends_with("_id");
        Attribute { name, ty, key }
    }

    /// Creates an attribute and marks it as key.
    pub fn key(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute { name: name.into(), ty, key: true }
    }
}

/// Convenience constructors mirroring Fig. 1 notation.
pub mod shorthand {
    use super::*;

    /// `str` atomic type.
    pub fn str_() -> AttrType {
        AttrType::Atomic(AtomicType::Str)
    }
    /// `int` atomic type.
    pub fn int_() -> AttrType {
        AttrType::Atomic(AtomicType::Int)
    }
    /// `real` atomic type.
    pub fn real_() -> AttrType {
        AttrType::Atomic(AtomicType::Real)
    }
    /// `bool` atomic type.
    pub fn bool_() -> AttrType {
        AttrType::Atomic(AtomicType::Bool)
    }
    /// `S<element>` set type.
    pub fn set(e: AttrType) -> AttrType {
        AttrType::Set(Box::new(e))
    }
    /// `L<element>` list type.
    pub fn list(e: AttrType) -> AttrType {
        AttrType::List(Box::new(e))
    }
    /// `T(fields…)` tuple type.
    pub fn tuple(fields: Vec<Attribute>) -> AttrType {
        AttrType::Tuple(fields)
    }
    /// `ref<relation>` reference type.
    pub fn ref_(target: impl Into<String>) -> AttrType {
        AttrType::Ref(target.into())
    }
    /// Attribute shorthand.
    pub fn attr(name: &str, ty: AttrType) -> Attribute {
        Attribute::new(name, ty)
    }
}

#[cfg(test)]
mod tests {
    use super::shorthand::*;
    use super::*;

    #[test]
    fn classification_matches_derivation_rules() {
        assert!(str_().is_basic());
        assert!(ref_("effectors").is_basic());
        assert!(set(str_()).is_homogeneous());
        assert!(list(int_()).is_homogeneous());
        assert!(tuple(vec![attr("a", str_())]).is_heterogeneous());
        assert!(!tuple(vec![]).is_basic());
    }

    #[test]
    fn semantic_mode_admission_requires_a_derivable_element_key() {
        // Self-keyed atomic elements and keyed tuple elements qualify.
        assert!(set(str_()).admits_semantic_modes());
        assert!(list(int_()).admits_semantic_modes());
        assert!(set(tuple(vec![attr("robot_id", str_()), attr("t", real_())])).admits_semantic_modes());
        // No derivable key: reals, refs, nested containers, keyless tuples.
        assert!(!set(real_()).admits_semantic_modes());
        assert!(!set(ref_("effectors")).admits_semantic_modes());
        assert!(!list(set(str_())).admits_semantic_modes());
        assert!(!set(tuple(vec![attr("name", str_())])).admits_semantic_modes());
        // A key field must itself be keyable (bool keys carry no ObjectKey).
        assert!(!set(tuple(vec![Attribute::key("flag", bool_())])).admits_semantic_modes());
        // Non-containers never admit semantic modes.
        assert!(!str_().admits_semantic_modes());
        assert!(!tuple(vec![attr("a_id", str_())]).admits_semantic_modes());
    }

    #[test]
    fn id_suffix_convention_marks_keys() {
        assert!(Attribute::new("cell_id", str_()).key);
        assert!(!Attribute::new("cell", str_()).key);
        assert!(Attribute::key("name", str_()).key);
    }

    #[test]
    fn collect_ref_targets_finds_nested_refs() {
        let t = set(tuple(vec![
            attr("robot_id", str_()),
            attr("effectors", set(ref_("effectors"))),
            attr("aux", list(ref_("tools"))),
        ]));
        let mut targets = Vec::new();
        t.collect_ref_targets(&mut targets);
        assert_eq!(targets, vec!["effectors", "tools"]);
    }

    #[test]
    fn depth_counts_nesting_levels() {
        assert_eq!(str_().depth(), 1);
        assert_eq!(set(str_()).depth(), 2);
        let robots = list(tuple(vec![
            attr("robot_id", str_()),
            attr("effectors", set(ref_("effectors"))),
        ]));
        // list -> tuple -> set -> ref
        assert_eq!(robots.depth(), 4);
    }

    #[test]
    fn display_round_trips_shape() {
        let t = tuple(vec![attr("obj_id", str_()), attr("sizes", set(int_()))]);
        assert_eq!(t.to_string(), "T(obj_id: str, sizes: S<int>)");
        assert_eq!(list(ref_("effectors")).to_string(), "L<ref<effectors>>");
    }

    #[test]
    fn element_and_fields_accessors() {
        let s = set(int_());
        assert_eq!(s.element(), Some(&int_()));
        assert!(s.fields().is_none());
        let t = tuple(vec![attr("a", int_())]);
        assert_eq!(t.fields().unwrap().len(), 1);
        assert!(t.element().is_none());
        assert_eq!(ref_("x").ref_target(), Some("x"));
        assert_eq!(int_().ref_target(), None);
    }
}
