#!/usr/bin/env bash
# Hermetic-build gate: the workspace must build, test and bench-compile with
# the network unplugged, and no registry dependency may creep back into any
# manifest. Run from anywhere; operates on the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> checking manifests for registry dependencies"
# Workspace-path and std-only is the rule: any mention of the crates we
# replaced (rand/proptest/criterion/parking_lot/serde) or any version-keyed
# dependency that is not `path = ...` is a failure.
if grep -rn "rand\|proptest\|criterion\|parking_lot\|serde" \
    Cargo.toml crates/*/Cargo.toml; then
    echo "error: registry dependency found in a manifest" >&2
    exit 1
fi
bad=$(python3 - <<'EOF'
import glob, re
bad = []
for m in ["Cargo.toml", *glob.glob("crates/*/Cargo.toml")]:
    section = None
    for i, line in enumerate(open(m), 1):
        line = line.split("#")[0].rstrip()
        h = re.match(r"\[(.+)\]$", line.strip())
        if h:
            section = h.group(1)
            continue
        if section and ("dependencies" in section):
            if re.match(r'\s*[\w-]+\s*=\s*"', line):  # name = "x.y" → registry
                bad.append(f"{m}:{i}: {line.strip()}")
            if "version" in line and "path" not in line:
                bad.append(f"{m}:{i}: {line.strip()}")
print("\n".join(bad))
EOF
)
if [ -n "$bad" ]; then
    echo "error: version-keyed (registry) dependencies found:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "    ok: all dependencies are workspace-path deps"

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test --offline"
cargo test --offline --workspace -q

echo "==> rustdoc builds warning-free"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace -q

echo "==> cargo bench compiles (no run)"
cargo bench --offline --workspace --no-run -q

echo "==> colock_check --self-test (static analysis + linted contention demo)"
# Exercises both the clean path and the detected-cycle accounting: the
# self-test runs the trace_explain forced-deadlock demo under the linter and
# requires at least one detected and resolved deadlock with zero violations,
# plus the certifier mutation check (a seeded write-skew the linter passes
# must fail certification).
cargo run --offline --release -q -p colock-bench --bin colock_check -- --self-test

echo "==> colock_check --certify round trip (clean demo passes, forced cycle flagged)"
# End-to-end file modes of the serializability certifier: the contention
# demo trace must certify (its deadlock victim aborted; the committed
# survivors are acyclic), the seeded write-skew trace must be refused with
# a non-zero exit.
certify_tmp=$(mktemp -d)
trap 'rm -rf "$certify_tmp"' EXIT
cargo run --offline --release -q -p colock-bench --bin colock_check -- \
    --dump demo "$certify_tmp/demo.trace"
cargo run --offline --release -q -p colock-bench --bin colock_check -- \
    --dump skew "$certify_tmp/skew.trace"
cargo run --offline --release -q -p colock-bench --bin colock_check -- \
    --certify "$certify_tmp/demo.trace"
if cargo run --offline --release -q -p colock-bench --bin colock_check -- \
    --certify "$certify_tmp/skew.trace" >/dev/null 2>&1; then
    echo "error: the seeded write-skew trace must fail certification" >&2
    exit 1
fi
echo "    ok: clean demo certified, forced cycle refused"

echo "==> stress_explore (DPOR interleaving explorer, linted + certified)"
# Enumerates distinct schedules of the 3-txn hot-HoLU insert storm and a
# 2-txn guaranteed-deadlock scenario through the lock table's yield points;
# every explored interleaving must lint clean and certify
# conflict-serializable, and every explored deadlock must resolve live.
COLOCK_EXPLORE_MAX_SCHEDULES="${COLOCK_EXPLORE_MAX_SCHEDULES:-600}" \
    cargo run --offline --release -q -p colock-bench --bin stress_explore

echo "==> stress_lockmgr (bounded rounds, linted)"
COLOCK_CHECK=1 COLOCK_STRESS_ROUNDS="${COLOCK_STRESS_ROUNDS:-40}" \
    cargo run --offline --release -q -p colock-bench --bin stress_lockmgr

echo "==> stress_insert_storm (hot-HoLU commuting inserts, linted)"
# The semantic-mode acceptance workload: N writers insert distinct elements
# into ONE set-valued HoLU. Runs twice under COLOCK_CHECK=1 — semantic modes
# on (inserters commute via Insert on the container) and the
# COLOCK_NO_SEMANTIC=1 ablation (every insert X-locks the container) — both
# must keep every per-round invariant and lint clean.
COLOCK_CHECK=1 COLOCK_STRESS_ROUNDS="${COLOCK_STRESS_ROUNDS:-20}" \
    cargo run --offline --release -q -p colock-bench --bin stress_insert_storm
COLOCK_NO_SEMANTIC=1 COLOCK_CHECK=1 COLOCK_STRESS_ROUNDS=10 \
    cargo run --offline --release -q -p colock-bench --bin stress_insert_storm

echo "==> stress_recovery (bounded fault-injection sweep, linted)"
COLOCK_CHECK=1 COLOCK_RECOVERY_ROUNDS="${COLOCK_RECOVERY_ROUNDS:-10}" \
    cargo run --offline --release -q -p colock-bench --bin stress_recovery

echo "==> stress_snapshot (read-mostly storm against the MVCC overlay, linted)"
# 70% snapshot readers against writers under COLOCK_CHECK=1: every round
# asserts reads_elided matches the reader histogram, the lock table drains,
# and the linter sees no snapshot txn in any lock-manager event.
COLOCK_CHECK=1 COLOCK_STRESS_ROUNDS="${COLOCK_STRESS_ROUNDS:-40}" \
    cargo run --offline --release -q -p colock-bench --bin stress_snapshot

echo "==> loopback serving smoke (loadgen small budget, linted)"
# Real TCP over loopback at a bounded scale: 40 sessions, 300 txns through
# the full mix. COLOCK_CHECK=1 replays the entire served trace window
# through the protocol linter — served traffic must be as conformant as
# in-process traffic.
COLOCK_CHECK=1 COLOCK_LOAD_SESSIONS=40 COLOCK_LOAD_WORKERS=4 COLOCK_LOAD_TXNS=300 \
    cargo run --offline --release -q -p colock-bench --bin loadgen

echo "==> stress_server (one kill/restart recovery round over TCP, linted)"
# §3.1 durability end to end: clients check out long locks over TCP, the
# server is killed, a new one recovers the journal, every acked lock must
# be re-adopted and resumable by reconnecting clients.
COLOCK_CHECK=1 COLOCK_SERVER_ROUNDS="${COLOCK_SERVER_ROUNDS:-1}" \
    cargo run --offline --release -q -p colock-bench --bin stress_server

echo "==> differential fast-path equivalence suite"
# The optimistic/pessimistic differential harness runs both paths itself;
# this run keeps it in the gate so a fast-path change cannot land without
# the observational-equivalence proof passing.
cargo test --offline -q -p colock-sim --test differential

echo "==> stress + differential with the adaptive policy enabled"
# COLOCK_ADAPTIVE=1 switches on wait-depth limiting, histogram-driven
# escalation thresholds and hot-spot victim selection; the same invariants
# and the linter must hold with the policy live.
COLOCK_ADAPTIVE=1 COLOCK_CHECK=1 COLOCK_STRESS_ROUNDS=10 \
    cargo run --offline --release -q -p colock-bench --bin stress_lockmgr
COLOCK_ADAPTIVE=1 COLOCK_CHECK=1 COLOCK_STRESS_ROUNDS=10 \
    cargo run --offline --release -q -p colock-bench --bin stress_insert_storm
COLOCK_ADAPTIVE=1 cargo test --offline -q -p colock-sim --test differential

echo "==> stress harnesses with the fast path disabled"
# One bounded round of each with COLOCK_NO_FASTPATH=1: the classic
# shard-mutex path must keep passing the same per-round invariants
# (gate identity trivially zero, summary words re-derivable).
COLOCK_NO_FASTPATH=1 COLOCK_CHECK=1 COLOCK_STRESS_ROUNDS=10 \
    cargo run --offline --release -q -p colock-bench --bin stress_lockmgr
COLOCK_NO_FASTPATH=1 COLOCK_CHECK=1 COLOCK_RECOVERY_ROUNDS=5 \
    cargo run --offline --release -q -p colock-bench --bin stress_recovery

echo "==> stress_snapshot with the overlay disabled (locking fallback)"
# COLOCK_NO_MVCC=1 drops read-only txns to the S-locking fallback: the same
# storm must still commit every round with zero elided reads and a drained
# table, proving the toggle is safe under contention.
COLOCK_NO_MVCC=1 COLOCK_CHECK=1 COLOCK_STRESS_ROUNDS=10 \
    cargo run --offline --release -q -p colock-bench --bin stress_snapshot

echo "==> shard-scaling bench (small budget)"
COLOCK_BENCH_MS="${COLOCK_BENCH_MS:-50}" \
    cargo bench --offline -p colock-bench --bench bench_shard_scaling -q

echo "==> recovery bench (small budget)"
COLOCK_BENCH_MS="${COLOCK_BENCH_MS:-50}" \
    cargo bench --offline -p colock-bench --bench bench_recovery -q

echo "==> snapshot-read bench (small budget)"
COLOCK_BENCH_MS="${COLOCK_BENCH_MS:-50}" \
    cargo bench --offline -p colock-bench --bench bench_snapshot -q

echo "==> all checks passed"
