//! Facade crate re-exporting the whole `colock` workspace.
#![forbid(unsafe_code)]
pub use colock_check as check;
pub use colock_core as core;
pub use colock_lockmgr as lockmgr;
pub use colock_nf2 as nf2;
pub use colock_query as query;
pub use colock_server as server;
pub use colock_sim as sim;
pub use colock_storage as storage;
pub use colock_trace as trace;
pub use colock_txn as txn;
