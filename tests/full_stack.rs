//! Full-stack integration: schema → store → transactions → query language →
//! simulation drivers, all through the public facade crate.

use colock::core::authorization::{Authorization, Right};
use colock::core::optimizer::Optimizer;
use colock::core::{AccessMode, InstanceTarget};
use colock::nf2::Value;
use colock::query::exec::run;
use colock::sim::driver::ticks::TickConfig;
use colock::sim::{build_cells_store, CellsConfig, Op, OpGenerator, QueryMix, TickDriver};
use colock::txn::{ProtocolKind, TransactionManager, TxnKind};
use std::sync::Arc;

fn manager(protocol: ProtocolKind) -> TransactionManager {
    let store = build_cells_store(&CellsConfig::default());
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    TransactionManager::over_store(store, authz, protocol)
}

#[test]
fn query_language_over_generated_workload() {
    let mgr = manager(ProtocolKind::Proposed);
    let t = mgr.begin(TxnKind::Short);
    let out = run(
        &t,
        "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' FOR READ",
        &Optimizer::default(),
    )
    .unwrap();
    assert_eq!(out.rows.len(), CellsConfig::default().robots_per_cell);
    t.commit().unwrap();
}

#[test]
fn deterministic_sim_runs_identically_through_facade() {
    let run_once = || {
        let mgr = manager(ProtocolKind::Proposed);
        let driver = TickDriver::new(&mgr, TickConfig::default());
        let mut gen = OpGenerator::new(CellsConfig::default(), QueryMix::engineering(), 5);
        let scripts: Vec<Vec<Vec<Op>>> =
            (0..4).map(|_| (0..6).map(|_| gen.next_txn(2)).collect()).collect();
        let rep = driver.run(scripts);
        (rep.metrics.committed, rep.metrics.total_ticks, rep.metrics.blocked_ticks)
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn all_protocols_preserve_data_integrity_under_contention() {
    // Same deterministic workload under every protocol: after the run, the
    // store must be structurally valid (all refs resolve, keys unique) and
    // the lock table empty.
    for protocol in ProtocolKind::ALL {
        let mgr = manager(protocol);
        let driver = TickDriver::new(&mgr, TickConfig::default());
        let mut gen = OpGenerator::new(CellsConfig::default(), QueryMix::update_heavy(), 77);
        let scripts: Vec<Vec<Vec<Op>>> =
            (0..4).map(|_| (0..4).map(|_| gen.next_txn(2)).collect()).collect();
        let rep = driver.run(scripts);
        assert_eq!(rep.metrics.committed, 16, "{protocol:?}");
        assert_eq!(mgr.lock_manager().table_size(), 0, "{protocol:?}: leaked locks");
        // Structural validation: re-inserting every object into a fresh
        // store revalidates types, keys and references.
        let fresh = colock::storage::Store::new(Arc::clone(mgr.store().catalog()));
        for rel in ["effectors", "cells"] {
            for (_, v) in mgr.store().snapshot(rel).unwrap().objects() {
                fresh.insert(rel, v).unwrap_or_else(|e| panic!("{protocol:?}: {e}"));
            }
        }
    }
}

#[test]
fn committed_updates_are_durable_across_protocols() {
    for protocol in [ProtocolKind::Proposed, ProtocolKind::WholeObject, ProtocolKind::TupleLevel] {
        let mgr = manager(protocol);
        let t = mgr.begin(TxnKind::Short);
        let target = InstanceTarget::object("cells", "c1")
            .elem("robots", "r1")
            .attr("trajectory");
        t.update(&target, Value::str("committed-path")).unwrap();
        t.commit().unwrap();
        let t2 = mgr.begin(TxnKind::Short);
        assert_eq!(t2.read(&target).unwrap(), Value::str("committed-path"), "{protocol:?}");
        t2.commit().unwrap();
    }
}

#[test]
fn facade_reexports_are_coherent() {
    // The facade's types are the crates' types (no duplication).
    let engine: colock::core::ProtocolEngine =
        colock::core::ProtocolEngine::new(Arc::new(colock::core::fixtures::fig1_catalog()));
    let r: colock::core::ResourcePath = engine
        .resource_for(&InstanceTarget::object("cells", "c1"))
        .unwrap();
    assert_eq!(r.relation_name(), Some("cells"));
    let _mode: colock::lockmgr::LockMode = colock::lockmgr::LockMode::SIX;
}

#[test]
fn unauthorized_query_execution_fails_cleanly() {
    let mgr = manager(ProtocolKind::Proposed);
    let t = mgr.begin(TxnKind::Short);
    let err = run(
        &t,
        "UPDATE e.tool = 'hack' FROM e IN effectors WHERE e.eff_id = 'e1'",
        &Optimizer::default(),
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("lacks"), "{msg}");
    t.abort().unwrap();
    // Data untouched.
    let t2 = mgr.begin(TxnKind::Short);
    let v = t2
        .read(&InstanceTarget::object("effectors", "e1").attr("tool"))
        .unwrap();
    assert_ne!(v, Value::str("hack"));
    t2.commit().unwrap();
}

#[test]
fn reads_via_queries_respect_access_mode() {
    // AccessMode is carried from the FOR clause down to the lock manager.
    let mgr = manager(ProtocolKind::Proposed);
    let t = mgr.begin(TxnKind::Short);
    run(
        &t,
        "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR READ",
        &Optimizer::default(),
    )
    .unwrap();
    let robot = mgr
        .engine()
        .resource_for(&InstanceTarget::object("cells", "c1").elem("robots", "r1"))
        .unwrap();
    assert_eq!(mgr.lock_manager().held_mode(t.id(), &robot), colock::lockmgr::LockMode::S);
    let _ = AccessMode::Read;
    t.commit().unwrap();
}
