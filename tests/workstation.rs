//! Facade-level workstation scenario: the paper's §1 environment end-to-end —
//! private local databases, long locks, consistency with the central DB.

use colock::core::authorization::{Authorization, Right};
use colock::core::{AccessMode, InstanceTarget};
use colock::nf2::Value;
use colock::sim::workstation::Workstation;
use colock::sim::{build_cells_store, CellsConfig};
use colock::txn::{ProtocolKind, TransactionManager};

fn server() -> TransactionManager {
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    TransactionManager::over_store(
        build_cells_store(&CellsConfig::default()),
        authz,
        ProtocolKind::Proposed,
    )
}

fn robot(cell: &str, r: &str) -> InstanceTarget {
    InstanceTarget::object("cells", cell).elem("robots", r)
}

#[test]
fn independent_user_groups_share_one_cell() {
    // "Different users or user groups often work on private databases in an
    // independent way, e.g. in automotive industry" (§1): two stations edit
    // different robots of the same cell, a third reads the cell's parts.
    let srv = server();
    let mut station_a = Workstation::connect(&srv, "body-shop");
    let mut station_b = Workstation::connect(&srv, "paint-shop");

    station_a.checkout(&robot("c1", "r1"), AccessMode::Update).unwrap();
    station_b.checkout(&robot("c1", "r2"), AccessMode::Update).unwrap();

    // A plain reader of the parts keeps working throughout.
    let reader = srv.begin(colock::txn::TxnKind::Short);
    assert!(reader
        .try_lock(
            &InstanceTarget::object("cells", "c1").attr("c_objects"),
            AccessMode::Read
        )
        .is_ok());
    reader.commit().unwrap();

    station_a
        .edit(&robot("c1", "r1"), |v| {
            *v.field_mut("trajectory").unwrap() = Value::str("welding-arc");
        })
        .unwrap();
    station_b
        .edit(&robot("c1", "r2"), |v| {
            *v.field_mut("trajectory").unwrap() = Value::str("spray-sweep");
        })
        .unwrap();

    assert_eq!(station_a.checkin_all().unwrap(), 1);
    assert_eq!(station_b.checkin_all().unwrap(), 1);

    // Central database reflects both edits; lock table is clean.
    let check = srv.begin(colock::txn::TxnKind::Short);
    assert_eq!(
        check.read(&robot("c1", "r1").attr("trajectory")).unwrap(),
        Value::str("welding-arc")
    );
    assert_eq!(
        check.read(&robot("c1", "r2").attr("trajectory")).unwrap(),
        Value::str("spray-sweep")
    );
    check.commit().unwrap();
    assert_eq!(srv.lock_manager().table_size(), 0);
}

#[test]
fn stations_see_consistent_library_during_checkout() {
    // While a station holds a robot for update, the S entry locks on its
    // effectors keep the library in a "well-known state" (§1): a librarian
    // with update rights cannot change the effectors out from under it.
    let store = build_cells_store(&CellsConfig::default());
    let authz = Authorization::allow_all(); // librarian MAY update effectors
    let srv = TransactionManager::over_store(store, authz, ProtocolKind::Proposed);
    let mut station = Workstation::connect(&srv, "ws");
    // With allow_all the station itself could modify effectors, so rule 4'
    // gives X entry locks — even stronger isolation. Check the weaker case
    // explicitly via a read-only checkout.
    station.checkout(&robot("c1", "r1"), AccessMode::Read).unwrap();

    let librarian = srv.begin(colock::txn::TxnKind::Short);
    // Find an effector the checked-out robot uses.
    let copy = station.local(&robot("c1", "r1")).unwrap();
    let mut refs = Vec::new();
    copy.collect_refs(&mut refs);
    let eff = refs[0].clone();
    let blocked = librarian
        .try_lock(&InstanceTarget::object("effectors", eff.key.clone()), AccessMode::Update)
        .is_err();
    assert!(blocked, "library edit must wait for the checkout");
    librarian.abort().unwrap();

    station.abandon().unwrap();
    let librarian = srv.begin(colock::txn::TxnKind::Short);
    assert!(librarian
        .try_lock(&InstanceTarget::object("effectors", eff.key), AccessMode::Update)
        .is_ok());
    librarian.commit().unwrap();
}
