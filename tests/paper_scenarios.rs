//! Acceptance tests: the paper's §4.6 claims, each asserted end-to-end —
//! these are the machine-checked versions of the experiment tables in
//! `EXPERIMENTS.md`.

use colock::core::authorization::{Authorization, Right};
use colock::core::{AccessMode, InstanceTarget};
use colock::sim::driver::ticks::TickConfig;
use colock::sim::{build_cells_store, CellsConfig, Op, TickDriver};
use colock::txn::{ProtocolKind, TransactionManager, TxnKind};

fn manager(cfg: &CellsConfig, protocol: ProtocolKind) -> TransactionManager {
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    TransactionManager::over_store(build_cells_store(cfg), authz, protocol)
}

fn writable_manager(cfg: &CellsConfig, protocol: ProtocolKind) -> TransactionManager {
    TransactionManager::over_store(build_cells_store(cfg), Authorization::allow_all(), protocol)
}

/// §4.6 advantage 1: lock granules within the hierarchy solve the
/// granule-oriented problem — Q1 ∥ Q2 interleave under the proposed
/// technique, not under whole-object locking, and the proposed lock count
/// does not grow with the object.
#[test]
fn advantage1_granules_within_hierarchy() {
    let mut proposed_counts = Vec::new();
    for n in [10usize, 1000] {
        let cfg = CellsConfig { n_cells: 1, c_objects_per_cell: n, ..Default::default() };

        let mgr = manager(&cfg, ProtocolKind::Proposed);
        let t = mgr.begin(TxnKind::Short);
        let (target, access) = Op::ReadParts { cell: 0 }.target();
        proposed_counts.push(t.lock(&target, access).unwrap().lock_count());
        t.commit().unwrap();

        let driver_p = manager(&cfg, ProtocolKind::Proposed);
        let out = TickDriver::new(&driver_p, TickConfig::default()).run(vec![
            vec![vec![Op::ReadParts { cell: 0 }, Op::ReadParts { cell: 0 }]],
            vec![vec![Op::UpdateRobot { cell: 0, robot: 0 }]],
        ]);
        assert_eq!(out.metrics.blocked_ticks, 0, "proposed interleaves at n={n}");

        let driver_w = manager(&cfg, ProtocolKind::WholeObject);
        let out = TickDriver::new(&driver_w, TickConfig::default()).run(vec![
            vec![vec![Op::ReadParts { cell: 0 }, Op::ReadParts { cell: 0 }]],
            vec![vec![Op::UpdateRobot { cell: 0, robot: 0 }]],
        ]);
        assert!(out.metrics.blocked_ticks > 0, "whole-object serializes at n={n}");
    }
    assert_eq!(proposed_counts[0], proposed_counts[1], "proposed lock count size-independent");
}

/// §4.6 advantage 2: acceptable overhead to lock common data exclusively —
/// the proposed footprint for X on a shared effector is flat while the
/// naive DAG grows with the sharing degree.
#[test]
fn advantage2_cheap_exclusive_common_data() {
    let mut naive = Vec::new();
    let mut proposed = Vec::new();
    for n_cells in [2usize, 16] {
        let cfg = CellsConfig {
            n_cells,
            n_effectors: 4,
            effectors_per_robot: 2,
            c_objects_per_cell: 5,
            ..Default::default()
        };
        for (kind, out) in
            [(ProtocolKind::NaiveDag, &mut naive), (ProtocolKind::Proposed, &mut proposed)]
        {
            let mgr = writable_manager(&cfg, kind);
            let t = mgr.begin(TxnKind::Short);
            let report =
                t.lock(&InstanceTarget::object("effectors", "e1"), AccessMode::Update).unwrap();
            out.push((report.lock_count(), report.scan_cost));
            t.commit().unwrap();
        }
    }
    assert!(naive[1].0 > naive[0].0, "naive lock count grows: {naive:?}");
    assert!(naive[1].1 > naive[0].1, "naive scan cost grows: {naive:?}");
    assert_eq!(proposed[0].0, proposed[1].0, "proposed stays flat: {proposed:?}");
    assert_eq!(proposed[0].1, 0, "proposed needs no reverse scan");
}

/// §4.6 advantage 3: visibility of implicit locks — from-the-side X on a
/// shared effector conflicts with a robot updater's entry-point lock.
#[test]
fn advantage3_from_the_side_visibility() {
    let cfg = CellsConfig { n_effectors: 4, ..Default::default() };
    // Relaxed naive: anomaly possible (T2 not blocked).
    let mgr = writable_manager(&cfg, ProtocolKind::NaiveRelaxed);
    let t1 = mgr.begin(TxnKind::Short);
    t1.lock(
        &InstanceTarget::object("cells", "c1").elem("robots", "r1"),
        AccessMode::Update,
    )
    .unwrap();
    let shared = first_effector_of_r1(&mgr);
    let t2 = mgr.begin(TxnKind::Short);
    assert!(
        t2.try_lock(&InstanceTarget::object("effectors", shared.clone()), AccessMode::Update).is_ok(),
        "relaxed naive misses the conflict"
    );
    t2.abort().unwrap();
    t1.commit().unwrap();

    // Proposed: conflict visible.
    let mgr = writable_manager(&cfg, ProtocolKind::Proposed);
    let t1 = mgr.begin(TxnKind::Short);
    t1.lock(
        &InstanceTarget::object("cells", "c1").elem("robots", "r1"),
        AccessMode::Update,
    )
    .unwrap();
    let shared = first_effector_of_r1(&mgr);
    let t2 = mgr.begin(TxnKind::Short);
    assert!(
        t2.try_lock(&InstanceTarget::object("effectors", shared), AccessMode::Update).is_err(),
        "proposed protocol must detect the from-the-side conflict"
    );
    t2.abort().unwrap();
    t1.commit().unwrap();
}

fn first_effector_of_r1(mgr: &TransactionManager) -> colock::nf2::ObjectKey {
    let robot = mgr
        .store()
        .get_at(
            "cells",
            &colock::nf2::ObjectKey::from("c1"),
            &[colock::core::TargetStep::elem("robots", "r1")],
        )
        .unwrap();
    let mut refs = Vec::new();
    robot.collect_refs(&mut refs);
    refs[0].key.clone()
}

/// §4.6 advantage 4: least-restrictive locking of common data — two robot
/// updaters without library rights share S entry locks (Fig. 7).
#[test]
fn advantage4_least_restrictive_modes() {
    let cfg = CellsConfig { n_effectors: 2, effectors_per_robot: 2, ..Default::default() };
    let mgr = manager(&cfg, ProtocolKind::Proposed);
    let t2 = mgr.begin(TxnKind::Short);
    let t3 = mgr.begin(TxnKind::Short);
    t2.lock(&InstanceTarget::object("cells", "c1").elem("robots", "r1"), AccessMode::Update)
        .unwrap();
    assert!(
        t3.try_lock(&InstanceTarget::object("cells", "c1").elem("robots", "r2"), AccessMode::Update)
            .is_ok(),
        "rule 4' lets both updaters run"
    );
    t2.commit().unwrap();
    t3.commit().unwrap();

    // Plain rule 4 serializes the very same pair.
    let mgr = manager(&cfg, ProtocolKind::ProposedRule4);
    let t2 = mgr.begin(TxnKind::Short);
    let t3 = mgr.begin(TxnKind::Short);
    t2.lock(&InstanceTarget::object("cells", "c1").elem("robots", "r1"), AccessMode::Update)
        .unwrap();
    assert!(
        t3.try_lock(&InstanceTarget::object("cells", "c1").elem("robots", "r2"), AccessMode::Update)
            .is_err(),
        "plain rule 4 must serialize on the shared effector"
    );
    t2.commit().unwrap();
    t3.abort().unwrap();
}

/// §4.6 advantage 6/7: strict phase separation — the query-specific lock
/// graph is computed before execution and reused; execution then only
/// requests the stored granules.
#[test]
fn advantage6_phase_separation() {
    use colock::core::optimizer::Optimizer;
    use colock::query::{analyze::analyze, parse, plan::plan_locks};
    let cfg = CellsConfig::default();
    let mgr = manager(&cfg, ProtocolKind::Proposed);
    let catalog = mgr.store().catalog().clone();
    let stmt = parse(
        "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE",
    )
    .unwrap();
    let analysis = analyze(&catalog, &stmt).unwrap();
    let plan = plan_locks(&catalog, stmt, analysis, &Optimizer::default()).unwrap();
    // The same plan executes repeatedly (construction happened once).
    for _ in 0..3 {
        let t = mgr.begin(TxnKind::Short);
        let out = colock::query::exec::execute(&t, &plan).unwrap();
        assert_eq!(out.rows.len(), 1);
        t.commit().unwrap();
    }
}

/// §4.6 disadvantage 2 bound: for disjoint objects accessed as a whole the
/// proposed protocol degenerates to the traditional one — identical lock
/// counts (no penalty in our realization).
#[test]
fn disadvantage2_disjoint_degenerates_to_traditional() {
    let cfg = CellsConfig { effectors_per_robot: 0, ..Default::default() };
    let mut counts = Vec::new();
    for protocol in [ProtocolKind::Proposed, ProtocolKind::WholeObject] {
        let mgr = manager(&cfg, protocol);
        let t = mgr.begin(TxnKind::Short);
        let report =
            t.lock(&InstanceTarget::object("cells", "c1"), AccessMode::Update).unwrap();
        counts.push(report.lock_count());
        t.commit().unwrap();
    }
    assert_eq!(counts[0], counts[1]);
}
