//! Full-stack observability check: with tracing on, a threaded contended run
//! must yield a non-empty trace-explain timeline for every committed
//! transaction, and the wait histograms in the metrics must account for the
//! run's waits.
//!
//! Own integration-test binary: the global trace switch must not be shared
//! with unrelated parallel tests.

use colock::sim::{run_threads, CellsConfig, QueryMix, ThreadConfig};
use colock::trace::explain::{render_timeline, timeline};
use colock::trace::EventKind;
use colock::txn::{ProtocolKind, TransactionManager};
use std::sync::Arc;

fn standard_authz() -> colock::core::Authorization {
    let mut a = colock::core::Authorization::allow_all();
    a.set_relation_default("effectors", colock::core::authorization::Right::Read);
    a
}

#[test]
fn every_committed_txn_has_a_nonempty_timeline() {
    colock::trace::enable();
    let mark = colock::trace::current_seq();

    let cells = CellsConfig { n_cells: 2, c_objects_per_cell: 8, ..Default::default() };
    let store = colock::sim::build_cells_store(&cells);
    let mgr = Arc::new(TransactionManager::over_store(
        store,
        standard_authz(),
        ProtocolKind::Proposed,
    ));
    let cfg = ThreadConfig {
        workers: 4,
        txns_per_worker: 5,
        ops_per_txn: 3,
        mix: QueryMix::update_heavy(),
        seed: 7,
        cells,
        readonly_pct: 0,
    };
    let report = run_threads(&mgr, &cfg);
    assert_eq!(report.metrics.committed, 20);

    let events = colock::trace::events_since(mark);
    let lines = timeline(&events);

    // Every transaction that committed has a timeline, and it explains more
    // than the bare begin/commit bracket (locks were taken and annotated).
    let committed: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::TxnCommit)
        .map(|e| e.txn)
        .collect();
    assert_eq!(committed.len() as u64, report.metrics.committed);
    for txn in &committed {
        let tl = lines.get(txn).unwrap_or_else(|| panic!("no timeline for committed txn {txn}"));
        assert!(tl.len() > 2, "timeline of txn {txn} is trivial: {tl:?}");
    }

    // The rendering names every committed transaction.
    let rendered = render_timeline(&lines);
    for txn in &committed {
        assert!(rendered.contains(&format!("== txn {txn} ==")), "txn {txn} missing");
    }

    // If anything waited, the per-resource histograms saw it too.
    let waits = events.iter().filter(|e| e.kind == EventKind::Wait).count();
    let histogram_total = report.metrics.total_wait_hist().count();
    assert!(
        histogram_total as usize <= waits,
        "histograms ({histogram_total}) cannot exceed raw waits ({waits})"
    );
    if waits > 0 {
        // Grants always follow waits in this run (nobody times out), so at
        // least the waits of committed transactions resolve into buckets.
        assert!(histogram_total > 0, "waits occurred but no histogram entries");
    }
}
