//! Workstation–server environment (§1, §3.1): a long transaction checks out
//! one robot to a workstation, survives a (simulated) server crash thanks to
//! persistent long locks, modifies the private copy and checks it back in —
//! while readers of the cell's other parts keep working throughout.
//!
//! Run with: `cargo run --example workstation_checkout`

use colock::core::authorization::{Authorization, Right};
use colock::core::{AccessMode, InstanceTarget};
use colock::lockmgr::{LockManager, LongLockImage};
use colock::nf2::Value;
use colock::sim::{build_cells_store, CellsConfig};
use colock::txn::{ProtocolKind, TransactionManager, TxnKind};

fn main() {
    let store = build_cells_store(&CellsConfig::default());
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    let mgr = TransactionManager::over_store(store, authz, ProtocolKind::Proposed);

    // 1. The workstation user starts a LONG transaction and checks out
    //    robot r1 of cell c1 for update.
    let station = mgr.begin(TxnKind::Long);
    let robot = InstanceTarget::object("cells", "c1").elem("robots", "r1");
    let copy = station.checkout(&robot, AccessMode::Update).unwrap();
    println!(
        "checked out robot {} (trajectory {})",
        copy.field("robot_id").unwrap(),
        copy.field("trajectory").unwrap()
    );

    // 2. Meanwhile a colleague reads the parts of the same cell — the
    //    sub-object granule means no blocking.
    let reader = mgr.begin(TxnKind::Short);
    let parts = InstanceTarget::object("cells", "c1").attr("c_objects");
    let ok = reader.try_lock(&parts, AccessMode::Read).is_ok();
    println!("concurrent part reader proceeds during the checkout: {ok}");
    reader.commit().unwrap();

    // 3. The server "crashes". Long locks survive via a persistent image;
    //    short locks do not (§3.1).
    let image = LongLockImage::capture(mgr.lock_manager());
    println!("crash! persisted {} long lock(s)", image.len());
    let recovered: LockManager<colock::core::ResourcePath> = LockManager::new();
    image.restore(&recovered);
    let resource = mgr.engine().resource_for(&robot).unwrap();
    println!(
        "after recovery the workstation still holds {} on the robot",
        recovered.held_mode(station.id(), &resource)
    );

    // 4. Back online: the user modifies the private copy and checks it in.
    let mut new_robot = copy.clone();
    *new_robot.field_mut("trajectory").unwrap() = Value::str("station-edited");
    station.checkin(&robot, new_robot).unwrap();
    station.commit().unwrap();
    println!("checked in; locks released");

    // 5. Everyone sees the new trajectory.
    let verify = mgr.begin(TxnKind::Short);
    let v = verify.read(&robot.clone().attr("trajectory")).unwrap();
    println!("trajectory after check-in: {v}");
    verify.commit().unwrap();
}
