//! Nested common data: assemblies reference parts, parts reference
//! materials ("common data may again contain common data", §2). Shows
//! transitive downward propagation and the authorization-aware rule 4′ over
//! two levels of inner units.
//!
//! Run with: `cargo run --example part_library`
//!
//! With `COLOCK_TRACE=1` the run also captures a structured lock-event trace
//! and closes with a trace-explain timeline of every transaction, each lock
//! annotated with the §4.4.2 rule that caused it (see README "Tracing a
//! run").

use colock::core::authorization::{Authorization, Right};
use colock::core::{AccessMode, InstanceTarget};
use colock::lockmgr::LockMode;
use colock::sim::workload::partlib::{assembly_key, build_partlib_store, PartLibConfig};
use colock::trace::explain::{render_timeline, timeline};
use colock::txn::{ProtocolKind, TransactionManager, TxnKind};

fn main() {
    let tracing = colock::trace::enable_from_env();
    let mark = colock::trace::current_seq();
    let cfg = PartLibConfig {
        n_assemblies: 4,
        parts_per_assembly: 3,
        n_parts: 10,
        n_materials: 3,
        seed: 11,
    };
    let store = build_partlib_store(&cfg);
    println!(
        "built {} assemblies over a library of {} parts and {} materials\n",
        store.len("assemblies").unwrap(),
        store.len("parts").unwrap(),
        store.len("materials").unwrap(),
    );

    // Designers may update assemblies; the part and material libraries are
    // curated elsewhere and read-only here.
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("parts", Right::Read);
    authz.set_relation_default("materials", Right::Read);
    let mgr = TransactionManager::over_store(store, authz, ProtocolKind::Proposed);

    // Updating an assembly X-locks it and — via downward propagation across
    // TWO superunit boundaries — S-locks its parts and their materials.
    let t = mgr.begin(TxnKind::Short);
    let target = InstanceTarget::object("assemblies", assembly_key(0));
    let report = t.lock(&target, AccessMode::Update).unwrap();
    println!("locks for X on assembly a1:");
    print!("{}", report.render());
    println!(
        "\nentry points locked transitively (parts + materials): {}",
        report.entry_points_locked
    );

    // A second designer updates another assembly sharing parts: concurrent.
    let t2 = mgr.begin(TxnKind::Short);
    let ok = t2
        .try_lock(&InstanceTarget::object("assemblies", assembly_key(1)), AccessMode::Update)
        .is_ok();
    println!("second designer works concurrently on a2: {ok}");

    // A librarian WITH update rights on parts tries to modify a part both
    // assemblies use — properly blocked by the S entry-point locks.
    let librarian_mgr = mgr.lock_manager();
    let part = report
        .acquired
        .iter()
        .find(|(r, m)| r.relation_name() == Some("parts") && *m == LockMode::S)
        .map(|(r, _)| r.clone())
        .expect("a part entry lock");
    let holders = librarian_mgr.holders(&part);
    println!(
        "entry-point {} currently held by {} transaction(s) in S — an X would wait",
        part,
        holders.len()
    );

    t.commit().unwrap();
    t2.commit().unwrap();

    // The §4.5 semantic exploitation: deleting an assembly never reads its
    // parts, so no locks on the libraries are taken at all.
    let t3 = mgr.begin(TxnKind::Short);
    let report = t3
        .lock_no_deref(&InstanceTarget::object("assemblies", assembly_key(2)), AccessMode::Update)
        .unwrap();
    let lib_locks = report
        .acquired
        .iter()
        .filter(|(r, _)| matches!(r.relation_name(), Some("parts") | Some("materials")))
        .count();
    println!("\ndelete-style access to a3 took {lib_locks} locks on the libraries (semantics exploited)");
    t3.commit().unwrap();

    if tracing {
        println!("\n--- trace-explain (COLOCK_TRACE was set) ---\n");
        print!("{}", render_timeline(&timeline(&colock::trace::events_since(mark))));
    }
}
