//! Quickstart: build the paper's Fig. 1 schema, derive the lock graph, and
//! watch the proposed protocol lock robot `r1` for update — including the
//! implicit downward propagation onto the shared effectors (rule 4′).
//!
//! Run with: `cargo run --example quickstart`

use colock::core::authorization::{Authorization, Right};
use colock::core::fixtures::{fig1_catalog, fig6_source};
use colock::core::graph::display::object_graph_tree;
use colock::core::{AccessMode, InstanceTarget, ProtocolEngine, ProtocolOptions};
use colock::lockmgr::{LockManager, TxnId};
use std::sync::Arc;

fn main() {
    // 1. Catalog (validated schema + statistics) and the derived
    //    object-specific lock graph (Fig. 5).
    let catalog = Arc::new(fig1_catalog());
    let engine = ProtocolEngine::new(Arc::clone(&catalog));
    println!("object-specific lock graph (derived from the schema):\n");
    print!("{}", object_graph_tree(engine.graph()));

    // 2. Rights: the effectors library is read-only for everyone.
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);

    // 3. Lock robot r1 of cell c1 for update (the paper's query Q2).
    let lm = LockManager::new();
    let src = fig6_source(); // cell c1 with robots r1 {e1,e2}, r2 {e2,e3}
    let q2 = InstanceTarget::object("cells", "c1").elem("robots", "r1");
    let report = engine
        .lock_proposed(&lm, TxnId(2), &src, &authz, &q2, AccessMode::Update, ProtocolOptions::default())
        .expect("locking Q2");

    println!("\nlocks acquired for Q2 (update robot r1), in request order:");
    print!("{}", report.render());
    println!(
        "\n{} entry points of inner units were locked by downward propagation.",
        report.entry_points_locked
    );

    // 4. A second updater on robot r2 runs concurrently although both use
    //    effector e2 — rule 4' locks the shared effectors in S only.
    let q3 = InstanceTarget::object("cells", "c1").elem("robots", "r2");
    let ok = engine
        .lock_proposed(
            &lm,
            TxnId(3),
            &src,
            &authz,
            &q3,
            AccessMode::Update,
            ProtocolOptions::default().try_lock(),
        )
        .is_ok();
    println!("second updater (robot r2) runs concurrently: {ok}");
}
