//! Manufacturing cells end-to-end: a populated cells/effectors database,
//! queried through the HDBL-flavoured language with transactions, the
//! escalation-anticipating optimizer and the proposed lock protocol.
//!
//! Run with: `cargo run --example manufacturing_cells`

use colock::core::optimizer::Optimizer;
use colock::query::exec::run;
use colock::sim::{build_cells_store, CellsConfig};
use colock::txn::{ProtocolKind, TransactionManager, TxnKind};
use colock::core::authorization::{Authorization, Right};

fn main() {
    // A plant with 3 cells, 20 parts per cell, 4 robots per cell, and a
    // library of 6 effectors shared across all robots.
    let cfg = CellsConfig {
        n_cells: 3,
        c_objects_per_cell: 20,
        robots_per_cell: 4,
        n_effectors: 6,
        effectors_per_robot: 2,
        seed: 7,
    };
    let store = build_cells_store(&cfg);
    println!(
        "built {} cells and {} effectors (avg sharing degree {:.1} robots/effector)\n",
        store.len("cells").unwrap(),
        store.len("effectors").unwrap(),
        cfg.sharing_degree()
    );

    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    let mgr = TransactionManager::over_store(store, authz, ProtocolKind::Proposed);
    let optimizer = Optimizer::default();

    // Q1: check out all parts of cell c1 for reading.
    let t1 = mgr.begin(TxnKind::Short);
    let q1 = run(
        &t1,
        "SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ",
        &optimizer,
    )
    .unwrap();
    println!("Q1 read {} c_objects of cell c1 with {} lock requests", q1.rows.len(), q1.lock_requests);

    // Q2 runs in a second transaction *while Q1's locks are still held*.
    let t2 = mgr.begin(TxnKind::Short);
    let q2 = run(
        &t2,
        "UPDATE r.trajectory = 'vertical-sweep' FROM c IN cells, r IN c.robots \
         WHERE c.cell_id = 'c1' AND r.robot_id = 'r1'",
        &optimizer,
    )
    .unwrap();
    println!("Q2 updated {} robot trajectory concurrently with Q1", q2.updated);

    t1.commit().unwrap();
    t2.commit().unwrap();

    // A third query confirms the update and shows a non-key predicate.
    let t3 = mgr.begin(TxnKind::Short);
    let q3 = run(
        &t3,
        "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.trajectory = 'vertical-sweep' FOR READ",
        &optimizer,
    )
    .unwrap();
    println!("robots now on vertical-sweep: {}", q3.rows.len());
    for r in &q3.rows {
        println!("  {}", r.field("robot_id").unwrap());
    }
    t3.commit().unwrap();

    // Lock-manager statistics for the session.
    let s = mgr.lock_manager().stats().snapshot();
    println!(
        "\nlock statistics: {} requests, {} immediate grants, {} conflict tests, max table {} entries",
        s.requests, s.immediate_grants, s.conflict_tests, s.max_table_entries
    );
}
